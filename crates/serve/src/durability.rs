//! Crash-safe coordinator state: checkpoints + write-ahead log
//! (DESIGN.md §12).
//!
//! Two files plus the audit log live in the coordinator's state
//! directory:
//!
//! * `checkpoint-<serial>.gfck` — a full snapshot of the durable
//!   coordinator state (global model, round cursor, pending queue,
//!   drain counters, audit-chain position), versioned and SHA-256
//!   checksummed, written to a temp file, fsync'd and atomically
//!   renamed. The last **two** checkpoints are kept: if the newest is
//!   torn or corrupt, recovery falls back to the previous one.
//! * `queue.wal` — the submit write-ahead log. Every accepted deletion
//!   request is appended and fsync'd **before** the submit call
//!   returns, so an acknowledged request survives any crash. Records
//!   carry a monotone sequence number and their own SHA-256; recovery
//!   replays every record newer than the loaded checkpoint through the
//!   queue's normal merge logic.
//!
//! ## Recovery invariant
//!
//! A checkpoint is written after **every** completed training round and
//! after every committed drain (audit append happens first, checkpoint
//! second — the checkpoint *is* the drain's commit record). Restarting
//! from `(checkpoint, WAL tail, truncated audit)` therefore lands the
//! coordinator exactly between two schedule steps of
//! [`crate::coordinator::Coordinator::run`], and re-running the
//! remaining steps with the same base seed reproduces the uninterrupted
//! round stream bitwise (pinned by `tests/crash_recovery.rs`).

use crate::audit::{AuditEntry, AuditError, AuditLog};
use crate::coordinator::DrainStats;
use crate::digest::{sha256, Sha256, DIGEST_LEN};
use crate::queue::UnlearnRequest;
use crate::telemetry::DurabilityTelemetry;
use goldfish_tensor::serialize;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Checkpoint file magic: "GoldFish ChecKpoint".
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"GFCK";

/// Checkpoint format version. v2 added the shard-mode section (a
/// presence-flagged [`crate::shard::ShardSnapshot`] between the pending
/// queue and the global state); v1 files are rejected with a typed
/// version-skew error rather than silently read without their shard
/// state.
pub const CHECKPOINT_VERSION: u32 = 2;

/// WAL file magic: "GoldFish Wal Log".
pub const WAL_MAGIC: [u8; 4] = *b"GFWL";

/// WAL format version.
pub const WAL_VERSION: u32 = 1;

const WAL_HEADER_LEN: u64 = 8;

/// How many checkpoint generations stay on disk.
pub const CHECKPOINTS_KEPT: usize = 2;

/// Typed durability failures. Everything fails closed: no partially
/// applied state ever reaches the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurabilityError {
    /// An I/O error touching the state directory.
    Io {
        /// The underlying error kind.
        kind: std::io::ErrorKind,
        /// The error text.
        detail: String,
    },
    /// A checkpoint file does not start with [`CHECKPOINT_MAGIC`].
    CheckpointBadMagic {
        /// The offending file.
        path: String,
    },
    /// A checkpoint file ends before its announced contents do.
    CheckpointTruncated {
        /// The offending file.
        path: String,
    },
    /// A checkpoint's trailing SHA-256 does not match its contents.
    CheckpointChecksum {
        /// The offending file.
        path: String,
    },
    /// A checkpoint was written by a different format version.
    CheckpointVersionSkew {
        /// The offending file.
        path: String,
        /// The version found.
        got: u32,
    },
    /// Checkpoint files exist but none decodes — recovery refuses to
    /// guess and fails closed.
    NoUsableCheckpoint {
        /// The state directory.
        dir: String,
        /// How many candidate files were tried.
        tried: usize,
    },
    /// The WAL's header is wrong (magic or version).
    WalHeader {
        /// What was wrong with it.
        detail: String,
    },
    /// A non-tail WAL record fails its hash or length check.
    WalCorrupt {
        /// Byte offset of the offending record.
        offset: u64,
    },
    /// The audit log failed verification or re-synchronisation.
    Audit(AuditError),
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityError::Io { kind, detail } => {
                write!(f, "durability i/o error ({kind:?}): {detail}")
            }
            DurabilityError::CheckpointBadMagic { path } => {
                write!(f, "checkpoint {path}: bad magic")
            }
            DurabilityError::CheckpointTruncated { path } => {
                write!(f, "checkpoint {path}: truncated")
            }
            DurabilityError::CheckpointChecksum { path } => {
                write!(f, "checkpoint {path}: checksum mismatch")
            }
            DurabilityError::CheckpointVersionSkew { path, got } => {
                write!(
                    f,
                    "checkpoint {path}: version {got} (want {CHECKPOINT_VERSION})"
                )
            }
            DurabilityError::NoUsableCheckpoint { dir, tried } => {
                write!(
                    f,
                    "no usable checkpoint in {dir} ({tried} candidate(s) all failed)"
                )
            }
            DurabilityError::WalHeader { detail } => write!(f, "wal header: {detail}"),
            DurabilityError::WalCorrupt { offset } => {
                write!(f, "wal record at byte {offset} is corrupt")
            }
            DurabilityError::Audit(e) => write!(f, "audit: {e}"),
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        DurabilityError::Io {
            kind: e.kind(),
            detail: e.to_string(),
        }
    }
}

impl From<AuditError> for DurabilityError {
    fn from(e: AuditError) -> Self {
        DurabilityError::Audit(e)
    }
}

/// The durable coordinator state one checkpoint captures.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Monotone checkpoint generation.
    pub serial: u64,
    /// The next training round to run (rounds `0..round_next` are
    /// committed).
    pub round_next: u64,
    /// Highest WAL sequence number whose submission this checkpoint's
    /// `pending` already reflects.
    pub wal_seq: u64,
    /// Committed audit-chain length, in entries.
    pub audit_entries: u64,
    /// Committed audit-chain length, in file bytes.
    pub audit_bytes: u64,
    /// Committed audit-chain head hash.
    pub audit_tip: [u8; DIGEST_LEN],
    /// Drain counters at commit time.
    pub drain_stats: DrainStats,
    /// The pending unlearning queue, FIFO order.
    pub pending: Vec<UnlearnRequest>,
    /// The shard-mode section (`None` when the coordinator runs without
    /// `--shards`): the full shard map plus its pending task queue,
    /// restored bitwise on recovery.
    pub shard: Option<crate::shard::ShardSnapshot>,
    /// The global model state.
    pub global: Vec<f32>,
}

fn put_request(out: &mut Vec<u8>, req: &UnlearnRequest) {
    out.extend_from_slice(&(req.client_id as u64).to_le_bytes());
    out.extend_from_slice(&(req.removed.len() as u32).to_le_bytes());
    for &i in &req.removed {
        out.extend_from_slice(&(i as u64).to_le_bytes());
    }
}

struct Cursor<'a> {
    b: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.b.len() < n {
            return None;
        }
        let (head, rest) = self.b.split_at(n);
        self.b = rest;
        Some(head)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn request(&mut self) -> Option<UnlearnRequest> {
        let client_id = self.u64()? as usize;
        let n = self.u32()? as usize;
        let mut removed = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            removed.push(self.u64()? as usize);
        }
        Some(UnlearnRequest { client_id, removed })
    }
}

impl Checkpoint {
    /// Serializes the checkpoint: header, fields, pending queue, global
    /// (bulk f32 codec), trailing SHA-256 over everything before it.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.global.len() * 4);
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.serial.to_le_bytes());
        out.extend_from_slice(&self.round_next.to_le_bytes());
        out.extend_from_slice(&self.wal_seq.to_le_bytes());
        out.extend_from_slice(&self.audit_entries.to_le_bytes());
        out.extend_from_slice(&self.audit_bytes.to_le_bytes());
        out.extend_from_slice(&self.audit_tip);
        out.extend_from_slice(&(self.drain_stats.requests_served as u64).to_le_bytes());
        out.extend_from_slice(&(self.drain_stats.batches_served as u64).to_le_bytes());
        out.extend_from_slice(&(self.drain_stats.last_batch_requests as u64).to_le_bytes());
        out.extend_from_slice(&(self.pending.len() as u32).to_le_bytes());
        for req in &self.pending {
            put_request(&mut out, req);
        }
        match &self.shard {
            None => out.push(0u8),
            Some(snap) => {
                out.push(1u8);
                snap.encode_into(&mut out);
            }
        }
        serialize::params_write_into(&mut out, &self.global);
        let checksum = sha256(&out);
        out.extend_from_slice(&checksum);
        out
    }

    /// Decodes and fully validates a checkpoint file's bytes.
    ///
    /// # Errors
    ///
    /// Typed [`DurabilityError`]s; `path` only labels them.
    pub fn from_bytes(data: &[u8], path: &str) -> Result<Checkpoint, DurabilityError> {
        let truncated = || DurabilityError::CheckpointTruncated {
            path: path.to_string(),
        };
        if data.len() < 8 + DIGEST_LEN {
            return Err(truncated());
        }
        if data[0..4] != CHECKPOINT_MAGIC {
            return Err(DurabilityError::CheckpointBadMagic {
                path: path.to_string(),
            });
        }
        let version = u32::from_le_bytes(data[4..8].try_into().unwrap());
        if version != CHECKPOINT_VERSION {
            return Err(DurabilityError::CheckpointVersionSkew {
                path: path.to_string(),
                got: version,
            });
        }
        // Checksum first: everything after it can assume intact bytes.
        let (body, stored) = data.split_at(data.len() - DIGEST_LEN);
        if sha256(body) != *stored {
            return Err(DurabilityError::CheckpointChecksum {
                path: path.to_string(),
            });
        }
        let mut c = Cursor { b: &body[8..] };
        let serial = c.u64().ok_or_else(truncated)?;
        let round_next = c.u64().ok_or_else(truncated)?;
        let wal_seq = c.u64().ok_or_else(truncated)?;
        let audit_entries = c.u64().ok_or_else(truncated)?;
        let audit_bytes = c.u64().ok_or_else(truncated)?;
        let mut audit_tip = [0u8; DIGEST_LEN];
        audit_tip.copy_from_slice(c.take(DIGEST_LEN).ok_or_else(truncated)?);
        let drain_stats = DrainStats {
            requests_served: c.u64().ok_or_else(truncated)? as usize,
            batches_served: c.u64().ok_or_else(truncated)? as usize,
            last_batch_requests: c.u64().ok_or_else(truncated)? as usize,
        };
        let n_pending = c.u32().ok_or_else(truncated)? as usize;
        let mut pending = Vec::with_capacity(n_pending.min(1 << 16));
        for _ in 0..n_pending {
            pending.push(c.request().ok_or_else(truncated)?);
        }
        let shard = match c.take(1).ok_or_else(truncated)?[0] {
            0 => None,
            1 => {
                let (snap, consumed) =
                    crate::shard::ShardSnapshot::decode(c.b).ok_or_else(truncated)?;
                c.b = &c.b[consumed..];
                Some(snap)
            }
            _ => return Err(truncated()),
        };
        let mut global = Vec::new();
        serialize::params_read_into_vec(c.b, &mut global).map_err(|_| truncated())?;
        Ok(Checkpoint {
            serial,
            round_next,
            wal_seq,
            audit_entries,
            audit_bytes,
            audit_tip,
            drain_stats,
            pending,
            shard,
            global,
        })
    }
}

/// What [`DurableStore::open`] reconstructed from disk.
#[derive(Debug)]
pub struct Recovered {
    /// Whether a checkpoint was loaded (`false` = fresh state
    /// directory; every other field is at its initial value).
    pub resumed: bool,
    /// `true` when the newest checkpoint was corrupt and the previous
    /// generation was used instead.
    pub fell_back: bool,
    /// The next training round to run.
    pub round_next: usize,
    /// The committed global model (empty when not `resumed`).
    pub global: Vec<f32>,
    /// Drain counters at the commit point.
    pub drain_stats: DrainStats,
    /// The checkpoint's pending queue (restore verbatim, FIFO order).
    pub pending: Vec<UnlearnRequest>,
    /// WAL submissions newer than the checkpoint, in sequence order —
    /// replay through the queue's normal submit/merge logic.
    pub replayed: Vec<UnlearnRequest>,
    /// Shard-routed WAL tasks newer than the checkpoint, in sequence
    /// order — replay through the shard queue's submit/merge logic.
    pub replayed_shard: Vec<crate::shard::ShardTask>,
    /// The checkpoint's shard section (`None` when the run was not in
    /// shard mode, or not `resumed`). Restore with
    /// [`crate::shard::ShardMap::restore`]; parity is recomputed.
    pub shard: Option<crate::shard::ShardSnapshot>,
    /// The committed audit chain in chain order. Since audit v2 this
    /// mixes served deletions with robustness verdicts — filter to
    /// [`crate::audit::audit_kind::UNLEARN_SERVED`] before replaying
    /// removals to rebuild post-deletion client datasets.
    pub served: Vec<AuditEntry>,
}

/// The coordinator's handle on its state directory: checkpoint writer,
/// WAL appender and audit-log owner.
pub struct DurableStore {
    dir: PathBuf,
    wal: File,
    wal_seq: u64,
    audit: AuditLog,
    serial: u64,
    /// fsync-span handles (detached until a coordinator attaches its
    /// catalog).
    telemetry: DurabilityTelemetry,
}

fn checkpoint_path(dir: &Path, serial: u64) -> PathBuf {
    dir.join(format!("checkpoint-{serial:016x}.gfck"))
}

fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>, DurabilityError> {
    let mut found = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(hex) = name
            .strip_prefix("checkpoint-")
            .and_then(|s| s.strip_suffix(".gfck"))
        {
            if let Ok(serial) = u64::from_str_radix(hex, 16) {
                found.push((serial, entry.path()));
            }
        }
    }
    found.sort_by_key(|&(serial, _)| std::cmp::Reverse(serial));
    Ok(found)
}

fn sync_dir(dir: &Path) -> Result<(), DurabilityError> {
    // Directory fsync makes the rename itself durable (Linux/macOS).
    // Platforms where directories cannot be opened just skip it.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

fn seal_wal_record(body: Vec<u8>) -> Vec<u8> {
    let mut h = Sha256::new();
    h.update(&body);
    let hash = h.finalize();
    let mut out = Vec::with_capacity(4 + body.len() + DIGEST_LEN);
    out.extend_from_slice(&((body.len() + DIGEST_LEN) as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&hash);
    out
}

fn wal_record_bytes(seq: u64, req: &UnlearnRequest) -> Vec<u8> {
    let mut body = Vec::with_capacity(32 + 8 * req.removed.len());
    body.push(1u8); // record kind: submit
    body.extend_from_slice(&seq.to_le_bytes());
    put_request(&mut body, req);
    seal_wal_record(body)
}

fn wal_shard_record_bytes(seq: u64, task: &crate::shard::ShardTask) -> Vec<u8> {
    let mut body = Vec::with_capacity(32 + 8 * task.rows.len());
    body.push(2u8); // record kind: shard-routed submit
    body.extend_from_slice(&seq.to_le_bytes());
    body.extend_from_slice(&(task.client_id as u64).to_le_bytes());
    body.extend_from_slice(&(task.shard as u32).to_le_bytes());
    body.extend_from_slice(&(task.rows.len() as u32).to_le_bytes());
    for &r in &task.rows {
        body.extend_from_slice(&(r as u64).to_le_bytes());
    }
    seal_wal_record(body)
}

/// One decoded WAL record: a whole-client submit (kind 1) or one
/// shard-routed retrain task of a shard-mode submit (kind 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A whole-client deletion request (the non-shard queue path).
    Submit(UnlearnRequest),
    /// One shard retrain task of a shard-routed deletion.
    ShardTask(crate::shard::ShardTask),
}

/// Sequenced WAL records plus the torn-tail truncation offset, if any.
type WalContents = (Vec<(u64, WalRecord)>, Option<u64>);

/// Parses the whole WAL. Returns `(records, truncate_at)`:
/// `truncate_at` is `Some(offset)` when the file ends inside a record —
/// a torn tail from a crash mid-append. Torn tails are safe to discard:
/// the submit was never acknowledged (fsync happens before the ack).
fn read_wal(data: &[u8]) -> Result<WalContents, DurabilityError> {
    if data.len() < WAL_HEADER_LEN as usize {
        return Err(DurabilityError::WalHeader {
            detail: "file shorter than header".into(),
        });
    }
    if data[0..4] != WAL_MAGIC {
        return Err(DurabilityError::WalHeader {
            detail: format!("bad magic {:?}", &data[0..4]),
        });
    }
    let version = u32::from_le_bytes(data[4..8].try_into().unwrap());
    if version != WAL_VERSION {
        return Err(DurabilityError::WalHeader {
            detail: format!("version {version} (want {WAL_VERSION})"),
        });
    }
    let mut records = Vec::new();
    let mut off = WAL_HEADER_LEN as usize;
    while off < data.len() {
        let start = off as u64;
        if data.len() - off < 4 {
            return Ok((records, Some(start)));
        }
        let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
        off += 4;
        if data.len() - off < len {
            return Ok((records, Some(start)));
        }
        let record = &data[off..off + len];
        off += len;
        if len < 1 + 8 + 8 + 4 + DIGEST_LEN {
            return Err(DurabilityError::WalCorrupt { offset: start });
        }
        let (body, stored_hash) = record.split_at(len - DIGEST_LEN);
        if sha256(body) != *stored_hash {
            return Err(DurabilityError::WalCorrupt { offset: start });
        }
        let corrupt = || DurabilityError::WalCorrupt { offset: start };
        let mut c = Cursor { b: &body[1..] };
        let seq = c.u64().ok_or_else(corrupt)?;
        let record = match body[0] {
            1 => WalRecord::Submit(c.request().ok_or_else(corrupt)?),
            2 => {
                let client_id = c.u64().ok_or_else(corrupt)? as usize;
                let shard = c.u32().ok_or_else(corrupt)? as usize;
                let n = c.u32().ok_or_else(corrupt)? as usize;
                let mut rows = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    rows.push(c.u64().ok_or_else(corrupt)? as usize);
                }
                WalRecord::ShardTask(crate::shard::ShardTask::new(client_id, shard, rows))
            }
            _ => return Err(corrupt()),
        };
        if !c.b.is_empty() {
            return Err(corrupt());
        }
        records.push((seq, record));
    }
    Ok((records, None))
}

impl DurableStore {
    /// Opens (creating if necessary) the state directory and
    /// reconstructs the committed coordinator state: newest valid
    /// checkpoint (falling back one generation on corruption), WAL tail
    /// replay, audit log truncated to the checkpoint's committed
    /// position.
    ///
    /// # Errors
    ///
    /// Typed [`DurabilityError`]s. Checkpoints present but all invalid,
    /// a corrupt WAL interior, or an audit chain that does not reach
    /// the checkpoint's recorded tip each fail closed.
    pub fn open(dir: &Path) -> Result<(Self, Recovered), DurabilityError> {
        fs::create_dir_all(dir)?;

        // --- checkpoint ---------------------------------------------------
        let candidates = list_checkpoints(dir)?;
        let mut loaded: Option<Checkpoint> = None;
        let mut fell_back = false;
        let mut first_error: Option<DurabilityError> = None;
        for (i, (_, path)) in candidates.iter().enumerate() {
            let data = fs::read(path)?;
            match Checkpoint::from_bytes(&data, &path.to_string_lossy()) {
                Ok(c) => {
                    loaded = Some(c);
                    fell_back = i > 0;
                    break;
                }
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        if loaded.is_none() && !candidates.is_empty() {
            // Checkpoints exist but none decodes: refuse to silently
            // restart from scratch (that would forget served deletions).
            return Err(first_error.unwrap_or(DurabilityError::NoUsableCheckpoint {
                dir: dir.to_string_lossy().into_owned(),
                tried: candidates.len(),
            }));
        }

        // --- WAL ----------------------------------------------------------
        let wal_path = dir.join("queue.wal");
        let mut wal = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&wal_path)?;
        let mut data = Vec::new();
        wal.read_to_end(&mut data)?;
        if data.is_empty() {
            wal.write_all(&WAL_MAGIC)?;
            wal.write_all(&WAL_VERSION.to_le_bytes())?;
            wal.sync_all()?;
            data.extend_from_slice(&WAL_MAGIC);
            data.extend_from_slice(&WAL_VERSION.to_le_bytes());
        }
        let (records, torn_at) = read_wal(&data)?;
        if let Some(offset) = torn_at {
            // A torn tail record was never acknowledged — drop it.
            wal.set_len(offset)?;
            wal.sync_all()?;
        }
        use std::io::Seek;
        wal.seek(std::io::SeekFrom::End(0))?;

        // --- audit --------------------------------------------------------
        let audit_path = dir.join("audit.log");
        let (mut audit, mut served) = AuditLog::open(&audit_path)?;

        let ckpt_seq = loaded.as_ref().map(|c| c.wal_seq).unwrap_or(0);
        let wal_seq = records
            .iter()
            .map(|&(seq, _)| seq)
            .max()
            .unwrap_or(0)
            .max(ckpt_seq);
        let mut replayed = Vec::new();
        let mut replayed_shard = Vec::new();
        for (_, record) in records.into_iter().filter(|&(seq, _)| seq > ckpt_seq) {
            match record {
                WalRecord::Submit(req) => replayed.push(req),
                WalRecord::ShardTask(task) => replayed_shard.push(task),
            }
        }

        let recovered = match loaded {
            Some(ckpt) => {
                // Audit entries past the checkpoint belong to a drain
                // that never committed; cut them (the recovered run
                // re-drains deterministically and re-appends identical
                // bytes).
                audit.truncate_to(ckpt.audit_entries, ckpt.audit_bytes, &ckpt.audit_tip)?;
                served.truncate(ckpt.audit_entries as usize);
                Recovered {
                    resumed: true,
                    fell_back,
                    round_next: ckpt.round_next as usize,
                    global: ckpt.global,
                    drain_stats: ckpt.drain_stats,
                    pending: ckpt.pending,
                    replayed,
                    replayed_shard,
                    shard: ckpt.shard,
                    served,
                }
            }
            None => {
                // No checkpoint: nothing was ever committed. Audit
                // entries without one are uncommitted leftovers.
                audit.truncate_to(0, crate::audit::AUDIT_HEADER_LEN, &crate::digest::GENESIS)?;
                Recovered {
                    resumed: false,
                    fell_back: false,
                    round_next: 0,
                    global: Vec::new(),
                    drain_stats: DrainStats::default(),
                    pending: Vec::new(),
                    replayed,
                    replayed_shard,
                    shard: None,
                    served: Vec::new(),
                }
            }
        };
        let serial = candidates.first().map(|&(s, _)| s).unwrap_or(0);
        Ok((
            DurableStore {
                dir: dir.to_path_buf(),
                wal,
                wal_seq,
                audit,
                serial,
                telemetry: DurabilityTelemetry::default(),
            },
            recovered,
        ))
    }

    /// Appends one accepted submission to the WAL and fsyncs it. Only
    /// after this returns may the submit be acknowledged.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Io`] — the caller must then *reject* the
    /// submission (it is not durable).
    pub fn log_submit(&mut self, req: &UnlearnRequest) -> Result<u64, DurabilityError> {
        let start = self.telemetry.clock.now_nanos();
        let seq = self.wal_seq + 1;
        let record = wal_record_bytes(seq, req);
        self.wal.write_all(&record)?;
        self.wal.sync_all()?;
        self.wal_seq = seq;
        self.telemetry
            .wal_append_seconds
            .observe_nanos(self.telemetry.clock.now_nanos().saturating_sub(start));
        Ok(seq)
    }

    /// Appends one shard-routed submission — one kind-2 record per
    /// affected shard, consecutive sequence numbers — in a **single**
    /// write+fsync, so a crash either persists the whole route or none
    /// of it (a partial route would desynchronise the tombstones the
    /// tasks were computed against). Only after this returns may the
    /// submit be acknowledged.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Io`] — the caller must then *reject* the
    /// submission (it is not durable).
    pub fn log_submit_shard(
        &mut self,
        tasks: &[crate::shard::ShardTask],
    ) -> Result<u64, DurabilityError> {
        let start = self.telemetry.clock.now_nanos();
        let mut batch = Vec::new();
        let mut seq = self.wal_seq;
        for task in tasks {
            seq += 1;
            batch.extend_from_slice(&wal_shard_record_bytes(seq, task));
        }
        self.wal.write_all(&batch)?;
        self.wal.sync_all()?;
        self.wal_seq = seq;
        self.telemetry
            .wal_append_seconds
            .observe_nanos(self.telemetry.clock.now_nanos().saturating_sub(start));
        Ok(seq)
    }

    /// Rebinds the store's fsync-span histograms to a shared catalog's
    /// cells (the coordinator calls this from `attach_durability`).
    pub fn set_telemetry(&mut self, telemetry: DurabilityTelemetry) {
        self.telemetry = telemetry;
    }

    /// Writes the post-training-round checkpoint (the round's commit
    /// record).
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Io`].
    pub fn commit_round(
        &mut self,
        round_next: usize,
        global: &[f32],
        pending: &[UnlearnRequest],
        shard: Option<&crate::shard::ShardSnapshot>,
        drain_stats: DrainStats,
    ) -> Result<(), DurabilityError> {
        self.write_checkpoint(round_next, global, pending, shard, drain_stats)
    }

    /// Appends robustness verdicts (violations/quarantines) to the
    /// audit chain and fsyncs them. Call before the round's
    /// `commit_round` so that checkpoint snapshots the advanced tip; a
    /// crash in between truncates the events on recovery and the
    /// deterministic round re-run re-appends identical bytes.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Audit`] / [`DurabilityError::Io`].
    pub fn log_robustness_events(
        &mut self,
        round: u64,
        events: &[crate::audit::AuditEventRecord],
        state_digest: &[u8; DIGEST_LEN],
    ) -> Result<(), DurabilityError> {
        self.audit.append_events(round, events, state_digest)?;
        Ok(())
    }

    /// Commits one served drain batch: appends the audit entries
    /// (fsync'd) and then writes the post-drain checkpoint. The
    /// checkpoint records the new audit tip, making the drain
    /// atomic-at-recovery: a crash between the two steps leaves audit
    /// entries the next open truncates away and re-derives.
    ///
    /// # Errors
    ///
    /// [`DurabilityError`] from either step.
    #[allow(clippy::too_many_arguments)]
    pub fn commit_drain(
        &mut self,
        round: u64,
        drain_serial: u64,
        served: &[UnlearnRequest],
        state_digest: &[u8; DIGEST_LEN],
        round_next: usize,
        global: &[f32],
        pending: &[UnlearnRequest],
        drain_stats: DrainStats,
    ) -> Result<(), DurabilityError> {
        self.audit
            .append_batch(round, drain_serial, served, state_digest)?;
        self.write_checkpoint(round_next, global, pending, None, drain_stats)
    }

    /// Commits one shard drain batch: appends the batch's audit entries
    /// (served tasks plus degraded-drain verdicts, fsync'd) and then
    /// writes the post-drain checkpoint whose shard section snapshots
    /// the advanced map and any deadline-requeued remainder. Same
    /// atomic-at-recovery shape as [`DurableStore::commit_drain`].
    ///
    /// # Errors
    ///
    /// [`DurabilityError`] from either step.
    #[allow(clippy::too_many_arguments)]
    pub fn commit_shard_drain(
        &mut self,
        round: u64,
        drain_serial: u64,
        records: &[crate::audit::AuditEventRecord],
        state_digest: &[u8; DIGEST_LEN],
        round_next: usize,
        global: &[f32],
        pending: &[UnlearnRequest],
        shard: &crate::shard::ShardSnapshot,
        drain_stats: DrainStats,
    ) -> Result<(), DurabilityError> {
        self.audit
            .append_shard_batch(round, drain_serial, records, state_digest)?;
        self.write_checkpoint(round_next, global, pending, Some(shard), drain_stats)
    }

    fn write_checkpoint(
        &mut self,
        round_next: usize,
        global: &[f32],
        pending: &[UnlearnRequest],
        shard: Option<&crate::shard::ShardSnapshot>,
        drain_stats: DrainStats,
    ) -> Result<(), DurabilityError> {
        let start = self.telemetry.clock.now_nanos();
        let serial = self.serial + 1;
        let ckpt = Checkpoint {
            serial,
            round_next: round_next as u64,
            wal_seq: self.wal_seq,
            audit_entries: self.audit.entries(),
            audit_bytes: self.audit.bytes(),
            audit_tip: self.audit.tip(),
            drain_stats,
            pending: pending.to_vec(),
            shard: shard.cloned(),
            global: global.to_vec(),
        };
        let bytes = ckpt.to_bytes();
        let final_path = checkpoint_path(&self.dir, serial);
        let tmp_path = final_path.with_extension("gfck.tmp");
        {
            let mut f = File::create(&tmp_path)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        sync_dir(&self.dir)?;
        self.serial = serial;
        // Prune generations beyond the fallback window (and any stale
        // temp files from interrupted writes).
        for (old_serial, path) in list_checkpoints(&self.dir)? {
            if serial.saturating_sub(old_serial) >= CHECKPOINTS_KEPT as u64 {
                let _ = fs::remove_file(path);
            }
        }
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            if name.to_string_lossy().ends_with(".gfck.tmp") {
                let _ = fs::remove_file(entry.path());
            }
        }
        self.telemetry
            .checkpoint_fsync_seconds
            .observe_nanos(self.telemetry.clock.now_nanos().saturating_sub(start));
        Ok(())
    }

    /// The audit log (tip/entry accessors, path).
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Highest durable WAL sequence number.
    pub fn wal_seq(&self) -> u64 {
        self.wal_seq
    }

    /// Latest checkpoint generation on disk.
    pub fn checkpoint_serial(&self) -> u64 {
        self.serial
    }

    /// The state directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// The audit-log path inside a state directory (shared by the
/// coordinator daemon's `--verify-audit` mode).
pub fn audit_path(dir: &Path) -> PathBuf {
    dir.join("audit.log")
}
