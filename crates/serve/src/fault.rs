//! Fault injection: a [`FaultyTransport`] wrapper that kills, drops or
//! delays a serving run at scripted points (DESIGN.md §12.5).
//!
//! The wrapper sits between the coordinator and **any**
//! [`ServeTransport`] — loopback or TCP — and counts transport
//! operations (each broadcast fan-out: a training round, a distill
//! round, an `UnlearnAssign` staging pass, a local-eval sweep is one
//! op). A [`FaultPlan`] maps op indices to actions:
//!
//! * [`FaultAction::KillBefore`] / [`FaultAction::KillAfter`] — the
//!   coordinator "crashes" at this op: every client errors out, this
//!   call and forever after. `KillBefore` dies before the inner
//!   transport runs (mid-round crash: no worker saw the op);
//!   `KillAfter` dies after it completed (mid-drain crash: workers
//!   already applied the deletion, the coordinator never committed).
//!   Both leave zero durability side effects in the coordinator, which
//!   is exactly what an aborted round guarantees — the crash-recovery
//!   tests restart from the state directory and must reproduce the
//!   uninterrupted run bitwise.
//! * [`FaultAction::DropClient`] — one client's reply is suppressed for
//!   this op (straggler/connection-loss simulation).
//! * [`FaultAction::DelayMs`] — the op is stalled first (latency
//!   injection; exercises read-timeout paths without real packet loss).
//!
//! Plans are either scripted ([`FaultPlan::kill_before_at`] etc.) or
//! seeded ([`FaultPlan::seeded_drops`]), so a fault schedule is as
//! reproducible as everything else in this repository.

use crate::queue::UnlearnRequest;
use crate::transport::{LocalEval, ServeTransport, WireStats};
use goldfish_core::transport::{DistillTransport, UnlearnJob};
use goldfish_fed::aggregate::ClientUpdate;
use goldfish_fed::transport::{
    RoundTransport, StreamedUpdate, TrainAssign, TransportError, UpdateSink,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeMap;

/// One scripted fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Crash before the op reaches the inner transport.
    KillBefore,
    /// Crash after the inner transport completed the op (results are
    /// discarded — the coordinator never sees them).
    KillAfter,
    /// Suppress this client's reply for this op.
    DropClient(usize),
    /// Stall the op by this many milliseconds before running it.
    DelayMs(u64),
}

/// A per-worker Byzantine behaviour, applied to every training update
/// the scripted worker streams through the wrapper. Scripts act on the
/// streamed (hot) aggregation path — the one the serving coordinator
/// runs — and are fully deterministic, so adversarial runs reproduce
/// bitwise like everything else here.
#[derive(Debug, Clone, PartialEq)]
pub enum ByzantineScript {
    /// Multiply every uploaded coordinate by `factor` (a model-scaling
    /// / boosting attack).
    Scale {
        /// The multiplier.
        factor: f32,
    },
    /// Negate every uploaded coordinate (gradient sign-flip attack).
    SignFlip,
    /// Add seeded uniform noise in `[-amp, amp]` per coordinate. The
    /// per-round stream is derived from `(seed, nonce, client)`, so the
    /// same run replays identically.
    Noise {
        /// Noise amplitude.
        amp: f32,
        /// Base seed of the noise stream.
        seed: u64,
    },
    /// Replay the previous round's upload verbatim — state *and* nonce,
    /// so the admission layer sees a genuinely stale frame. The first
    /// round has nothing to replay and passes through (while caching).
    Replay,
    /// Echo a corrupted nonce, simulating an update forged for (or
    /// left over from) a different round.
    StaleRound,
    /// Deliver the update twice in one round (duplicate-frame attack).
    Duplicate,
    /// Panic while the coordinator handles this worker's reply — the
    /// scripted stand-in for a bug in reply decoding or aggregation.
    /// The reactor must contain it to a typed per-client
    /// `Rejected(HandlerPanic)` failure (worker dropped, round goes
    /// on), never a coordinator abort.
    Panic,
    /// Straggle: this worker is `ms` milliseconds slow. A straggler is
    /// *late, not wrong* — its training updates pass through intact —
    /// but the shard drain consults the declared lateness (via
    /// `ServeTransport::straggle_ms`) against `--drain-deadline-ms`
    /// and, when the budget can't absorb it, routes the shard through
    /// the coded-reconstruction degraded path (DESIGN.md §16).
    Straggle {
        /// Injected per-op lateness in milliseconds.
        ms: u64,
    },
}

impl ByzantineScript {
    /// Parses the daemon-flag syntax: `scale:F`, `signflip`,
    /// `noise:AMP` or `noise:AMP:SEED`, `replay`, `stale`, `dup`,
    /// `panic`, `straggle:MS`.
    pub fn parse(s: &str) -> Option<ByzantineScript> {
        let mut parts = s.split(':');
        let head = parts.next()?;
        let script = match head {
            "scale" => ByzantineScript::Scale {
                factor: parts.next()?.parse().ok()?,
            },
            "signflip" => ByzantineScript::SignFlip,
            "noise" => ByzantineScript::Noise {
                amp: parts.next()?.parse().ok()?,
                seed: match parts.next() {
                    Some(v) => v.parse().ok()?,
                    None => 0xB12E,
                },
            },
            "replay" => ByzantineScript::Replay,
            "stale" => ByzantineScript::StaleRound,
            "dup" => ByzantineScript::Duplicate,
            "panic" => ByzantineScript::Panic,
            "straggle" => ByzantineScript::Straggle {
                ms: parts.next()?.parse().ok()?,
            },
            _ => return None,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(script)
    }
}

/// A reproducible schedule of faults keyed by transport-op index, plus
/// per-worker Byzantine scripts keyed by client id.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    at: BTreeMap<u64, Vec<FaultAction>>,
    byz: BTreeMap<usize, ByzantineScript>,
}

impl FaultPlan {
    /// No faults.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Crash before op `op` runs.
    pub fn kill_before_at(mut self, op: u64) -> Self {
        self.at.entry(op).or_default().push(FaultAction::KillBefore);
        self
    }

    /// Crash after op `op` completes on the inner transport.
    pub fn kill_after_at(mut self, op: u64) -> Self {
        self.at.entry(op).or_default().push(FaultAction::KillAfter);
        self
    }

    /// Suppress client `client_id`'s reply at op `op`.
    pub fn drop_client_at(mut self, op: u64, client_id: usize) -> Self {
        self.at
            .entry(op)
            .or_default()
            .push(FaultAction::DropClient(client_id));
        self
    }

    /// Stall op `op` by `ms` milliseconds.
    pub fn delay_at(mut self, op: u64, ms: u64) -> Self {
        self.at
            .entry(op)
            .or_default()
            .push(FaultAction::DelayMs(ms));
        self
    }

    /// Seeds random per-client drops: for each op in `ops`, each of the
    /// `clients` ids is dropped with probability `percent`/100. The
    /// same seed always yields the same schedule.
    pub fn seeded_drops(
        mut self,
        seed: u64,
        ops: std::ops::Range<u64>,
        clients: usize,
        percent: u32,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        for op in ops {
            for client in 0..clients {
                if rng.gen_range(0u32..100) < percent {
                    self.at
                        .entry(op)
                        .or_default()
                        .push(FaultAction::DropClient(client));
                }
            }
        }
        self
    }

    /// Scripts client `client_id` as Byzantine for the whole run.
    pub fn byzantine(mut self, client_id: usize, script: ByzantineScript) -> Self {
        self.byz.insert(client_id, script);
        self
    }

    /// Actions scheduled at `op`.
    pub fn actions_at(&self, op: u64) -> &[FaultAction] {
        self.at.get(&op).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The Byzantine script of `client_id`, if any.
    pub fn byzantine_script(&self, client_id: usize) -> Option<&ByzantineScript> {
        self.byz.get(&client_id)
    }
}

/// A [`ServeTransport`] wrapper executing a [`FaultPlan`]. See the
/// module docs for semantics.
pub struct FaultyTransport<T: ServeTransport> {
    inner: T,
    plan: FaultPlan,
    op: u64,
    killed: bool,
    /// [`ByzantineScript::Replay`] memory: the last `(nonce, state)`
    /// each scripted worker uploaded.
    replay: BTreeMap<usize, (u64, Vec<f32>)>,
}

/// What one op's scheduled actions resolve to.
struct OpFate {
    kill_before: bool,
    kill_after: bool,
    drops: Vec<usize>,
}

impl<T: ServeTransport> FaultyTransport<T> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        FaultyTransport {
            inner,
            plan,
            op: 0,
            killed: false,
            replay: BTreeMap::new(),
        }
    }

    /// Whether a kill action has fired (the "process" is dead; every
    /// further op errors out).
    pub fn killed(&self) -> bool {
        self.killed
    }

    /// Ops observed so far.
    pub fn ops(&self) -> u64 {
        self.op
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Mutable access to the wrapped transport.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Unwraps.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Advances the op counter, applies delays, and resolves this op's
    /// fate.
    fn begin_op(&mut self) -> OpFate {
        let op = self.op;
        self.op += 1;
        let mut fate = OpFate {
            kill_before: false,
            kill_after: false,
            drops: Vec::new(),
        };
        for action in self.plan.actions_at(op) {
            match action {
                FaultAction::KillBefore => fate.kill_before = true,
                FaultAction::KillAfter => fate.kill_after = true,
                FaultAction::DropClient(id) => fate.drops.push(*id),
                FaultAction::DelayMs(ms) => {
                    std::thread::sleep(std::time::Duration::from_millis(*ms))
                }
            }
        }
        fate
    }

    fn dead_error(&self, client_id: usize) -> TransportError {
        TransportError::Disconnected {
            client_id,
            reason: "fault injection: coordinator killed".into(),
        }
    }
}

impl<T: ServeTransport> RoundTransport for FaultyTransport<T> {
    fn num_clients(&self) -> usize {
        RoundTransport::num_clients(&self.inner)
    }

    fn cohort_into(&self, out: &mut Vec<(usize, usize)>) {
        self.inner.cohort_into(out)
    }

    fn train_round(
        &mut self,
        assign: &TrainAssign<'_>,
    ) -> Vec<Result<ClientUpdate, TransportError>> {
        let n = RoundTransport::num_clients(&self.inner);
        let fate = self.begin_op();
        if self.killed || fate.kill_before {
            self.killed = true;
            return (0..n).map(|id| Err(self.dead_error(id))).collect();
        }
        let mut results = self.inner.train_round(assign);
        if fate.kill_after {
            self.killed = true;
            return (0..n).map(|id| Err(self.dead_error(id))).collect();
        }
        for r in results.iter_mut() {
            if let Ok(u) = r {
                if fate.drops.contains(&u.client_id) {
                    let id = u.client_id;
                    *r = Err(TransportError::Disconnected {
                        client_id: id,
                        reason: "fault injection: reply dropped".into(),
                    });
                }
            }
        }
        results
    }

    fn train_round_streamed(
        &mut self,
        assign: &TrainAssign<'_>,
        sink: &mut UpdateSink<'_>,
        results: &mut Vec<Result<(), TransportError>>,
    ) {
        let n = RoundTransport::num_clients(&self.inner);
        let fate = self.begin_op();
        if self.killed || fate.kill_before {
            self.killed = true;
            results.clear();
            results.extend((0..n).map(|id| Err(self.dead_error(id))));
            return;
        }
        if fate.kill_after {
            // Run the inner round into a discarding sink (workers did
            // the compute), then report the crash.
            let mut discard = |_u: StreamedUpdate<'_>| Ok(());
            let mut inner_results = Vec::new();
            self.inner
                .train_round_streamed(assign, &mut discard, &mut inner_results);
            self.killed = true;
            results.clear();
            results.extend((0..n).map(|id| Err(self.dead_error(id))));
            return;
        }
        if fate.drops.is_empty() && self.plan.byz.is_empty() {
            self.inner.train_round_streamed(assign, sink, results);
            return;
        }
        // Suppress dropped clients' updates and run Byzantine scripts
        // before frames reach the aggregation sink — exactly where a
        // malicious worker's bytes would enter the coordinator.
        let drops = fate.drops;
        let FaultyTransport {
            inner,
            plan,
            replay,
            ..
        } = self;
        let mut scratch: Vec<f32> = Vec::new();
        let mut filtered = |u: StreamedUpdate<'_>| {
            filter_update(&drops, plan, &mut *replay, &mut scratch, &mut *sink, u)
        };
        inner.train_round_streamed(assign, &mut filtered, results);
        for (id, r) in results.iter_mut().enumerate() {
            if r.is_ok() && drops.contains(&id) {
                *r = Err(TransportError::Disconnected {
                    client_id: id,
                    reason: "fault injection: reply dropped".into(),
                });
            }
        }
    }

    fn train_round_sampled(
        &mut self,
        assign: &TrainAssign<'_>,
        cohort: &[(usize, usize)],
        sink: &mut UpdateSink<'_>,
        results: &mut Vec<Result<(), TransportError>>,
    ) {
        let fate = self.begin_op();
        if self.killed || fate.kill_before {
            self.killed = true;
            results.clear();
            results.extend(cohort.iter().map(|&(id, _)| Err(self.dead_error(id))));
            return;
        }
        if fate.kill_after {
            let mut discard = |_u: StreamedUpdate<'_>| Ok(());
            let mut inner_results = Vec::new();
            self.inner
                .train_round_sampled(assign, cohort, &mut discard, &mut inner_results);
            self.killed = true;
            results.clear();
            results.extend(cohort.iter().map(|&(id, _)| Err(self.dead_error(id))));
            return;
        }
        if fate.drops.is_empty() && self.plan.byz.is_empty() {
            self.inner
                .train_round_sampled(assign, cohort, sink, results);
            return;
        }
        // Same interception point as the full-fan-out path; a sink
        // error (including a drop suppression) surfaces through the
        // inner transport's own `results` entry for that client.
        let drops = fate.drops;
        let FaultyTransport {
            inner,
            plan,
            replay,
            ..
        } = self;
        let mut scratch: Vec<f32> = Vec::new();
        let mut filtered = |u: StreamedUpdate<'_>| {
            filter_update(&drops, plan, &mut *replay, &mut scratch, &mut *sink, u)
        };
        inner.train_round_sampled(assign, cohort, &mut filtered, results);
    }

    fn quarantine(&mut self, client_id: usize) -> bool {
        self.inner.quarantine(client_id)
    }
}

/// Applies drop suppression and the client's Byzantine script (if any)
/// to one streamed update before it reaches the real aggregation
/// `sink` — shared by the full-fan-out and sampled-cohort paths.
fn filter_update(
    drops: &[usize],
    plan: &FaultPlan,
    replay: &mut BTreeMap<usize, (u64, Vec<f32>)>,
    scratch: &mut Vec<f32>,
    sink: &mut UpdateSink<'_>,
    u: StreamedUpdate<'_>,
) -> Result<(), TransportError> {
    if drops.contains(&u.client_id) {
        return Err(TransportError::Disconnected {
            client_id: u.client_id,
            reason: "fault injection: reply dropped".into(),
        });
    }
    let Some(script) = plan.byzantine_script(u.client_id) else {
        return sink(u);
    };
    match script {
        ByzantineScript::Scale { factor } => {
            scratch.clear();
            scratch.extend(u.state.iter().map(|v| v * factor));
            sink(StreamedUpdate {
                state: scratch,
                ..u
            })
        }
        ByzantineScript::SignFlip => {
            scratch.clear();
            scratch.extend(u.state.iter().map(|v| -v));
            sink(StreamedUpdate {
                state: scratch,
                ..u
            })
        }
        ByzantineScript::Noise { amp, seed } => {
            let mut rng = StdRng::seed_from_u64(
                seed ^ u.nonce ^ (u.client_id as u64).wrapping_mul(0x9E37_79B9),
            );
            scratch.clear();
            scratch.extend(u.state.iter().map(|v| v + rng.gen_range(-amp..=*amp)));
            sink(StreamedUpdate {
                state: scratch,
                ..u
            })
        }
        ByzantineScript::Replay => {
            let prev = replay.insert(u.client_id, (u.nonce, u.state.to_vec()));
            match prev {
                // A genuinely stale frame: last round's state under
                // last round's nonce.
                Some((nonce, state)) => {
                    scratch.clear();
                    scratch.extend_from_slice(&state);
                    sink(StreamedUpdate {
                        nonce,
                        state: scratch,
                        ..u
                    })
                }
                None => sink(u),
            }
        }
        ByzantineScript::StaleRound => sink(StreamedUpdate {
            nonce: u.nonce ^ 0x5741_4C45,
            ..u
        }),
        ByzantineScript::Duplicate => {
            // Both frames are delivered; the recorded outcome is the
            // second one's verdict, which is what a transport that
            // observed its client double-send would report.
            let first = sink(u);
            let second = sink(u);
            first.and(second)
        }
        // The panic unwinds out of the reply handler the transport
        // invoked; the reactor's catch_unwind must turn it into a
        // typed per-client failure.
        ByzantineScript::Panic => panic!(
            "fault injection: scripted reply-handler panic (client {})",
            u.client_id
        ),
        // A straggler is late, not wrong: its training update is
        // delivered unmodified. The lateness bites on the shard drain
        // path, where `straggle_ms` is consulted against the deadline.
        ByzantineScript::Straggle { .. } => sink(u),
    }
}

impl<T: ServeTransport> DistillTransport for FaultyTransport<T> {
    fn num_clients(&self) -> usize {
        DistillTransport::num_clients(&self.inner)
    }

    fn begin_unlearn(&mut self, job: &UnlearnJob, teacher: &[f32]) -> Result<(), TransportError> {
        let fate = self.begin_op();
        if self.killed || fate.kill_before {
            self.killed = true;
            return Err(self.dead_error(0));
        }
        let out = self.inner.begin_unlearn(job, teacher);
        if fate.kill_after {
            self.killed = true;
            return Err(self.dead_error(0));
        }
        out
    }

    fn distill_round(
        &mut self,
        round: usize,
        seed: u64,
        global: &[f32],
    ) -> Vec<Result<ClientUpdate, TransportError>> {
        let n = DistillTransport::num_clients(&self.inner);
        let fate = self.begin_op();
        if self.killed || fate.kill_before {
            self.killed = true;
            return (0..n).map(|id| Err(self.dead_error(id))).collect();
        }
        let mut results = self.inner.distill_round(round, seed, global);
        if fate.kill_after {
            self.killed = true;
            return (0..n).map(|id| Err(self.dead_error(id))).collect();
        }
        for r in results.iter_mut() {
            if let Ok(u) = r {
                if fate.drops.contains(&u.client_id) {
                    let id = u.client_id;
                    *r = Err(TransportError::Disconnected {
                        client_id: id,
                        reason: "fault injection: reply dropped".into(),
                    });
                }
            }
        }
        results
    }
}

impl<T: ServeTransport> ServeTransport for FaultyTransport<T> {
    fn client_sizes(&self) -> Vec<usize> {
        self.inner.client_sizes()
    }

    fn stage_removals(&mut self, requests: &[UnlearnRequest], serial: u64) {
        self.inner.stage_removals(requests, serial)
    }

    fn apply_removals(&mut self, requests: &[UnlearnRequest]) {
        self.inner.apply_removals(requests)
    }

    fn admit_reconnects(&mut self, round: usize, global: &[f32]) -> usize {
        if self.killed {
            return 0;
        }
        self.inner.admit_reconnects(round, global)
    }

    fn shutdown(&mut self) {
        // A dead process announces nothing — its workers must see the
        // crash (bare EOF), not a graceful goodbye.
        if !self.killed {
            self.inner.shutdown();
        }
    }

    fn local_eval(
        &mut self,
        round: usize,
        global: &[f32],
    ) -> Vec<Result<LocalEval, TransportError>> {
        let n = RoundTransport::num_clients(&self.inner);
        let fate = self.begin_op();
        if self.killed || fate.kill_before {
            self.killed = true;
            return (0..n).map(|id| Err(self.dead_error(id))).collect();
        }
        let results = self.inner.local_eval(round, global);
        if fate.kill_after {
            self.killed = true;
            return (0..n).map(|id| Err(self.dead_error(id))).collect();
        }
        results
    }

    fn set_read_timeout(&mut self, timeout: std::time::Duration) {
        self.inner.set_read_timeout(timeout)
    }

    fn fatal_fault(&self) -> Option<&str> {
        if self.killed {
            Some("fault injection: coordinator killed")
        } else {
            None
        }
    }

    fn wire_stats(&self) -> WireStats {
        self.inner.wire_stats()
    }

    fn set_telemetry(&mut self, telemetry: &crate::telemetry::ServeTelemetry) {
        self.inner.set_telemetry(telemetry)
    }

    fn shard_retrain(
        &mut self,
        assign: &crate::shard::ShardRetrainAssign,
    ) -> Result<Vec<f32>, TransportError> {
        let fate = self.begin_op();
        if self.killed || fate.kill_before {
            self.killed = true;
            return Err(self.dead_error(assign.owner));
        }
        let out = self.inner.shard_retrain(assign);
        if fate.kill_after {
            self.killed = true;
            return Err(self.dead_error(assign.owner));
        }
        out
    }

    fn straggle_ms(&self, client_id: usize) -> u64 {
        match self.plan.byzantine_script(client_id) {
            Some(&ByzantineScript::Straggle { ms }) => ms,
            _ => self.inner.straggle_ms(client_id),
        }
    }
}

impl<T: ServeTransport> std::fmt::Debug for FaultyTransport<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FaultyTransport(op {}, killed {}, {} scheduled op(s))",
            self.op,
            self.killed,
            self.plan.at.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_drop_schedules_are_reproducible() {
        let a = FaultPlan::new().seeded_drops(7, 0..20, 4, 25);
        let b = FaultPlan::new().seeded_drops(7, 0..20, 4, 25);
        for op in 0..20 {
            assert_eq!(a.actions_at(op), b.actions_at(op));
        }
        let c = FaultPlan::new().seeded_drops(8, 0..20, 4, 25);
        assert!(
            (0..20).any(|op| a.actions_at(op) != c.actions_at(op)),
            "different seeds gave identical schedules"
        );
        let total: usize = (0..20).map(|op| a.actions_at(op).len()).sum();
        assert!(total > 0, "25% over 80 trials dropped nothing");
    }

    #[test]
    fn byzantine_scripts_parse_from_flag_syntax() {
        assert_eq!(
            ByzantineScript::parse("straggle:500"),
            Some(ByzantineScript::Straggle { ms: 500 })
        );
        assert_eq!(
            ByzantineScript::parse("scale:2.5"),
            Some(ByzantineScript::Scale { factor: 2.5 })
        );
        assert_eq!(ByzantineScript::parse("straggle"), None);
        assert_eq!(ByzantineScript::parse("straggle:abc"), None);
        assert_eq!(ByzantineScript::parse("straggle:500:extra"), None);
    }

    #[test]
    fn plan_builders_compose() {
        let plan = FaultPlan::new()
            .kill_before_at(3)
            .drop_client_at(1, 2)
            .delay_at(1, 5);
        assert_eq!(plan.actions_at(0), &[]);
        assert_eq!(plan.actions_at(3), &[FaultAction::KillBefore]);
        assert_eq!(
            plan.actions_at(1),
            &[FaultAction::DropClient(2), FaultAction::DelayMs(5)]
        );
    }
}
