//! Single-threaded worker **fleet host** (DESIGN.md §14).
//!
//! The high-fanout benchmarks register thousands of workers; a thread
//! per [`crate::worker::WorkerRuntime`] would exhaust any test box long
//! before the coordinator's reactor breaks a sweat. [`run_fleet`] hosts
//! an arbitrary number of worker runtimes on **one** thread: each
//! connects and handshakes in turn (the coordinator's accept loop
//! multiplexes, so sequential dialing cannot deadlock it), then all
//! sockets go non-blocking onto a private [`polling::Poller`] and a
//! small per-connection state machine answers assignments as they
//! arrive:
//!
//! ```text
//! Read ──frame──► WorkerRuntime::handle ──reply──► Write ──flushed──► Read
//!   │                                                │
//!   └── Shutdown / EOF → retire            fatal Err → flush, retire
//! ```
//!
//! The compute inside `handle` is the library's own `train_local_ce` /
//! `ClientDistiller::round` — the same functions a real worker daemon
//! runs — so a fleet-hosted federation stays bitwise identical to a
//! daemon-per-worker one; only the socket plumbing is shared.

use std::net::TcpStream;
use std::os::fd::AsRawFd;

use polling::{Event, Events, Poller};

use crate::nio::{FrameReadState, FrameWriteState};
use crate::wire::{
    decode_msg, encode_frame_into, read_frame, write_frame, FrameLimits, Msg, WireError,
};
use crate::worker::WorkerRuntime;

/// How a fleet run ended, per connection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetReport {
    /// Workers retired by a coordinator `Shutdown` frame.
    pub clean_shutdowns: usize,
    /// Workers retired by a disconnect, an I/O failure, or a fatal
    /// protocol reply (expected in tests that drop stragglers).
    pub dropped: usize,
    /// Total frame bytes the fleet wrote (handshakes + replies) — the
    /// worker-side mirror of the coordinator's
    /// `goldfish_wire_received_bytes_total`.
    pub bytes_sent: u64,
    /// Total frame bytes the fleet read (verdicts + assignments).
    pub bytes_received: u64,
}

/// What one fleet connection is doing between readiness events.
enum Phase {
    /// Awaiting the next coordinator frame.
    Read,
    /// Flushing a reply; `fatal` retires the connection once flushed
    /// (the reply was a protocol `Err`).
    Write { fatal: bool },
}

struct FleetConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    rd: FrameReadState,
    wr: FrameWriteState,
    phase: Phase,
}

/// How the event handler left one connection.
enum Outcome {
    /// Re-armed in the poller; nothing to do.
    Parked,
    /// Done (cleanly or not): deregister, close, tally.
    Retire { clean: bool },
}

/// Connects every runtime to `addr`, performs its
/// `Hello`/`Capabilities` handshake, then serves all of them from this
/// one thread until each is retired by `Shutdown` or disconnect.
/// Returns how the fleet wound down.
///
/// # Errors
///
/// [`WireError`] on a handshake failure (a coordinator that rejects any
/// fleet member at dial time) or a poller failure; per-connection I/O
/// failures after the handshake are counted as drops, not errors.
pub fn run_fleet(
    addr: &str,
    runtimes: &mut [WorkerRuntime],
    limits: &FrameLimits,
) -> Result<FleetReport, WireError> {
    polling::raise_nofile_limit().ok();
    let poller = Poller::new()?;
    let mut events = Events::new();
    let mut conns: Vec<Option<FleetConn>> = Vec::with_capacity(runtimes.len());
    let mut report = FleetReport::default();
    for runtime in runtimes.iter() {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        report.bytes_sent += write_frame(&mut stream, &runtime.hello(), limits)? as u64;
        let (reply, nbytes) = read_frame(&mut stream, limits)?;
        report.bytes_received += nbytes as u64;
        match reply {
            Msg::Capabilities { state_len, .. } => {
                if state_len as usize != runtime.state_len() {
                    return Err(WireError::Malformed(format!(
                        "coordinator model has {state_len} params, worker {} has {}",
                        runtime.client_id(),
                        runtime.state_len()
                    )));
                }
            }
            Msg::Err { code, detail } => {
                return Err(WireError::Malformed(format!(
                    "coordinator rejected worker {} (code {code}): {detail}",
                    runtime.client_id()
                )));
            }
            other => {
                return Err(WireError::Malformed(format!(
                    "expected Capabilities for worker {}, got {}",
                    runtime.client_id(),
                    other.name()
                )));
            }
        }
        stream.set_nonblocking(true)?;
        let key = conns.len();
        poller.add(stream.as_raw_fd(), Event::readable(key))?;
        conns.push(Some(FleetConn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            rd: FrameReadState::new(),
            wr: FrameWriteState::new(),
            phase: Phase::Read,
        }));
    }
    let mut live = conns.len();
    while live > 0 {
        poller.wait(&mut events, None)?;
        for ev in events.iter() {
            let idx = ev.key;
            let Some(slot) = conns.get_mut(idx) else {
                continue;
            };
            let outcome = 'conn: {
                let Some(conn) = slot.as_mut() else {
                    break 'conn Outcome::Parked;
                };
                // Drive the state machine until it parks (WouldBlock)
                // or retires; a reply usually flushes in the same
                // readiness event that delivered its assignment.
                loop {
                    match conn.phase {
                        Phase::Read => {
                            match conn.rd.poll(&mut conn.stream, &mut conn.rbuf, limits) {
                                Ok(None) => {
                                    if poller
                                        .modify(conn.stream.as_raw_fd(), Event::readable(idx))
                                        .is_err()
                                    {
                                        break 'conn Outcome::Retire { clean: false };
                                    }
                                    break 'conn Outcome::Parked;
                                }
                                Err(_) => break 'conn Outcome::Retire { clean: false },
                                Ok(Some((kind, nbytes))) => {
                                    report.bytes_received += nbytes as u64;
                                    let Ok(msg) = decode_msg(kind, &conn.rbuf) else {
                                        break 'conn Outcome::Retire { clean: false };
                                    };
                                    if matches!(msg, Msg::Shutdown) {
                                        break 'conn Outcome::Retire { clean: true };
                                    }
                                    if matches!(msg, Msg::Err { .. }) {
                                        // A coordinator-side eviction
                                        // notice (e.g. quarantine).
                                        break 'conn Outcome::Retire { clean: false };
                                    }
                                    let Some(runtime) = runtimes.get_mut(idx) else {
                                        break 'conn Outcome::Retire { clean: false };
                                    };
                                    let reply = runtime.handle(msg);
                                    let fatal = matches!(reply, Msg::Err { .. });
                                    if encode_frame_into(&reply, &mut conn.wbuf, limits).is_err() {
                                        break 'conn Outcome::Retire { clean: false };
                                    }
                                    conn.wr.reset();
                                    conn.phase = Phase::Write { fatal };
                                }
                            }
                        }
                        Phase::Write { fatal } => {
                            match conn.wr.poll(&mut conn.stream, &conn.wbuf) {
                                Ok(false) => {
                                    if poller
                                        .modify(conn.stream.as_raw_fd(), Event::writable(idx))
                                        .is_err()
                                    {
                                        break 'conn Outcome::Retire { clean: false };
                                    }
                                    break 'conn Outcome::Parked;
                                }
                                Err(_) => break 'conn Outcome::Retire { clean: false },
                                Ok(true) => {
                                    report.bytes_sent += conn.wbuf.len() as u64;
                                    if fatal {
                                        break 'conn Outcome::Retire { clean: false };
                                    }
                                    conn.rd.reset();
                                    conn.phase = Phase::Read;
                                    // Level-triggered re-arm: a frame
                                    // already buffered fires instantly.
                                    if poller
                                        .modify(conn.stream.as_raw_fd(), Event::readable(idx))
                                        .is_err()
                                    {
                                        break 'conn Outcome::Retire { clean: false };
                                    }
                                    break 'conn Outcome::Parked;
                                }
                            }
                        }
                    }
                }
            };
            if let Outcome::Retire { clean } = outcome {
                if let Some(conn) = slot.take() {
                    let _ = poller.delete(conn.stream.as_raw_fd());
                    live -= 1;
                    if clean {
                        report.clean_shutdowns += 1;
                    } else {
                        report.dropped += 1;
                    }
                }
            }
        }
    }
    Ok(report)
}
