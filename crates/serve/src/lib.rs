//! `goldfish-serve` — the networked federation layer (DESIGN.md §10).
//!
//! PRs 1–3 built the Goldfish stack as a single-process library; this
//! crate turns it into a client/server system on plain `std::net`:
//!
//! * [`wire`] — the versioned, length-prefixed binary protocol
//!   ([`wire::Msg`] frames riding `goldfish_tensor::serialize`'s bulk
//!   f32 codec, with explicit max-frame-size and version checks),
//! * [`tcp`] — the coordinator-side [`tcp::TcpTransport`] implementing
//!   `goldfish_fed::transport::RoundTransport` and
//!   `goldfish_core::transport::DistillTransport`: a single-threaded
//!   readiness reactor (DESIGN.md §14) owning every worker socket
//!   behind one `polling`-style poller — non-blocking framed I/O with
//!   per-connection state machines, per-client deadlines enforced via
//!   the poll timeout, and reply-handler panics contained to typed
//!   per-client failures,
//! * [`nio`] — the resumable non-blocking frame
//!   reader/writer state machines the reactor and fleet host drive,
//! * [`fleet`] — [`fleet::run_fleet`]: any number of worker runtimes
//!   served from one thread behind one poller (the 4096-connection
//!   bench harness),
//! * [`transport`] — the in-process [`transport::LoopbackTransport`]:
//!   the same contract over `goldfish_fed`'s/`goldfish_core`'s loopback
//!   executors, the reference every TCP run is bitwise-checked against,
//! * [`worker`] — the worker-side state machine
//!   ([`worker::WorkerRuntime`]) and connection loop shared by the
//!   `goldfish-worker` daemon and the tests,
//! * [`queue`] — the FIFO [`queue::UnlearnQueue`] with per-client
//!   dedupe, drained between training rounds (the paper's
//!   request-then-retrain flow),
//! * [`shard`] — shard-isolated unlearning (DESIGN.md §16): the
//!   coordinator-owned [`shard::ShardMap`] (Eqs 8–10 mirrors +
//!   tombstones), the shard-granular task queue, and the XOR parity
//!   groups backing deadline-degraded drains,
//! * [`coordinator`] — the [`coordinator::Coordinator`]: owns the global
//!   state and the queue, drives training rounds and unlearning requests
//!   over any transport, with straggler drop + re-round,
//!   arrival-order-independent aggregation, and deterministic seeded
//!   cohort sampling (`cohort_fraction`, DESIGN.md §14),
//! * [`demo`] — the deterministic demo workload both daemons derive
//!   from `(seed, clients, samples)` so they agree on data without any
//!   file exchange,
//! * [`durability`] — crash safety (DESIGN.md §12): versioned,
//!   checksummed, atomically-renamed checkpoints plus a write-ahead log
//!   for the unlearning queue (fsync-before-ack), replayed on restart
//!   so a recovered coordinator resumes the exact round stream,
//! * [`audit`] — the hash-chained append-only log of served unlearning
//!   requests (`goldfish-coordinator --verify-audit` re-walks it),
//! * [`digest`] — dependency-free SHA-256 backing checkpoints, the WAL,
//!   the audit chain and the `Digest` wire frame,
//! * [`fault`] — the seeded fault-injection harness
//!   ([`fault::FaultyTransport`]) the crash-kill-restart tests drive,
//! * [`telemetry`] — the observability surface (DESIGN.md §15): the
//!   preregistered metric catalog ([`telemetry::ServeTelemetry`])
//!   threaded through the round loop, the TCP reactor, the queue and
//!   the durable store — zero allocation on the steady-state path,
//!   never on the numeric path,
//! * [`admin`] — the read-only `--metrics-addr` endpoint serving the
//!   registry as Prometheus text, JSON and a status table.
//!
//! Daemons: `goldfish-coordinator` and `goldfish-worker` (see the root
//! README for a quickstart); `bench_serve` in `goldfish-bench` measures
//! rounds/sec and wire bytes/round for both transports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admin;
pub mod audit;
pub mod coordinator;
pub mod demo;
pub mod digest;
pub mod durability;
pub mod fault;
pub mod fleet;
pub mod nio;
pub mod queue;
pub mod shard;
pub mod tcp;
pub mod telemetry;
pub mod transport;
pub mod wire;
pub mod worker;
