//! Non-blocking framed I/O state machines (DESIGN.md §14).
//!
//! The reactor ([`crate::tcp`]) and the worker fleet host
//! ([`crate::fleet`]) own many sockets on one thread, so neither can
//! block inside a frame. The two state machines here carry a frame
//! across any number of partial reads/writes:
//!
//! * [`FrameReadState`] — accumulates the 10-byte GFWP header, then the
//!   payload into a caller-owned (pooled) buffer; `poll` returns
//!   `Ok(None)` on `WouldBlock` and `Ok(Some((kind, frame_len)))` when
//!   a frame completes.
//! * [`FrameWriteState`] — a cursor over an already-encoded frame;
//!   `poll` returns `Ok(false)` on `WouldBlock` and `Ok(true)` when the
//!   frame is fully flushed to the socket.
//!
//! EOF semantics mirror [`crate::wire::read_raw_frame`] exactly: a
//! clean close **between** frames is `WireError::Io(UnexpectedEof)`,
//! a close **inside** a frame is [`WireError::DisconnectedMidFrame`] —
//! the distinction that drives reconnect/backoff policy.

use std::io::{Read, Write};

use crate::wire::{decode_header, FrameLimits, WireError, HEADER_LEN};

/// Incremental reader of one length-prefixed frame.
#[derive(Debug)]
pub struct FrameReadState {
    header: [u8; HEADER_LEN],
    /// Bytes of the header received so far.
    filled: usize,
    /// Decoded `(kind, payload_len)` once the header is complete.
    decoded: Option<(u8, usize)>,
    /// Payload bytes received so far.
    payload_filled: usize,
}

impl FrameReadState {
    /// An empty reader, ready for a frame's first byte.
    pub fn new() -> FrameReadState {
        FrameReadState {
            header: [0u8; HEADER_LEN],
            filled: 0,
            decoded: None,
            payload_filled: 0,
        }
    }

    /// Forgets any partial frame (connection reuse across fan-outs).
    pub fn reset(&mut self) {
        self.filled = 0;
        self.decoded = None;
        self.payload_filled = 0;
    }

    /// Whether any bytes of the current frame have arrived — what turns
    /// a subsequent EOF into [`WireError::DisconnectedMidFrame`].
    pub fn mid_frame(&self) -> bool {
        self.filled > 0
    }

    /// Advances the frame as far as `r` allows without blocking. The
    /// payload lands in `buf` (cleared and resized on header
    /// completion, reusing capacity). Returns `Ok(Some((kind,
    /// frame_len)))` when the frame is complete — the state resets
    /// itself for the next frame — or `Ok(None)` when `r` would block.
    ///
    /// # Errors
    ///
    /// Header/limit violations from [`decode_header`], I/O errors, and
    /// the EOF split described at module level.
    pub fn poll(
        &mut self,
        r: &mut impl Read,
        buf: &mut Vec<u8>,
        limits: &FrameLimits,
    ) -> Result<Option<(u8, usize)>, WireError> {
        loop {
            if self.decoded.is_none() {
                // Header phase: byte-counted so a close at offset 0
                // stays distinguishable from a mid-header close.
                match r.read(&mut self.header[self.filled..]) {
                    Ok(0) => {
                        return Err(if self.filled == 0 {
                            WireError::Io {
                                kind: std::io::ErrorKind::UnexpectedEof,
                                detail: "clean eof before frame".into(),
                            }
                        } else {
                            WireError::DisconnectedMidFrame {
                                got: self.filled,
                                want: HEADER_LEN,
                            }
                        });
                    }
                    Ok(n) => {
                        self.filled += n;
                        if self.filled < HEADER_LEN {
                            continue;
                        }
                        let (kind, len) = decode_header(&self.header, limits)?;
                        self.decoded = Some((kind, len));
                        self.payload_filled = 0;
                        buf.clear();
                        buf.resize(len, 0);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(None),
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e.into()),
                }
                continue;
            }
            let Some((kind, len)) = self.decoded else {
                continue;
            };
            if self.payload_filled == len {
                self.reset();
                return Ok(Some((kind, HEADER_LEN + len)));
            }
            match r.read(&mut buf[self.payload_filled..len]) {
                Ok(0) => {
                    return Err(WireError::DisconnectedMidFrame {
                        got: HEADER_LEN + self.payload_filled,
                        want: HEADER_LEN + len,
                    });
                }
                Ok(n) => self.payload_filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }
}

impl Default for FrameReadState {
    fn default() -> FrameReadState {
        FrameReadState::new()
    }
}

/// Incremental writer of one already-encoded frame.
#[derive(Debug)]
pub struct FrameWriteState {
    pos: usize,
}

impl FrameWriteState {
    /// A writer at the start of a frame.
    pub fn new() -> FrameWriteState {
        FrameWriteState { pos: 0 }
    }

    /// Rewinds to the start of (the next) frame.
    pub fn reset(&mut self) {
        self.pos = 0;
    }

    /// Bytes of the current frame already written.
    pub fn written(&self) -> usize {
        self.pos
    }

    /// Writes as much of `frame` as `w` accepts without blocking.
    /// Returns `Ok(true)` when the frame is fully written (the cursor
    /// resets for the next frame), `Ok(false)` when `w` would block.
    ///
    /// # Errors
    ///
    /// I/O failures; a writer accepting zero bytes is reported as
    /// [`std::io::ErrorKind::WriteZero`].
    pub fn poll(&mut self, w: &mut impl Write, frame: &[u8]) -> Result<bool, WireError> {
        while self.pos < frame.len() {
            match w.write(&frame[self.pos..]) {
                Ok(0) => {
                    return Err(WireError::Io {
                        kind: std::io::ErrorKind::WriteZero,
                        detail: "socket accepted zero bytes".into(),
                    });
                }
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        self.pos = 0;
        Ok(true)
    }
}

impl Default for FrameWriteState {
    fn default() -> FrameWriteState {
        FrameWriteState::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{encode_frame, Msg};

    /// A reader delivering its bytes in scripted chunk sizes with
    /// `WouldBlock` between chunks — the worst-case interleaving a
    /// non-blocking socket can produce.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
        /// Alternates ready/would-block to exercise the re-poll path.
        parity: bool,
    }

    impl std::io::Read for Trickle {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            self.parity = !self.parity;
            if self.parity {
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            let n = self.chunk.min(self.data.len() - self.pos).min(out.len());
            if n == 0 {
                return Ok(0);
            }
            out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn read_reassembles_across_arbitrary_chunking() {
        let limits = FrameLimits::default();
        let msg = Msg::Err {
            code: 7,
            detail: "split me into tiny pieces".into(),
        };
        let frame = encode_frame(&msg, &limits).unwrap();
        for chunk in [1, 2, 3, 7, frame.len()] {
            let mut r = Trickle {
                data: frame.clone(),
                pos: 0,
                chunk,
                parity: false,
            };
            let mut st = FrameReadState::new();
            let mut buf = Vec::new();
            let done = loop {
                match st.poll(&mut r, &mut buf, &limits).unwrap() {
                    Some(done) => break done,
                    None => continue,
                }
            };
            assert_eq!(done.1, frame.len());
            let decoded = crate::wire::decode_msg(done.0, &buf).unwrap();
            assert!(matches!(decoded, Msg::Err { code: 7, .. }), "chunk {chunk}");
        }
    }

    #[test]
    fn eof_split_clean_vs_mid_frame() {
        let limits = FrameLimits::default();
        let frame = encode_frame(&Msg::Ack, &limits).unwrap();

        // Clean EOF before any byte.
        let mut st = FrameReadState::new();
        let mut buf = Vec::new();
        let mut empty: &[u8] = &[];
        let err = st.poll(&mut empty, &mut buf, &limits).unwrap_err();
        assert!(matches!(
            err,
            WireError::Io {
                kind: std::io::ErrorKind::UnexpectedEof,
                ..
            }
        ));

        // EOF after a partial header: the peer died mid-frame.
        let mut st = FrameReadState::new();
        let mut partial: &[u8] = &frame[..4];
        // First poll consumes the 4 bytes then hits EOF inside the
        // header.
        let err = st.poll(&mut partial, &mut buf, &limits).unwrap_err();
        assert!(matches!(
            err,
            WireError::DisconnectedMidFrame { got: 4, .. }
        ));
    }

    #[test]
    fn write_resumes_after_would_block() {
        struct OneByte {
            out: Vec<u8>,
            parity: bool,
        }
        impl std::io::Write for OneByte {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.parity = !self.parity;
                if self.parity {
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                self.out.push(data[0]);
                Ok(1)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let limits = FrameLimits::default();
        let frame = encode_frame(&Msg::Shutdown, &limits).unwrap();
        let mut w = OneByte {
            out: Vec::new(),
            parity: false,
        };
        let mut st = FrameWriteState::new();
        let mut polls = 0;
        while !st.poll(&mut w, &frame).unwrap() {
            polls += 1;
            assert!(polls < 10_000, "writer wedged");
        }
        assert_eq!(w.out, frame);
        assert_eq!(st.written(), 0); // cursor reset for the next frame
    }
}
