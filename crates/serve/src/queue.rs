//! The server's FIFO unlearning request queue.
//!
//! Deletion requests arrive while training is in progress; the
//! coordinator queues them and drains the queue **between** federated
//! rounds (the paper's request-then-retrain flow — a request never
//! interrupts a round mid-flight). Requests are deduplicated per client:
//! a second request from a client that already has one pending merges
//! its indices into the pending entry (keeping the original FIFO
//! position), so one distillation pass serves both.

use goldfish_telemetry::events::EventKind;

use crate::telemetry::QueueTelemetry;

/// One deletion request: a client asks the server to unlearn some of its
/// local samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnlearnRequest {
    /// The requesting client.
    pub client_id: usize,
    /// Indices into that client's local dataset, sorted and deduplicated
    /// by [`UnlearnQueue::submit`].
    pub removed: Vec<usize>,
}

impl UnlearnRequest {
    /// A request to forget `removed` samples of `client_id`.
    pub fn new(client_id: usize, mut removed: Vec<usize>) -> Self {
        removed.sort_unstable();
        removed.dedup();
        UnlearnRequest { client_id, removed }
    }
}

/// FIFO queue of pending [`UnlearnRequest`]s with per-client dedupe.
#[derive(Debug, Default)]
pub struct UnlearnQueue {
    pending: Vec<UnlearnRequest>,
    submitted: usize,
    merged: usize,
    /// Registry handles (detached by default: counting is unconditional,
    /// export happens only once a coordinator attaches its catalog).
    telemetry: QueueTelemetry,
}

impl UnlearnQueue {
    /// An empty queue.
    pub fn new() -> Self {
        UnlearnQueue::default()
    }

    /// Rebinds the queue's depth gauge and submit/merge counters to a
    /// shared catalog's cells (carrying current values forward).
    pub fn set_telemetry(&mut self, telemetry: QueueTelemetry) {
        telemetry.submitted_total.add(self.submitted as u64);
        telemetry.merged_total.add(self.merged as u64);
        telemetry.depth.set(self.pending.len() as i64);
        self.telemetry = telemetry;
    }

    /// Enqueues a request. If the client already has a pending request
    /// the indices are merged into it (union, sorted) and the existing
    /// FIFO position is kept; otherwise the request joins the tail.
    pub fn submit(&mut self, req: UnlearnRequest) {
        self.submitted += 1;
        self.telemetry.submitted_total.inc();
        let req = UnlearnRequest::new(req.client_id, req.removed);
        let (ev_client, ev_removed) = (req.client_id as u64, req.removed.len() as u64);
        if let Some(existing) = self
            .pending
            .iter_mut()
            .find(|r| r.client_id == req.client_id)
        {
            existing.removed.extend(req.removed);
            existing.removed.sort_unstable();
            existing.removed.dedup();
            self.merged += 1;
            self.telemetry.merged_total.inc();
        } else {
            self.pending.push(req);
        }
        self.telemetry.depth.set(self.pending.len() as i64);
        self.telemetry.trace.record(EventKind::UnlearnQueued {
            client: ev_client,
            removed: ev_removed,
            depth: self.pending.len() as u64,
        });
    }

    /// Removes and returns every pending request, in FIFO order.
    pub fn drain(&mut self) -> Vec<UnlearnRequest> {
        self.telemetry.depth.set(0);
        std::mem::take(&mut self.pending)
    }

    /// Removes and returns at most `limit` requests from the head of
    /// the queue, in FIFO order. Requests left behind keep their
    /// positions; a client whose request was just drained and who
    /// submits again starts a **new** tail entry (drained requests are
    /// served — they are no longer merge targets).
    pub fn drain_batch(&mut self, limit: usize) -> Vec<UnlearnRequest> {
        let n = limit.min(self.pending.len());
        let batch: Vec<UnlearnRequest> = self.pending.drain(..n).collect();
        self.telemetry.depth.set(self.pending.len() as i64);
        batch
    }

    /// A read-only view of the pending requests, in FIFO order — what a
    /// durability checkpoint persists.
    pub fn pending(&self) -> &[UnlearnRequest] {
        &self.pending
    }

    /// Replaces the pending queue wholesale — the recovery path,
    /// rebuilding the exact pre-crash queue from checkpoint + WAL
    /// replay. Counters are not touched: they describe this process's
    /// observations, not the durable state.
    pub fn restore(&mut self, pending: Vec<UnlearnRequest>) {
        self.pending = pending;
        self.telemetry.depth.set(self.pending.len() as i64);
    }

    /// Pending request count (after dedupe).
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Total submissions observed (including merged ones).
    pub fn submitted(&self) -> usize {
        self.submitted
    }

    /// Submissions that merged into an already-pending request.
    pub fn merged(&self) -> usize {
        self.merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_kept() {
        let mut q = UnlearnQueue::new();
        q.submit(UnlearnRequest::new(2, vec![1]));
        q.submit(UnlearnRequest::new(0, vec![3]));
        let drained = q.drain();
        assert_eq!(drained[0].client_id, 2);
        assert_eq!(drained[1].client_id, 0);
        assert!(q.is_empty());
    }

    #[test]
    fn per_client_requests_merge_in_place() {
        let mut q = UnlearnQueue::new();
        q.submit(UnlearnRequest::new(1, vec![5, 3]));
        q.submit(UnlearnRequest::new(0, vec![9]));
        q.submit(UnlearnRequest::new(1, vec![3, 7]));
        assert_eq!(q.len(), 2);
        assert_eq!(q.submitted(), 3);
        assert_eq!(q.merged(), 1);
        let drained = q.drain();
        // Client 1 keeps its original (first) position; indices merged,
        // sorted, deduplicated.
        assert_eq!(drained[0], UnlearnRequest::new(1, vec![3, 5, 7]));
        assert_eq!(drained[1], UnlearnRequest::new(0, vec![9]));
    }

    #[test]
    fn new_normalizes_indices() {
        let r = UnlearnRequest::new(0, vec![4, 1, 4, 2]);
        assert_eq!(r.removed, vec![1, 2, 4]);
    }

    #[test]
    fn duplicate_sample_ids_merge_to_one_occurrence() {
        let mut q = UnlearnQueue::new();
        // Duplicates both within one submission and across merged
        // submissions must collapse: a sample can only be forgotten
        // once.
        q.submit(UnlearnRequest {
            client_id: 0,
            removed: vec![7, 7, 3, 7],
        });
        q.submit(UnlearnRequest {
            client_id: 0,
            removed: vec![3, 9, 9],
        });
        let drained = q.drain();
        assert_eq!(drained, vec![UnlearnRequest::new(0, vec![3, 7, 9])]);
    }

    #[test]
    fn merge_after_partial_drain_starts_a_fresh_entry() {
        let mut q = UnlearnQueue::new();
        q.submit(UnlearnRequest::new(1, vec![5]));
        q.submit(UnlearnRequest::new(2, vec![6]));
        let first = q.drain_batch(1);
        assert_eq!(first, vec![UnlearnRequest::new(1, vec![5])]);
        assert_eq!(q.len(), 1);

        // Client 1's earlier request is being served; a new submission
        // must NOT merge into the drained (already in-flight) batch —
        // it queues behind client 2.
        q.submit(UnlearnRequest::new(1, vec![8]));
        let rest = q.drain();
        assert_eq!(
            rest,
            vec![
                UnlearnRequest::new(2, vec![6]),
                UnlearnRequest::new(1, vec![8]),
            ]
        );
    }

    #[test]
    fn submit_while_draining_lands_in_the_next_batch() {
        let mut q = UnlearnQueue::new();
        q.submit(UnlearnRequest::new(0, vec![1]));
        let batch = q.drain();
        // The drained batch is a snapshot: a submission arriving while
        // it is being served neither appears in it nor is lost.
        q.submit(UnlearnRequest::new(3, vec![2]));
        assert_eq!(batch, vec![UnlearnRequest::new(0, vec![1])]);
        assert_eq!(q.drain(), vec![UnlearnRequest::new(3, vec![2])]);
    }

    #[test]
    fn drain_batch_bounds_and_preserves_order() {
        let mut q = UnlearnQueue::new();
        for c in 0..5 {
            q.submit(UnlearnRequest::new(c, vec![c]));
        }
        assert_eq!(q.drain_batch(0), vec![]);
        let two = q.drain_batch(2);
        assert_eq!(two.iter().map(|r| r.client_id).collect::<Vec<_>>(), [0, 1]);
        let rest = q.drain_batch(99);
        assert_eq!(
            rest.iter().map(|r| r.client_id).collect::<Vec<_>>(),
            [2, 3, 4]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn restore_rebuilds_the_exact_queue() {
        let mut q = UnlearnQueue::new();
        q.restore(vec![
            UnlearnRequest::new(2, vec![1]),
            UnlearnRequest::new(0, vec![4]),
        ]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pending()[0].client_id, 2);
        // Replayed WAL submissions merge into restored entries exactly
        // as the original submissions did.
        q.submit(UnlearnRequest::new(2, vec![9]));
        assert_eq!(q.pending()[0], UnlearnRequest::new(2, vec![1, 9]));
    }
}
