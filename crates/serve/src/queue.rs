//! The server's FIFO unlearning request queue.
//!
//! Deletion requests arrive while training is in progress; the
//! coordinator queues them and drains the queue **between** federated
//! rounds (the paper's request-then-retrain flow — a request never
//! interrupts a round mid-flight). Requests are deduplicated per client:
//! a second request from a client that already has one pending merges
//! its indices into the pending entry (keeping the original FIFO
//! position), so one distillation pass serves both.

/// One deletion request: a client asks the server to unlearn some of its
/// local samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnlearnRequest {
    /// The requesting client.
    pub client_id: usize,
    /// Indices into that client's local dataset, sorted and deduplicated
    /// by [`UnlearnQueue::submit`].
    pub removed: Vec<usize>,
}

impl UnlearnRequest {
    /// A request to forget `removed` samples of `client_id`.
    pub fn new(client_id: usize, mut removed: Vec<usize>) -> Self {
        removed.sort_unstable();
        removed.dedup();
        UnlearnRequest { client_id, removed }
    }
}

/// FIFO queue of pending [`UnlearnRequest`]s with per-client dedupe.
#[derive(Debug, Default)]
pub struct UnlearnQueue {
    pending: Vec<UnlearnRequest>,
    submitted: usize,
    merged: usize,
}

impl UnlearnQueue {
    /// An empty queue.
    pub fn new() -> Self {
        UnlearnQueue::default()
    }

    /// Enqueues a request. If the client already has a pending request
    /// the indices are merged into it (union, sorted) and the existing
    /// FIFO position is kept; otherwise the request joins the tail.
    pub fn submit(&mut self, req: UnlearnRequest) {
        self.submitted += 1;
        let req = UnlearnRequest::new(req.client_id, req.removed);
        if let Some(existing) = self
            .pending
            .iter_mut()
            .find(|r| r.client_id == req.client_id)
        {
            existing.removed.extend(req.removed);
            existing.removed.sort_unstable();
            existing.removed.dedup();
            self.merged += 1;
        } else {
            self.pending.push(req);
        }
    }

    /// Removes and returns every pending request, in FIFO order.
    pub fn drain(&mut self) -> Vec<UnlearnRequest> {
        std::mem::take(&mut self.pending)
    }

    /// Pending request count (after dedupe).
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Total submissions observed (including merged ones).
    pub fn submitted(&self) -> usize {
        self.submitted
    }

    /// Submissions that merged into an already-pending request.
    pub fn merged(&self) -> usize {
        self.merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_kept() {
        let mut q = UnlearnQueue::new();
        q.submit(UnlearnRequest::new(2, vec![1]));
        q.submit(UnlearnRequest::new(0, vec![3]));
        let drained = q.drain();
        assert_eq!(drained[0].client_id, 2);
        assert_eq!(drained[1].client_id, 0);
        assert!(q.is_empty());
    }

    #[test]
    fn per_client_requests_merge_in_place() {
        let mut q = UnlearnQueue::new();
        q.submit(UnlearnRequest::new(1, vec![5, 3]));
        q.submit(UnlearnRequest::new(0, vec![9]));
        q.submit(UnlearnRequest::new(1, vec![3, 7]));
        assert_eq!(q.len(), 2);
        assert_eq!(q.submitted(), 3);
        assert_eq!(q.merged(), 1);
        let drained = q.drain();
        // Client 1 keeps its original (first) position; indices merged,
        // sorted, deduplicated.
        assert_eq!(drained[0], UnlearnRequest::new(1, vec![3, 5, 7]));
        assert_eq!(drained[1], UnlearnRequest::new(0, vec![9]));
    }

    #[test]
    fn new_normalizes_indices() {
        let r = UnlearnRequest::new(0, vec![4, 1, 4, 2]);
        assert_eq!(r.removed, vec![1, 2, 4]);
    }
}
