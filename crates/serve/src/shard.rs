//! Shard-isolated unlearning with coded straggler tolerance
//! (DESIGN.md §16).
//!
//! The paper's per-client sharding (Eqs 8–10, `ShardedClient`) lives in
//! `goldfish_core`; this module ports the *architecture* of "Scalable
//! Federated Unlearning via Isolated and Coded Sharding" (Lin et al.
//! 2024) onto the coordinator:
//!
//! * [`ShardMap`] — the coordinator-owned mirror of every client's
//!   shard states and sizes (the Eq 8/9 arithmetic view), plus
//!   **tombstones**: deletion requests always address the client's
//!   *original* dataset ordering, and removed rows accumulate per shard
//!   instead of shifting indices — so queued tasks stay valid across
//!   drains and crash-restarts.
//! * [`ShardTaskQueue`] — the shard-granular work queue: a deletion
//!   drains as O(affected shards) retrain tasks, with per-`(client,
//!   shard)` dedupe/merge mirroring the whole-client queue's FIFO
//!   semantics.
//! * **XOR parity groups** — clients are chunked (by id) into
//!   redundancy groups of `group` members; each group keeps one parity
//!   block, the bitwise XOR of its members' flattened shard-state
//!   matrices. When a shard's owner misses the drain deadline, the
//!   owner's states are [reconstructed](ShardMap::reconstruct) from
//!   parity ⊕ the healthy members — XOR is exact on f32 bit patterns,
//!   so the Eq 9 checkpoint computed from the reconstruction is
//!   **bitwise identical** to the healthy path, and a degraded drain
//!   commits the same bytes a healthy one would.
//!
//! Everything here is pure bookkeeping: retrains execute on the
//! transport (`ServeTransport::shard_retrain`, sharing
//! `goldfish_core::optimization::retrain_shard` with the in-core
//! deletion path), and persistence rides the checkpoint/WAL layer via
//! [`ShardSnapshot`].

use goldfish_core::ShardedLocalModel;
use goldfish_data::partition;
use goldfish_fed::trainer::TrainConfig;
use goldfish_tensor::serialize;

/// Shard-mode policy knobs (`--shards`, `--shard-group`,
/// `--drain-deadline-ms`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPolicy {
    /// Shards per client (τ, round-robin sample → shard `g % τ`).
    pub tau: usize,
    /// Redundancy-group size: clients `[g·k, (g+1)·k)` form group `g`
    /// and share one XOR parity block. `1` disables delegation (a group
    /// of one has no healthy member to delegate to).
    pub group: usize,
    /// Drain deadline in milliseconds; `0` = unbounded. A task whose
    /// executor would push the drain's consumed budget past the
    /// deadline is re-enqueued for the next drain; an owner whose
    /// injected straggle alone meets the deadline is bypassed via
    /// parity reconstruction + delegation.
    pub deadline_ms: u64,
}

impl ShardPolicy {
    /// The redundancy group client `id` belongs to.
    pub fn group_of(&self, id: usize) -> usize {
        id / self.group.max(1)
    }

    /// The member ids of group `g` over an `n`-client registry.
    pub fn members(&self, g: usize, n: usize) -> Vec<usize> {
        let k = self.group.max(1);
        (g * k..((g + 1) * k).min(n)).collect()
    }
}

/// One shard-granular retrain task: remove `rows` (original-order
/// sample indices) from `(client_id, shard)` and retrain that shard
/// from its Eq 9 checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTask {
    /// The client whose shard is affected.
    pub client_id: usize,
    /// The affected shard index.
    pub shard: usize,
    /// Newly removed rows, as indices into the client's **original**
    /// dataset ordering — sorted, deduplicated.
    pub rows: Vec<usize>,
}

impl ShardTask {
    /// Builds a task, sorting and deduplicating `rows`.
    pub fn new(client_id: usize, shard: usize, mut rows: Vec<usize>) -> Self {
        rows.sort_unstable();
        rows.dedup();
        ShardTask {
            client_id,
            shard,
            rows,
        }
    }
}

/// FIFO queue of shard retrain tasks with per-`(client, shard)` merge:
/// a second deletion hitting a shard whose task is still pending merges
/// into it (keeping the earlier FIFO position) instead of queueing a
/// second retrain of the same shard.
#[derive(Debug, Default)]
pub struct ShardTaskQueue {
    pending: Vec<ShardTask>,
    submitted: usize,
    merged: usize,
}

impl ShardTaskQueue {
    /// An empty queue.
    pub fn new() -> Self {
        ShardTaskQueue::default()
    }

    /// Queues (or merges) one task; returns the queue depth after.
    pub fn submit(&mut self, task: ShardTask) -> usize {
        self.submitted += 1;
        if let Some(existing) = self
            .pending
            .iter_mut()
            .find(|t| t.client_id == task.client_id && t.shard == task.shard)
        {
            existing.rows.extend_from_slice(&task.rows);
            existing.rows.sort_unstable();
            existing.rows.dedup();
            self.merged += 1;
        } else {
            self.pending.push(task);
        }
        self.pending.len()
    }

    /// Takes every pending task (FIFO order), leaving the queue empty.
    pub fn drain_all(&mut self) -> Vec<ShardTask> {
        std::mem::take(&mut self.pending)
    }

    /// Takes up to `limit` tasks off the front (FIFO order). Drained
    /// tasks are no longer merge targets — exactly the whole-client
    /// queue's `drain_batch` contract.
    pub fn drain_batch(&mut self, limit: usize) -> Vec<ShardTask> {
        let n = limit.min(self.pending.len());
        self.pending.drain(..n).collect()
    }

    /// Re-enqueues a drain's unfinished remainder **at the front**, in
    /// order — those tasks were first in line and stay first.
    pub fn requeue_front(&mut self, remainder: Vec<ShardTask>) {
        if remainder.is_empty() {
            return;
        }
        let tail = std::mem::take(&mut self.pending);
        self.pending = remainder;
        self.pending.extend(tail);
    }

    /// Restores a recovered checkpoint's pending tasks verbatim.
    pub fn restore(&mut self, pending: Vec<ShardTask>) {
        self.pending = pending;
    }

    /// The pending tasks, FIFO order.
    pub fn pending(&self) -> &[ShardTask] {
        &self.pending
    }

    /// Pending task count.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Tasks submitted (including merged) since construction.
    pub fn submitted(&self) -> usize {
        self.submitted
    }

    /// Submissions that merged into a pending task.
    pub fn merged(&self) -> usize {
        self.merged
    }
}

/// What a transport executes for one shard retrain — the serve-layer
/// analogue of `ShardedClient`'s internal retrain job, shipped as a
/// `ShardAssign` wire frame on TCP.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRetrainAssign {
    /// The client whose data the shard belongs to.
    pub owner: usize,
    /// The group member running the retrain (`owner` on the healthy
    /// path; a delegate when the owner straggled past the deadline).
    pub executor: usize,
    /// The affected shard index.
    pub shard: usize,
    /// Shards per client (τ) — the executor re-derives shard membership
    /// from it.
    pub tau: usize,
    /// Surviving rows of the shard, as indices into the owner's
    /// **original** dataset ordering.
    pub keep_rows: Vec<usize>,
    /// The Eq 9 restart checkpoint (all-zero means fresh init — the
    /// τ = 1 degenerate case).
    pub checkpoint: Vec<f32>,
    /// Local training hyperparameters.
    pub cfg: TrainConfig,
    /// The retrain seed.
    pub seed: u64,
}

/// Per-client mirror: shard states + remaining sizes (the Eq 8/9
/// arithmetic view) plus the removed-row tombstones.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientShards {
    /// States + remaining sizes, the Eqs 8–10 arithmetic.
    pub model: ShardedLocalModel,
    /// Per-shard removed rows (original-order indices), sorted.
    pub removed: Vec<Vec<usize>>,
    /// The client's original dataset length (never shrinks — removal
    /// indices always address this ordering).
    pub original_len: usize,
}

/// The coordinator-owned shard map: every client's shard mirror plus
/// the XOR parity blocks of the redundancy groups.
#[derive(Debug, Clone)]
pub struct ShardMap {
    policy: ShardPolicy,
    clients: Vec<ClientShards>,
    /// Per-group parity: XOR of members' flattened shard-state bit
    /// matrices (`tau · state_len` words per group). Derived state —
    /// rebuilt from the states on recovery, never persisted.
    parity: Vec<Vec<u32>>,
    state_len: usize,
}

impl ShardMap {
    /// Builds the map for `client_lens` clients, every shard starting
    /// from the same `init_state` (the factory's `init_seed` state —
    /// the common initialisation Eq 8 requires).
    ///
    /// # Panics
    ///
    /// Panics if `policy.tau` is zero or `init_state` is empty.
    pub fn new(policy: ShardPolicy, client_lens: &[usize], init_state: &[f32]) -> Self {
        assert!(policy.tau > 0, "need at least one shard");
        assert!(!init_state.is_empty(), "empty init state");
        let clients = client_lens
            .iter()
            .map(|&len| {
                let indices: Vec<usize> = (0..len).collect();
                let sizes: Vec<usize> = partition::shards(&indices, policy.tau)
                    .iter()
                    .map(|p| p.len())
                    .collect();
                let states = vec![init_state.to_vec(); policy.tau];
                ClientShards {
                    model: ShardedLocalModel::new(states, sizes),
                    removed: vec![Vec::new(); policy.tau],
                    original_len: len,
                }
            })
            .collect();
        let mut map = ShardMap {
            policy,
            clients,
            parity: Vec::new(),
            state_len: init_state.len(),
        };
        map.rebuild_parity();
        map
    }

    /// Rebuilds every group's parity block from the current states
    /// (used at construction and after a checkpoint restore — parity is
    /// derived state).
    fn rebuild_parity(&mut self) {
        let n = self.clients.len();
        let k = self.policy.group.max(1);
        let groups = n.div_ceil(k);
        let words = self.policy.tau * self.state_len;
        self.parity = vec![vec![0u32; words]; groups];
        for (id, c) in self.clients.iter().enumerate() {
            let block = &mut self.parity[self.policy.group_of(id)];
            for shard in 0..self.policy.tau {
                let base = shard * self.state_len;
                for (j, &v) in c.model.shard_state(shard).iter().enumerate() {
                    block[base + j] ^= v.to_bits();
                }
            }
        }
    }

    /// The policy this map was built with.
    pub fn policy(&self) -> &ShardPolicy {
        &self.policy
    }

    /// Registered clients.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// A client's mirror (states, sizes, tombstones).
    pub fn client(&self, id: usize) -> &ClientShards {
        &self.clients[id]
    }

    /// A client's original dataset length.
    pub fn original_len(&self, id: usize) -> usize {
        self.clients[id].original_len
    }

    /// A client's remaining (post-tombstone) sample count.
    pub fn remaining(&self, id: usize) -> usize {
        self.clients[id].model.total_size()
    }

    /// Routes a deletion request to its affected shards: rows group by
    /// `g % τ`, already-tombstoned rows drop out (deletion is
    /// idempotent). Returns `(shard, rows)` pairs, ascending by shard.
    pub fn route(&self, client: usize, rows: &[usize]) -> Vec<(usize, Vec<usize>)> {
        let tau = self.policy.tau;
        let c = &self.clients[client];
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); tau];
        for &g in rows {
            let shard = g % tau;
            if !c.removed[shard].contains(&g) {
                per_shard[shard].push(g);
            }
        }
        per_shard
            .into_iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(shard, mut v)| {
                v.sort_unstable();
                v.dedup();
                (shard, v)
            })
            .collect()
    }

    /// The surviving rows of `(client, shard)` after the existing
    /// tombstones *and* `extra_removed` — original-order indices,
    /// ascending (what a retrain assign ships as `keep_rows`).
    pub fn keep_rows(&self, client: usize, shard: usize, extra_removed: &[usize]) -> Vec<usize> {
        let tau = self.policy.tau;
        let c = &self.clients[client];
        (0..c.original_len)
            .filter(|&g| {
                g % tau == shard && !c.removed[shard].contains(&g) && !extra_removed.contains(&g)
            })
            .collect()
    }

    /// The Eq 9 restart checkpoint of `(client, shard)` from the
    /// client's **current** shard states.
    pub fn checkpoint_for(&self, client: usize, shard: usize) -> Vec<f32> {
        self.clients[client].model.checkpoint_without(shard)
    }

    /// The client's Eq 8 aggregate over its current shard states.
    ///
    /// # Panics
    ///
    /// Panics when every sample of the client has been removed.
    pub fn client_aggregate(&self, client: usize) -> Vec<f32> {
        self.clients[client].model.aggregate()
    }

    /// Commits one executed task: tombstones `rows`, installs the
    /// retrained `state` and updates the owning group's parity (XOR out
    /// the old bits, XOR in the new — exact, O(state)).
    pub fn apply_retrain(&mut self, client: usize, shard: usize, state: Vec<f32>, rows: &[usize]) {
        assert_eq!(state.len(), self.state_len, "shard state dimension changed");
        let g = self.policy.group_of(client);
        let base = shard * self.state_len;
        {
            let c = &self.clients[client];
            let block = &mut self.parity[g];
            for (j, (&old, &new)) in c
                .model
                .shard_state(shard)
                .iter()
                .zip(state.iter())
                .enumerate()
            {
                block[base + j] ^= old.to_bits() ^ new.to_bits();
            }
        }
        let c = &mut self.clients[client];
        c.removed[shard].extend_from_slice(rows);
        c.removed[shard].sort_unstable();
        c.removed[shard].dedup();
        let tau = self.policy.tau;
        let remaining = (0..c.original_len)
            .filter(|&g| g % tau == shard && !c.removed[shard].contains(&g))
            .count();
        c.model.set_shard(shard, state, remaining);
    }

    /// Reconstructs a straggling member's full shard-state matrix from
    /// its group's parity block XOR the healthy members' states. XOR on
    /// bit patterns is exact: the result is **bitwise identical** to
    /// the states the coordinator holds (asserted by the degraded-drain
    /// tests), which is what makes a degraded drain commit the same
    /// bytes as a healthy one.
    pub fn reconstruct(&self, client: usize) -> Vec<Vec<f32>> {
        let g = self.policy.group_of(client);
        let mut bits = self.parity[g].clone();
        for m in self.policy.members(g, self.clients.len()) {
            if m == client {
                continue;
            }
            for shard in 0..self.policy.tau {
                let base = shard * self.state_len;
                for (j, &v) in self.clients[m].model.shard_state(shard).iter().enumerate() {
                    bits[base + j] ^= v.to_bits();
                }
            }
        }
        (0..self.policy.tau)
            .map(|shard| {
                let base = shard * self.state_len;
                bits[base..base + self.state_len]
                    .iter()
                    .map(|&b| f32::from_bits(b))
                    .collect()
            })
            .collect()
    }

    /// The Eq 9 checkpoint of `(client, shard)` computed from a
    /// [reconstructed](Self::reconstruct) state matrix instead of the
    /// stored one — the degraded path's checkpoint source.
    pub fn checkpoint_from_states(
        &self,
        client: usize,
        shard: usize,
        states: &[Vec<f32>],
    ) -> Vec<f32> {
        let sizes = self.clients[client].model.sizes().to_vec();
        let model = ShardedLocalModel::new(states.to_vec(), sizes);
        model.checkpoint_without(shard)
    }

    /// Captures the persistent part of the map (states, sizes,
    /// tombstones — parity is derived) plus the pending task queue.
    pub fn snapshot(&self, tasks: &[ShardTask]) -> ShardSnapshot {
        ShardSnapshot {
            tau: self.policy.tau,
            group: self.policy.group,
            deadline_ms: self.policy.deadline_ms,
            clients: self.clients.clone(),
            tasks: tasks.to_vec(),
        }
    }

    /// Rebuilds the map bitwise from a recovered snapshot (parity is
    /// recomputed from the restored states — deterministic).
    pub fn restore(snapshot: &ShardSnapshot) -> Self {
        let policy = ShardPolicy {
            tau: snapshot.tau,
            group: snapshot.group,
            deadline_ms: snapshot.deadline_ms,
        };
        let state_len = snapshot
            .clients
            .first()
            .map(|c| c.model.shard_state(0).len())
            .unwrap_or(0);
        let mut map = ShardMap {
            policy,
            clients: snapshot.clients.clone(),
            parity: Vec::new(),
            state_len,
        };
        map.rebuild_parity();
        map
    }
}

/// The checkpoint-persisted image of the shard pipeline: every client's
/// shard mirror plus the pending task queue. Encoded into checkpoint v2
/// files behind a presence flag.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// Shards per client.
    pub tau: usize,
    /// Redundancy-group size.
    pub group: usize,
    /// Drain deadline (ms).
    pub deadline_ms: u64,
    /// Per-client mirrors, by client id.
    pub clients: Vec<ClientShards>,
    /// Pending shard tasks, FIFO order.
    pub tasks: Vec<ShardTask>,
}

fn put_rows(out: &mut Vec<u8>, rows: &[usize]) {
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for &r in rows {
        out.extend_from_slice(&(r as u64).to_le_bytes());
    }
}

struct Cur<'a> {
    b: &'a [u8],
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.b.len() < n {
            return None;
        }
        let (head, rest) = self.b.split_at(n);
        self.b = rest;
        Some(head)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn rows(&mut self) -> Option<Vec<usize>> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(self.u64()? as usize);
        }
        Some(out)
    }

    fn f32s(&mut self) -> Option<Vec<f32>> {
        let mut out = Vec::new();
        let used = serialize::params_read_into_vec(self.b, &mut out).ok()?;
        self.b = &self.b[used..];
        Some(out)
    }
}

impl ShardSnapshot {
    /// Appends the snapshot's encoding to `out` (length-delimited, so
    /// the checkpoint codec can keep parsing after it).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.tau as u32).to_le_bytes());
        out.extend_from_slice(&(self.group as u32).to_le_bytes());
        out.extend_from_slice(&self.deadline_ms.to_le_bytes());
        out.extend_from_slice(&(self.clients.len() as u32).to_le_bytes());
        for c in &self.clients {
            out.extend_from_slice(&(c.original_len as u64).to_le_bytes());
            for shard in 0..self.tau {
                out.extend_from_slice(&(c.model.sizes()[shard] as u64).to_le_bytes());
                put_rows(out, &c.removed[shard]);
                serialize::params_write_into(out, c.model.shard_state(shard));
            }
        }
        out.extend_from_slice(&(self.tasks.len() as u32).to_le_bytes());
        for t in &self.tasks {
            out.extend_from_slice(&(t.client_id as u64).to_le_bytes());
            out.extend_from_slice(&(t.shard as u32).to_le_bytes());
            put_rows(out, &t.rows);
        }
    }

    /// Decodes a snapshot from the front of `b`, returning it plus the
    /// bytes consumed. `None` = truncated/malformed.
    pub fn decode(b: &[u8]) -> Option<(ShardSnapshot, usize)> {
        let total = b.len();
        let mut c = Cur { b };
        let tau = c.u32()? as usize;
        if tau == 0 {
            return None;
        }
        let group = c.u32()? as usize;
        let deadline_ms = c.u64()?;
        let n_clients = c.u32()? as usize;
        let mut clients = Vec::with_capacity(n_clients.min(1 << 16));
        for _ in 0..n_clients {
            let original_len = c.u64()? as usize;
            let mut sizes = Vec::with_capacity(tau);
            let mut removed = Vec::with_capacity(tau);
            let mut states = Vec::with_capacity(tau);
            for _ in 0..tau {
                sizes.push(c.u64()? as usize);
                removed.push(c.rows()?);
                states.push(c.f32s()?);
            }
            clients.push(ClientShards {
                model: ShardedLocalModel::new(states, sizes),
                removed,
                original_len,
            });
        }
        let n_tasks = c.u32()? as usize;
        let mut tasks = Vec::with_capacity(n_tasks.min(1 << 16));
        for _ in 0..n_tasks {
            let client_id = c.u64()? as usize;
            let shard = c.u32()? as usize;
            tasks.push(ShardTask {
                client_id,
                shard,
                rows: c.rows()?,
            });
        }
        let used = total - c.b.len();
        Some((
            ShardSnapshot {
                tau,
                group,
                deadline_ms,
                clients,
                tasks,
            },
            used,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(tau: usize, group: usize) -> ShardPolicy {
        ShardPolicy {
            tau,
            group,
            deadline_ms: 0,
        }
    }

    fn seeded_state(seed: u64, len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| ((seed.wrapping_mul(31).wrapping_add(i as u64) % 97) as f32) * 0.13 - 3.0)
            .collect()
    }

    #[test]
    fn routing_splits_by_residue_and_skips_tombstones() {
        let mut map = ShardMap::new(policy(3, 2), &[10, 7], &[0.0f32; 4]);
        let routed = map.route(0, &[0, 3, 4, 7, 4]);
        // 0,3 → shard 0; 4,7 → shard 1; dup 4 deduped.
        assert_eq!(routed, vec![(0, vec![0, 3]), (1, vec![4, 7])]);
        map.apply_retrain(0, 0, vec![1.0; 4], &[0, 3]);
        // Already-tombstoned rows drop out; shard 0 contributes nothing.
        assert_eq!(map.route(0, &[0, 3, 6]), vec![(0, vec![6])]);
        assert_eq!(map.remaining(0), 8);
    }

    #[test]
    fn keep_rows_excludes_tombstones_and_extras() {
        let map = ShardMap::new(policy(2, 1), &[9], &[0.0f32; 2]);
        // Shard 1 holds odd rows 1,3,5,7.
        assert_eq!(map.keep_rows(0, 1, &[3]), vec![1, 5, 7]);
    }

    #[test]
    fn queue_merges_per_shard_keeping_fifo_position() {
        let mut q = ShardTaskQueue::new();
        q.submit(ShardTask::new(0, 1, vec![3]));
        q.submit(ShardTask::new(1, 0, vec![2]));
        q.submit(ShardTask::new(0, 1, vec![5, 3]));
        assert_eq!(q.len(), 2);
        assert_eq!(q.merged(), 1);
        assert_eq!(q.pending()[0], ShardTask::new(0, 1, vec![3, 5]));
        // drain_batch removes merge targets.
        let first = q.drain_batch(1);
        assert_eq!(first[0].client_id, 0);
        q.submit(ShardTask::new(0, 1, vec![7]));
        assert_eq!(q.len(), 2, "drained task is no longer a merge target");
        // Remainder requeues at the front.
        q.requeue_front(first);
        assert_eq!(q.pending()[0], ShardTask::new(0, 1, vec![3, 5]));
    }

    #[test]
    fn parity_reconstruction_is_bitwise_exact() {
        let dim = 6;
        let mut map = ShardMap::new(policy(2, 3), &[8, 8, 8, 8], &seeded_state(1, dim));
        // Mutate states so members differ, including updates that move
        // parity.
        map.apply_retrain(0, 0, seeded_state(7, dim), &[0]);
        map.apply_retrain(1, 1, seeded_state(9, dim), &[1]);
        map.apply_retrain(2, 0, seeded_state(11, dim), &[2]);
        for client in 0..3 {
            let rec = map.reconstruct(client);
            for (shard, rec_shard) in rec.iter().enumerate().take(2) {
                let want: Vec<u32> = map
                    .client(client)
                    .model
                    .shard_state(shard)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                let got: Vec<u32> = rec_shard.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want, "client {client} shard {shard}");
            }
        }
        // The last (singleton) group reconstructs trivially too.
        let rec = map.reconstruct(3);
        assert_eq!(rec[0], map.client(3).model.shard_state(0));
    }

    #[test]
    fn snapshot_roundtrips_bitwise_with_trailing_bytes() {
        let mut map = ShardMap::new(policy(2, 2), &[5, 6], &seeded_state(3, 4));
        map.apply_retrain(1, 0, seeded_state(5, 4), &[2, 4]);
        let tasks = vec![ShardTask::new(0, 1, vec![1, 3])];
        let snap = map.snapshot(&tasks);
        let mut bytes = Vec::new();
        snap.encode_into(&mut bytes);
        let tail_marker = bytes.len();
        bytes.extend_from_slice(b"TRAILER");
        let (back, used) = ShardSnapshot::decode(&bytes).unwrap();
        assert_eq!(used, tail_marker);
        assert_eq!(back.tasks, tasks);
        let restored = ShardMap::restore(&back);
        for id in 0..2 {
            assert_eq!(
                restored.client(id).model.sizes(),
                map.client(id).model.sizes()
            );
            assert_eq!(restored.client(id).removed, map.client(id).removed);
            for shard in 0..2 {
                let a: Vec<u32> = restored
                    .client(id)
                    .model
                    .shard_state(shard)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                let b: Vec<u32> = map
                    .client(id)
                    .model
                    .shard_state(shard)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                assert_eq!(a, b);
            }
        }
        // Parity rebuilt identically: reconstruction still exact.
        assert_eq!(restored.reconstruct(0), map.reconstruct(0));
        // Truncation never parses.
        for cut in 0..tail_marker {
            assert!(ShardSnapshot::decode(&bytes[..cut]).is_none(), "cut {cut}");
        }
    }
}
