//! The coordinator-side TCP transport — a single-threaded readiness
//! reactor (DESIGN.md §14).
//!
//! One non-blocking socket per worker, all owned by one event loop: a
//! vendored oneshot `epoll` poller ([`polling::Poller`]) reports
//! readiness, and per-connection frame state machines
//! ([`crate::nio::FrameReadState`] / [`crate::nio::FrameWriteState`])
//! carry each frame across partial reads and writes. A fan-out
//! therefore costs zero thread spawns regardless of fleet size —
//! thousands of registered workers multiplex onto the coordinator
//! thread — while replies still reach the caller **in arrival order**,
//! so aggregation keeps overlapping straggler I/O exactly as the old
//! thread-per-connection layer did. Liveness is a per-fan-out deadline
//! (`read_timeout` from the fan-out's start); a client that misses it,
//! disconnects, or answers out of protocol is dropped from the live set
//! and reported as a typed [`TransportError`], and the round driver
//! re-rounds over the survivors.
//!
//! Hot-path machinery (DESIGN.md §11):
//!
//! * **Encode-once broadcast** — round assignments and eval requests are
//!   encoded a single time into a transport-owned reusable buffer
//!   straight from the borrowed global state (no `Msg`, no state clone)
//!   and the same bytes are written to every connection.
//! * **Pooled frame buffers** — every connection owns a reusable payload
//!   read buffer, and decoded update states go through a shared buffer
//!   pool, so a steady-state round re-uses the same allocations.
//! * **Streaming replies** — each completed reply frame is decoded and
//!   handed to the caller the moment the reactor reads its last byte,
//!   which is what lets the coordinator's
//!   [`goldfish_fed::transport::RoundRuntime`] fold updates while
//!   stragglers are still on the wire.
//! * **Cohort fan-outs** — sampled rounds
//!   ([`goldfish_fed::transport::RoundTransport::train_round_sampled`])
//!   write frames only to the sampled subset; every other registered
//!   connection stays parked in the poller untouched, so a
//!   4096-registered / 64-sampled round costs 64 frame exchanges.
//!
//! Two panic paths of the old layer are structurally gone: there is no
//! cross-thread channel to `expect` on (a panicking reply handler is
//! caught and converted into a typed
//! [`goldfish_fed::transport::UpdateViolation::HandlerPanic`] rejection
//! that costs the client its connection, never the coordinator), and
//! reconnect admission binds the listener once with `let`–`else`
//! instead of re-`unwrap`ing shared state mid-drain.

use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use goldfish_core::transport::{DistillTransport, UnlearnJob};
use goldfish_fed::aggregate::ClientUpdate;
use goldfish_fed::transport::{
    RoundTransport, StreamedUpdate, TrainAssign, TransportError, UpdateSink, UpdateViolation,
};
use polling::{Event, Events, Poller};

use crate::nio::{FrameReadState, FrameWriteState};
use crate::queue::UnlearnRequest;
use crate::telemetry::{ServeTelemetry, WireTelemetry};
use crate::transport::{LocalEval, ServeTransport, WireStats};
use crate::wire::{
    decode_msg, decode_update_into, encode_eval_request_into, encode_frame,
    encode_round_assign_into, encode_unlearn_assign_into, err_code, kind as wire_kind,
    read_raw_frame, write_frame, FrameLimits, Msg, RoundMode, UpdateHeader, WireError,
};

/// Socket policy of a [`TcpTransport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpConfig {
    /// Frame-size limits (both directions).
    pub limits: FrameLimits,
    /// Per-fan-out reply deadline: every contacted worker must answer
    /// within this much of the fan-out's start or be dropped as a
    /// straggler. Reconfigurable after accept via
    /// [`ServeTransport::set_read_timeout`] (the coordinator builder's
    /// knob).
    pub read_timeout: Duration,
    /// Aggregation-mode wire code announced in `Capabilities`
    /// ([`goldfish_fed::aggregate::AggregationMode::wire_code`]), so
    /// workers know which robust fold their updates feed.
    pub agg_mode: u8,
    /// Mode parameter paired with `agg_mode` (trim count or clip-limit
    /// bits; 0 when the mode takes none).
    pub agg_param: u64,
    /// Shards per client announced in `Capabilities` when the
    /// coordinator runs shard-isolated unlearning (DESIGN.md §16);
    /// 0 when shard mode is off.
    pub shard_tau: u32,
    /// Redundancy-group width paired with `shard_tau` (0 = off).
    pub shard_group: u32,
}

impl Default for TcpConfig {
    /// 30 s replies — generous for CI boxes under load; benchmarks and
    /// tests that probe straggler handling shrink it.
    fn default() -> Self {
        TcpConfig {
            limits: FrameLimits::default(),
            read_timeout: Duration::from_secs(30),
            agg_mode: 0,
            agg_param: 0,
            shard_tau: 0,
            shard_group: 0,
        }
    }
}

/// Poller key of the reconnect/accept listener — outside the client-id
/// space, which is `0..conns.len()`.
const LISTENER_KEY: usize = usize::MAX;

struct Conn {
    stream: TcpStream,
    num_samples: usize,
    /// Reusable payload read buffer — frames land here, so a
    /// steady-state connection never allocates to receive.
    rbuf: Vec<u8>,
    /// Incremental reader of the in-flight reply frame.
    rd: FrameReadState,
    /// Incremental writer of the in-flight assignment frame.
    wr: FrameWriteState,
}

/// A connection mid-handshake during [`TcpTransport::accept`]: reading
/// its `Hello`, then flushing the verdict (`Capabilities` or `Err`).
struct Handshake {
    stream: TcpStream,
    rbuf: Vec<u8>,
    rd: FrameReadState,
    wr: FrameWriteState,
    /// The encoded verdict frame; empty while the `Hello` is still
    /// being read.
    reply: Vec<u8>,
    /// `Some((client_id, num_samples))` when the verdict is acceptance.
    accepted: Option<(usize, usize)>,
}

/// The networked [`ServeTransport`]: a registry of worker connections
/// keyed by client id, accepting the round-loop contracts of
/// `goldfish_fed` and `goldfish_core` over the wire protocol.
pub struct TcpTransport {
    conns: Vec<Option<Conn>>,
    cfg: TcpConfig,
    staged: Vec<UnlearnRequest>,
    /// Drain serial of the staged batch — shipped in `UnlearnAssign` so
    /// a worker can deduplicate a re-shipped batch after a coordinator
    /// crash-restart.
    staged_serial: u64,
    /// Wire-side telemetry handles (byte counters + reactor spans).
    /// Detached at construction — `accept` counts handshake bytes
    /// before any coordinator exists — and rebound to the shared
    /// catalog by [`ServeTransport::set_telemetry`], which carries the
    /// accumulated counts across. **Every** frame is tallied: fan-out
    /// exchanges, handshakes, reconnect admissions, quarantine `Err`
    /// frames and `Shutdown` goodbyes.
    stats: WireTelemetry,
    /// Parameter count every `Hello` must match (kept for reconnect
    /// validation).
    state_len: usize,
    /// Listener retained for mid-run reconnects; `None` = closed-world
    /// fleet (original behaviour).
    listener: Option<TcpListener>,
    /// The encode-once broadcast frame, reused round after round.
    bcast: Vec<u8>,
    /// Per-client frame buffers for fan-outs whose frames differ per
    /// client (`UnlearnAssign`), reused across requests.
    assign_bufs: Vec<Vec<u8>>,
    /// Pool of decoded-update state buffers, refilled after each fold.
    state_pool: Mutex<Vec<Vec<f32>>>,
    /// Client ids evicted via [`RoundTransport::quarantine`]. Banned
    /// ids are refused readmission even with a valid resume token.
    banned: std::collections::BTreeSet<usize>,
    /// The reactor: one oneshot poller owning every in-flight socket.
    poller: Poller,
    /// Reusable readiness buffer for [`Poller::wait`].
    events: Events,
}

/// One round-shaped fan-out's borrowed parameters (train or distill).
struct RoundSpec<'a> {
    mode: RoundMode,
    round: u64,
    seed: u64,
    nonce: u64,
    cfg: &'a goldfish_fed::trainer::TrainConfig,
    global: &'a [f32],
}

/// A decoded worker reply leaving the reactor.
enum Reply {
    /// `Update` / `UnlearnResult` with the state decoded into a pooled
    /// buffer.
    Update {
        header: UpdateHeader,
        state: Vec<f32>,
    },
    /// An `Eval` reply's metrics.
    Eval { accuracy: f64, mse: f64 },
    /// A bare acknowledgement.
    Ack,
    /// An `UnlearnAssign` ack carrying the worker's authoritative
    /// post-deletion sample count.
    UnlearnAck { num_samples: usize },
}

impl TcpTransport {
    /// Accepts `expected` workers on `listener`, multiplexing every
    /// in-flight handshake on the reactor (a stalled or malicious
    /// half-connected peer cannot block the fleet from forming). Each
    /// worker must open with a valid `Hello` (unique client id below
    /// `expected`, matching `state_len`); invalid peers get a typed
    /// `Err` frame and are dropped without consuming a slot.
    ///
    /// # Errors
    ///
    /// [`WireError`] on listener or poller failures.
    pub fn accept(
        listener: &TcpListener,
        expected: usize,
        state_len: usize,
        cfg: TcpConfig,
    ) -> Result<TcpTransport, WireError> {
        // High-fanout fleets exceed default shell fd limits; lifting
        // the soft limit is idempotent and failure is non-fatal (small
        // fleets fit anyway).
        polling::raise_nofile_limit().ok();
        /// How the reactor left one in-flight handshake.
        enum HsStep {
            /// Re-armed (or no-op); keep waiting.
            Parked,
            /// Invalid / dead peer: deregister, release any id
            /// reservation, close.
            Abandon,
            /// Verdict flushed: promote an acceptance into a
            /// registered connection (a rejection just closes).
            Promote,
        }
        let poller = Poller::new()?;
        let mut events = Events::new();
        // Detached counters until a coordinator attaches its catalog;
        // handshake traffic must not go missing just because it happens
        // before wiring.
        let stats = WireTelemetry::default();
        let mut conns: Vec<Option<Conn>> = (0..expected).map(|_| None).collect();
        let mut registered = 0usize;
        if expected > 0 {
            listener.set_nonblocking(true)?;
            poller.add(listener.as_raw_fd(), Event::readable(LISTENER_KEY))?;
            // Pending handshakes, keyed `expected + index` in the
            // poller so keys never collide with registered client ids.
            let mut pending: Vec<Option<Handshake>> = Vec::new();
            // Ids claimed by a still-flushing acceptance — two pending
            // handshakes cannot both be granted one slot.
            let mut reserved: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
            while registered < expected {
                poller.wait(&mut events, None)?;
                for ev in events.iter() {
                    if ev.key == LISTENER_KEY {
                        while let Ok((stream, _)) = listener.accept() {
                            stream.set_nodelay(true).ok();
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let key = expected + pending.len();
                            if poller.add(stream.as_raw_fd(), Event::readable(key)).is_ok() {
                                pending.push(Some(Handshake {
                                    stream,
                                    rbuf: Vec::new(),
                                    rd: FrameReadState::new(),
                                    wr: FrameWriteState::new(),
                                    reply: Vec::new(),
                                    accepted: None,
                                }));
                            }
                        }
                        poller.modify(listener.as_raw_fd(), Event::readable(LISTENER_KEY))?;
                        continue;
                    }
                    let Some(idx) = ev.key.checked_sub(expected) else {
                        continue;
                    };
                    let Some(slot) = pending.get_mut(idx) else {
                        continue;
                    };
                    let step = 'hs: {
                        let Some(hs) = slot.as_mut() else {
                            break 'hs HsStep::Parked;
                        };
                        if hs.reply.is_empty() {
                            // Awaiting the opener.
                            match hs.rd.poll(&mut hs.stream, &mut hs.rbuf, &cfg.limits) {
                                Ok(None) => {
                                    if poller
                                        .modify(hs.stream.as_raw_fd(), Event::readable(ev.key))
                                        .is_err()
                                    {
                                        HsStep::Abandon
                                    } else {
                                        HsStep::Parked
                                    }
                                }
                                Err(_) => HsStep::Abandon,
                                Ok(Some((kind, nbytes))) => {
                                    stats.received_bytes.add(nbytes as u64);
                                    let verdict: Result<(usize, usize), (u16, String)> =
                                        match decode_msg(kind, &hs.rbuf) {
                                            Err(_) => break 'hs HsStep::Abandon,
                                            Ok(Msg::Hello {
                                                client_id,
                                                state_len: worker_len,
                                                num_samples,
                                                // A resume token at
                                                // startup is fine: a
                                                // worker that outlived a
                                                // crashed coordinator
                                                // re-registers into its
                                                // old slot here.
                                                resume: _,
                                            }) => {
                                                let id = client_id as usize;
                                                if id >= expected
                                                    || conns[id].is_some()
                                                    || reserved.contains(&id)
                                                {
                                                    Err((
                                                        err_code::BAD_REQUEST,
                                                        format!(
                                                            "client id {id} invalid or already registered"
                                                        ),
                                                    ))
                                                } else if worker_len as usize != state_len {
                                                    Err((
                                                        err_code::BAD_STATE_LEN,
                                                        format!(
                                                            "model has {state_len} params, worker says {worker_len}"
                                                        ),
                                                    ))
                                                } else {
                                                    Ok((id, num_samples as usize))
                                                }
                                            }
                                            Ok(_) => Err((
                                                err_code::BAD_REQUEST,
                                                "expected Hello".into(),
                                            )),
                                        };
                                    let msg = match verdict {
                                        Ok((id, n)) => {
                                            reserved.insert(id);
                                            hs.accepted = Some((id, n));
                                            Msg::Capabilities {
                                                max_payload: cfg.limits.max_payload as u64,
                                                state_len: state_len as u64,
                                                agg_mode: cfg.agg_mode,
                                                agg_param: cfg.agg_param,
                                                shard_tau: cfg.shard_tau,
                                                shard_group: cfg.shard_group,
                                            }
                                        }
                                        Err((code, detail)) => Msg::Err { code, detail },
                                    };
                                    match encode_frame(&msg, &cfg.limits) {
                                        Ok(frame) => {
                                            hs.reply = frame;
                                            hs.wr.reset();
                                            if poller
                                                .modify(
                                                    hs.stream.as_raw_fd(),
                                                    Event::writable(ev.key),
                                                )
                                                .is_err()
                                            {
                                                HsStep::Abandon
                                            } else {
                                                HsStep::Parked
                                            }
                                        }
                                        Err(_) => HsStep::Abandon,
                                    }
                                }
                            }
                        } else {
                            // Flushing the verdict.
                            match hs.wr.poll(&mut hs.stream, &hs.reply) {
                                Ok(false) => {
                                    if poller
                                        .modify(hs.stream.as_raw_fd(), Event::writable(ev.key))
                                        .is_err()
                                    {
                                        HsStep::Abandon
                                    } else {
                                        HsStep::Parked
                                    }
                                }
                                Err(_) => HsStep::Abandon,
                                Ok(true) => {
                                    // Verdict (Capabilities or Err) on
                                    // the wire — count it either way.
                                    stats.sent_bytes.add(hs.reply.len() as u64);
                                    HsStep::Promote
                                }
                            }
                        }
                    };
                    match step {
                        HsStep::Parked => {}
                        HsStep::Abandon => {
                            if let Some(hs) = slot.take() {
                                if let Some((id, _)) = hs.accepted {
                                    reserved.remove(&id);
                                }
                                let _ = poller.delete(hs.stream.as_raw_fd());
                            }
                        }
                        HsStep::Promote => {
                            if let Some(hs) = slot.take() {
                                let _ = poller.delete(hs.stream.as_raw_fd());
                                if let Some((id, num_samples)) = hs.accepted {
                                    reserved.remove(&id);
                                    conns[id] = Some(Conn {
                                        stream: hs.stream,
                                        num_samples,
                                        rbuf: hs.rbuf,
                                        rd: FrameReadState::new(),
                                        wr: FrameWriteState::new(),
                                    });
                                    registered += 1;
                                }
                                // Rejected peers drop here, closing the
                                // socket after the Err frame.
                            }
                        }
                    }
                }
            }
            let _ = poller.delete(listener.as_raw_fd());
            listener.set_nonblocking(false).ok();
            for hs in pending.into_iter().flatten() {
                let _ = poller.delete(hs.stream.as_raw_fd());
            }
        }
        Ok(TcpTransport {
            conns,
            cfg,
            staged: Vec::new(),
            staged_serial: 0,
            stats,
            state_len,
            listener: None,
            bcast: Vec::new(),
            assign_bufs: Vec::new(),
            state_pool: Mutex::new(Vec::new()),
            banned: std::collections::BTreeSet::new(),
            poller,
            events,
        })
    }

    /// Keeps `listener` open for mid-run reconnects: at every round
    /// boundary the coordinator calls
    /// [`ServeTransport::admit_reconnects`], which re-admits workers
    /// presenting a `Hello` resume token into their (vacated) slots.
    /// Without this the fleet is closed-world — a dropped worker stays
    /// dropped.
    pub fn enable_reconnect(&mut self, listener: TcpListener) {
        self.listener = Some(listener);
    }

    /// Tears the reconnect listener down mid-run, returning it (e.g.
    /// to stop admitting during a maintenance window). Subsequent
    /// [`ServeTransport::admit_reconnects`] calls admit `0` — this is
    /// the typed path that replaced the old layer's
    /// `self.listener.as_ref().unwrap()` panic.
    pub fn disable_reconnect(&mut self) -> Option<TcpListener> {
        self.listener.take()
    }

    /// One reconnect admission attempt: validates the resume `Hello`,
    /// replies `Capabilities` then `Digest` (current round + global
    /// state digest, so the worker can verify it rejoined the same run)
    /// and waits for the worker's `Ack`. Returns the registered slot.
    fn admit_one(&mut self, mut stream: TcpStream, round: usize, global: &[f32]) -> Option<usize> {
        stream.set_nonblocking(false).ok();
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(self.cfg.read_timeout)).ok();
        let mut rbuf = Vec::new();
        let (hello_kind, hello_len) =
            read_raw_frame(&mut stream, &mut rbuf, &self.cfg.limits).ok()?;
        self.stats.received_bytes.add(hello_len as u64);
        let hello = decode_msg(hello_kind, &rbuf).ok()?;
        let Msg::Hello {
            client_id,
            state_len: worker_len,
            num_samples,
            resume,
        } = hello
        else {
            return None;
        };
        let id = client_id as usize;
        let reject = |stream: &mut TcpStream, code: u16, detail: String| {
            if let Ok(n) = write_frame(stream, &Msg::Err { code, detail }, &self.cfg.limits) {
                self.stats.sent_bytes.add(n as u64);
            }
        };
        if resume.is_none() {
            reject(
                &mut stream,
                err_code::BAD_REQUEST,
                "mid-run joins require a resume token".into(),
            );
            return None;
        }
        if id >= self.conns.len() || self.conns[id].is_some() {
            reject(
                &mut stream,
                err_code::BAD_REQUEST,
                format!("client id {id} invalid or already registered"),
            );
            return None;
        }
        if self.banned.contains(&id) {
            reject(
                &mut stream,
                err_code::QUARANTINED,
                format!("client id {id} is quarantined"),
            );
            return None;
        }
        if worker_len as usize != self.state_len {
            reject(
                &mut stream,
                err_code::BAD_STATE_LEN,
                format!(
                    "model has {} params, worker says {worker_len}",
                    self.state_len
                ),
            );
            return None;
        }
        let sent = write_frame(
            &mut stream,
            &Msg::Capabilities {
                max_payload: self.cfg.limits.max_payload as u64,
                state_len: self.state_len as u64,
                agg_mode: self.cfg.agg_mode,
                agg_param: self.cfg.agg_param,
                shard_tau: self.cfg.shard_tau,
                shard_group: self.cfg.shard_group,
            },
            &self.cfg.limits,
        )
        .ok()?;
        self.stats.sent_bytes.add(sent as u64);
        let sent = write_frame(
            &mut stream,
            &Msg::Digest {
                round: round as u64,
                digest: crate::digest::state_digest(round as u64, global),
            },
            &self.cfg.limits,
        )
        .ok()?;
        self.stats.sent_bytes.add(sent as u64);
        let (ack_kind, ack_len) = read_raw_frame(&mut stream, &mut rbuf, &self.cfg.limits).ok()?;
        self.stats.received_bytes.add(ack_len as u64);
        match decode_msg(ack_kind, &rbuf) {
            Ok(Msg::Ack) => {}
            _ => return None,
        }
        // Into the reactor's regime: sockets are non-blocking from
        // here on.
        stream.set_nonblocking(true).ok();
        self.conns[id] = Some(Conn {
            stream,
            num_samples: num_samples as usize,
            rbuf: Vec::new(),
            rd: FrameReadState::new(),
            wr: FrameWriteState::new(),
        });
        Some(id)
    }

    /// Live client ids, ascending.
    pub fn live_clients(&self) -> Vec<usize> {
        self.conns
            .iter()
            .enumerate()
            .filter_map(|(id, c)| c.as_ref().map(|_| id))
            .collect()
    }

    /// Decodes the completed reply frame sitting in `conn.rbuf`.
    fn decode_reply(
        kind: u8,
        conn: &mut Conn,
        state_pool: &Mutex<Vec<Vec<f32>>>,
        id: usize,
    ) -> Result<Reply, TransportError> {
        match kind {
            // Update / UnlearnResult: decode the state straight into a
            // pooled buffer.
            wire_kind::UPDATE | wire_kind::UNLEARN_RESULT => {
                let mut state = state_pool
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .pop()
                    .unwrap_or_default();
                match decode_update_into(kind, &conn.rbuf, &mut state) {
                    Ok(header) => {
                        // A train update's weight is the worker's own
                        // dataset size — authoritative, so a registry
                        // count that drifted (e.g. a deletion
                        // re-shipped to a rejoined worker) self-heals.
                        if !header.distill {
                            conn.num_samples = header.weight as usize;
                        }
                        Ok(Reply::Update { header, state })
                    }
                    Err(e) => {
                        // Failed decodes return their buffer too, or
                        // the pool leaks.
                        state_pool
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push(state);
                        Err(map_wire_error(id, e))
                    }
                }
            }
            _ => match decode_msg(kind, &conn.rbuf).map_err(|e| map_wire_error(id, e))? {
                Msg::Err { code, detail } => Err(TransportError::Protocol {
                    client_id: id,
                    reason: format!("worker error code {code}: {detail}"),
                }),
                Msg::Eval { accuracy, mse, .. } => Ok(Reply::Eval { accuracy, mse }),
                Msg::Ack => Ok(Reply::Ack),
                Msg::UnlearnAck { num_samples } => Ok(Reply::UnlearnAck {
                    num_samples: num_samples as usize,
                }),
                other => Err(TransportError::Protocol {
                    client_id: id,
                    reason: format!("unexpected {} from worker", other.name()),
                }),
            },
        }
    }

    /// The fan-out engine: writes `frames[id]` to every live connection
    /// with a frame, reads one reply each — all multiplexed on the
    /// reactor — and hands each decoded reply to `on_reply` **as it
    /// arrives**. Failed connections are dropped from the live set
    /// afterwards. Wire bytes are tallied into `stats`.
    ///
    /// A panic escaping `on_reply` (a reply handler or sink blowing up
    /// on one client's bytes) is caught and converted into a
    /// [`UpdateViolation::HandlerPanic`] rejection for that client
    /// alone; the round continues for everyone else.
    #[allow(clippy::too_many_arguments)] // the reactor's shared plumbing; private to this impl
    fn fan_out(
        conns: &mut [Option<Conn>],
        stats: &WireTelemetry,
        cfg: &TcpConfig,
        state_pool: &Mutex<Vec<Vec<f32>>>,
        poller: &Poller,
        events: &mut Events,
        frames: &[Option<&[u8]>],
        mut on_reply: impl FnMut(usize, Result<Reply, TransportError>),
    ) {
        /// Where a connection stands in its frame exchange.
        #[derive(Clone, Copy)]
        enum Phase {
            Write,
            /// Awaiting the reply; `started` stamps when the request
            /// finished flushing, so a completed read observes the
            /// flush-to-reply wall time.
            Read {
                started: u64,
            },
        }
        let mut phase: Vec<Option<Phase>> = (0..conns.len()).map(|_| None).collect();
        let mut failed: Vec<usize> = Vec::new();
        let (mut sent_total, mut recv_total) = (0u64, 0u64);
        let mut pending = 0usize;
        for (id, slot) in conns.iter_mut().enumerate() {
            let (Some(conn), Some(_)) = (slot.as_mut(), frames.get(id).copied().flatten()) else {
                continue;
            };
            conn.rd.reset();
            conn.wr.reset();
            match poller.add(conn.stream.as_raw_fd(), Event::writable(id)) {
                Ok(()) => {
                    phase[id] = Some(Phase::Write);
                    pending += 1;
                }
                Err(e) => {
                    failed.push(id);
                    on_reply(
                        id,
                        Err(TransportError::Disconnected {
                            client_id: id,
                            reason: format!("reactor registration failed: {e}"),
                        }),
                    );
                }
            }
        }
        let deadline = Instant::now() + cfg.read_timeout;
        while pending > 0 {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let wait_start = stats.clock.now_nanos();
            let waited = poller.wait(events, Some(deadline - now));
            stats
                .poll_wait_seconds
                .observe_nanos(stats.clock.now_nanos().saturating_sub(wait_start));
            let n = match waited {
                Ok(n) => n,
                Err(_) => break, // poller failure: every pending conn times out below
            };
            if n == 0 {
                continue; // timeout or EINTR; the deadline check decides
            }
            for ev in events.iter() {
                let id = ev.key;
                let Some(ph) = phase.get(id).copied().flatten() else {
                    continue;
                };
                let Some(conn) = conns.get_mut(id).and_then(|c| c.as_mut()) else {
                    continue;
                };
                // Retire this connection from the fan-out with a typed
                // failure.
                macro_rules! fail {
                    ($err:expr) => {{
                        phase[id] = None;
                        pending -= 1;
                        let _ = poller.delete(conn.stream.as_raw_fd());
                        failed.push(id);
                        on_reply(id, Err($err));
                        continue;
                    }};
                }
                match ph {
                    Phase::Write => {
                        let Some(frame) = frames.get(id).copied().flatten() else {
                            fail!(TransportError::Protocol {
                                client_id: id,
                                reason: "frame vanished mid-fan-out".into(),
                            });
                        };
                        match conn.wr.poll(&mut conn.stream, frame) {
                            Ok(true) => {
                                sent_total += frame.len() as u64;
                                conn.rd.reset();
                                phase[id] = Some(Phase::Read {
                                    started: stats.clock.now_nanos(),
                                });
                                if poller
                                    .modify(conn.stream.as_raw_fd(), Event::readable(id))
                                    .is_err()
                                {
                                    fail!(TransportError::Disconnected {
                                        client_id: id,
                                        reason: "reactor re-arm failed".into(),
                                    });
                                }
                            }
                            Ok(false) => {
                                if poller
                                    .modify(conn.stream.as_raw_fd(), Event::writable(id))
                                    .is_err()
                                {
                                    fail!(TransportError::Disconnected {
                                        client_id: id,
                                        reason: "reactor re-arm failed".into(),
                                    });
                                }
                            }
                            Err(e) => fail!(map_wire_error(id, e)),
                        }
                    }
                    Phase::Read { started } => {
                        match conn.rd.poll(&mut conn.stream, &mut conn.rbuf, &cfg.limits) {
                            Ok(Some((kind, nbytes))) => {
                                recv_total += nbytes as u64;
                                stats
                                    .frame_read_seconds
                                    .observe_nanos(stats.clock.now_nanos().saturating_sub(started));
                                phase[id] = None;
                                pending -= 1;
                                let _ = poller.delete(conn.stream.as_raw_fd());
                                let mut decode_failed = false;
                                let delivered = catch_unwind(AssertUnwindSafe(|| {
                                    let reply = Self::decode_reply(kind, conn, state_pool, id);
                                    decode_failed = reply.is_err();
                                    on_reply(id, reply);
                                }));
                                if decode_failed {
                                    failed.push(id);
                                }
                                if delivered.is_err() {
                                    // The handler blew up on this
                                    // client's bytes: its connection is
                                    // forfeit (the strike ledger keeps
                                    // `Rejected` conns alive, so the
                                    // drop happens here), the round
                                    // continues for everyone else.
                                    failed.push(id);
                                    on_reply(
                                        id,
                                        Err(TransportError::Rejected {
                                            client_id: id,
                                            violation: UpdateViolation::HandlerPanic,
                                        }),
                                    );
                                }
                            }
                            Ok(None) => {
                                if poller
                                    .modify(conn.stream.as_raw_fd(), Event::readable(id))
                                    .is_err()
                                {
                                    fail!(TransportError::Disconnected {
                                        client_id: id,
                                        reason: "reactor re-arm failed".into(),
                                    });
                                }
                            }
                            Err(e) => fail!(map_wire_error(id, e)),
                        }
                    }
                }
            }
        }
        // Whoever is still mid-exchange missed the deadline.
        for (id, ph) in phase.iter_mut().enumerate() {
            if ph.is_none() {
                continue;
            }
            *ph = None;
            if let Some(conn) = conns.get_mut(id).and_then(|c| c.as_mut()) {
                let _ = poller.delete(conn.stream.as_raw_fd());
            }
            failed.push(id);
            on_reply(id, Err(TransportError::Timeout { client_id: id }));
        }
        stats.sent_bytes.add(sent_total);
        stats.received_bytes.add(recv_total);
        for id in failed {
            // Straggler / lost / misbehaving worker: drop it.
            conns[id] = None;
        }
    }

    /// Broadcast form of [`TcpTransport::fan_out`]: one shared,
    /// encoded-once frame to every live connection — or, with a
    /// `cohort`, only to the sampled subset (everyone else stays parked
    /// in the poller, costing nothing this round).
    #[allow(clippy::too_many_arguments)] // the reactor's shared plumbing; private to this impl
    fn broadcast(
        conns: &mut [Option<Conn>],
        stats: &WireTelemetry,
        cfg: &TcpConfig,
        state_pool: &Mutex<Vec<Vec<f32>>>,
        poller: &Poller,
        events: &mut Events,
        frame: &[u8],
        cohort: Option<&[(usize, usize)]>,
        on_reply: impl FnMut(usize, Result<Reply, TransportError>),
    ) {
        let frames: Vec<Option<&[u8]>> = conns
            .iter()
            .enumerate()
            .map(|(id, c)| match (c, cohort) {
                (None, _) => None,
                (Some(_), None) => Some(frame),
                (Some(_), Some(cohort)) => cohort
                    .binary_search_by_key(&id, |&(cid, _)| cid)
                    .ok()
                    .map(|_| frame),
            })
            .collect();
        Self::fan_out(
            conns, stats, cfg, state_pool, poller, events, &frames, on_reply,
        );
    }

    /// Runs a round-shaped fan-out (train or distill) feeding `sink` as
    /// updates arrive, recording per-client outcomes into `results`
    /// (sorted by client id). With a `cohort`, only the sampled subset
    /// is contacted and reported.
    fn round_streamed(
        &mut self,
        spec: &RoundSpec<'_>,
        cohort: Option<&[(usize, usize)]>,
        sink: &mut UpdateSink<'_>,
        results: &mut Vec<(usize, Result<(), TransportError>)>,
    ) {
        results.clear();
        let round = spec.round;
        let want_distill = matches!(spec.mode, RoundMode::Distill);
        let enc_start = self.stats.clock.now_nanos();
        let encoded = encode_round_assign_into(
            &mut self.bcast,
            spec.mode,
            spec.round,
            spec.seed,
            spec.nonce,
            spec.cfg,
            spec.global,
            &self.cfg.limits,
        );
        self.stats
            .broadcast_encode_seconds
            .observe_nanos(self.stats.clock.now_nanos().saturating_sub(enc_start));
        if let Err(e) = encoded {
            results.extend(
                self.live_clients()
                    .into_iter()
                    .filter(|&id| match cohort {
                        None => true,
                        Some(cohort) => cohort.binary_search_by_key(&id, |&(cid, _)| cid).is_ok(),
                    })
                    .map(|id| (id, Err(map_wire_error(id, e.clone())))),
            );
            return;
        }
        let TcpTransport {
            conns,
            cfg,
            stats,
            bcast,
            state_pool,
            poller,
            events,
            ..
        } = self;
        let state_pool: &Mutex<Vec<Vec<f32>>> = state_pool;
        let mut outcomes: Vec<(usize, Result<(), TransportError>)> = Vec::new();
        Self::broadcast(
            conns,
            stats,
            cfg,
            state_pool,
            poller,
            events,
            bcast,
            cohort,
            |id, reply| {
                let outcome = reply.and_then(|r| match r {
                    Reply::Update { header, state } => {
                        // The nonce is *forwarded*, not checked: the
                        // streamed path feeds the coordinator's
                        // admission layer
                        // ([`goldfish_fed::transport::RoundRuntime`]),
                        // which judges stale nonces as typed violations
                        // so they earn strikes instead of a bare
                        // protocol drop.
                        let result = check_update_header(id, &header, round, want_distill, None)
                            .and_then(|()| {
                                sink(StreamedUpdate {
                                    client_id: id,
                                    num_samples: header.weight as usize,
                                    nonce: header.nonce,
                                    state: &state,
                                })
                            });
                        state_pool
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push(state);
                        result
                    }
                    _ => Err(TransportError::Protocol {
                        client_id: id,
                        reason: "expected a round result".into(),
                    }),
                });
                outcomes.push((id, outcome));
            },
        );
        self.drop_failed_and_sort(&mut outcomes);
        results.append(&mut outcomes);
    }

    /// Drops the connections of clients whose round outcome was **their
    /// fault** (straggling, disconnecting, answering out of protocol)
    /// and sorts outcomes by client id. Three error kinds keep the
    /// connection alive:
    ///
    /// * [`TransportError::UpdateWindowExceeded`] is the coordinator's
    ///   own capacity policy — the worker answered correctly — so the
    ///   error propagates to the caller instead of silently shrinking
    ///   the fleet.
    /// * [`TransportError::Rejected`] and
    ///   [`TransportError::DuplicateUpdate`] are admission verdicts:
    ///   the strike/quarantine ledger decides the worker's fate, and
    ///   evicting on the first offense would bypass the configured
    ///   `max_strikes` budget. (The one exception is
    ///   [`UpdateViolation::HandlerPanic`], whose connection the
    ///   fan-out itself already dropped — the reply bytes blew up the
    ///   handler, so the socket cannot be trusted for another frame.)
    ///
    /// A [`TransportError::Quarantined`] outcome additionally bans the
    /// client from readmission (the eviction itself happens in
    /// [`RoundTransport::quarantine`]).
    fn drop_failed_and_sort<T>(&mut self, outcomes: &mut [(usize, Result<T, TransportError>)]) {
        for (id, outcome) in outcomes.iter() {
            match outcome {
                Ok(_)
                | Err(TransportError::UpdateWindowExceeded { .. })
                | Err(TransportError::Rejected { .. })
                | Err(TransportError::DuplicateUpdate { .. }) => {}
                Err(TransportError::Quarantined { .. }) => {
                    self.banned.insert(*id);
                    self.conns[*id] = None;
                }
                Err(_) => {
                    self.conns[*id] = None;
                }
            }
        }
        outcomes.sort_by_key(|(id, _)| *id);
    }

    /// Buffered round collection (the [`RoundTransport::train_round`] /
    /// [`DistillTransport::distill_round`] contract).
    fn round_buffered(
        &mut self,
        spec: &RoundSpec<'_>,
    ) -> Vec<Result<ClientUpdate, TransportError>> {
        let mut updates: Vec<(usize, Result<ClientUpdate, TransportError>)> = Vec::new();
        let round = spec.round;
        let nonce = spec.nonce;
        let want_distill = matches!(spec.mode, RoundMode::Distill);
        let enc_start = self.stats.clock.now_nanos();
        let encoded = encode_round_assign_into(
            &mut self.bcast,
            spec.mode,
            spec.round,
            spec.seed,
            spec.nonce,
            spec.cfg,
            spec.global,
            &self.cfg.limits,
        );
        self.stats
            .broadcast_encode_seconds
            .observe_nanos(self.stats.clock.now_nanos().saturating_sub(enc_start));
        if let Err(e) = encoded {
            return self
                .live_clients()
                .into_iter()
                .map(|id| Err(map_wire_error(id, e.clone())))
                .collect();
        }
        let TcpTransport {
            conns,
            cfg: tcp_cfg,
            stats,
            bcast,
            state_pool,
            poller,
            events,
            ..
        } = self;
        let state_pool: &Mutex<Vec<Vec<f32>>> = state_pool;
        Self::broadcast(
            conns,
            stats,
            tcp_cfg,
            state_pool,
            poller,
            events,
            bcast,
            None,
            |id, reply| {
                let outcome = reply.and_then(|r| match r {
                    Reply::Update { header, state } => {
                        // The buffered contract has no downstream
                        // admission layer, so the echoed nonce is
                        // enforced right here.
                        match check_update_header(id, &header, round, want_distill, Some(nonce)) {
                            // The delivered state leaves the pool with
                            // the update (the buffered contract hands
                            // ownership to the caller)…
                            Ok(()) => Ok(ClientUpdate {
                                client_id: id,
                                state,
                                num_samples: header.weight as usize,
                                server_mse: None,
                            }),
                            // …but a rejected one returns its buffer.
                            Err(e) => {
                                state_pool
                                    .lock()
                                    .unwrap_or_else(|e| e.into_inner())
                                    .push(state);
                                Err(e)
                            }
                        }
                    }
                    _ => Err(TransportError::Protocol {
                        client_id: id,
                        reason: "expected a round result".into(),
                    }),
                });
                updates.push((id, outcome));
            },
        );
        self.drop_failed_and_sort(&mut updates);
        updates.into_iter().map(|(_, u)| u).collect()
    }
}

/// Validates an `Update`/`UnlearnResult` header against the round it
/// answers (shared by the streamed and buffered collection paths, so
/// they can never diverge in what they accept). `expect_nonce` is
/// `Some` only on the buffered path — the streamed path forwards the
/// echoed nonce to the admission layer, which turns a mismatch into a
/// strike-earning [`TransportError::Rejected`] instead.
fn check_update_header(
    id: usize,
    header: &UpdateHeader,
    round: u64,
    want_distill: bool,
    expect_nonce: Option<u64>,
) -> Result<(), TransportError> {
    if header.distill == want_distill && header.round == round && header.client_id as usize == id {
        match expect_nonce {
            Some(want) if header.nonce != want => {
                return Err(TransportError::Rejected {
                    client_id: id,
                    violation: goldfish_fed::transport::UpdateViolation::StaleNonce {
                        got: header.nonce,
                        want,
                    },
                });
            }
            _ => return Ok(()),
        }
    }
    Err(TransportError::Protocol {
        client_id: id,
        reason: format!(
            "reply mismatch: round {} (want {round}), client {} (want {id}), distill {} (want {want_distill})",
            header.round, header.client_id, header.distill
        ),
    })
}

fn map_wire_error(client_id: usize, e: WireError) -> TransportError {
    match e {
        WireError::Io { kind, detail } => match kind {
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                TransportError::Timeout { client_id }
            }
            _ => TransportError::Disconnected {
                client_id,
                reason: detail,
            },
        },
        // A peer that vanished with a frame half-delivered is a
        // disconnect, not a protocol violation — the distinction drives
        // reconnect/backoff policy instead of a hard protocol abort.
        WireError::DisconnectedMidFrame { got, want } => TransportError::Disconnected {
            client_id,
            reason: format!("connection lost mid-frame ({got} of {want} bytes)"),
        },
        other => TransportError::Protocol {
            client_id,
            reason: other.to_string(),
        },
    }
}

impl RoundTransport for TcpTransport {
    fn num_clients(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    fn cohort_into(&self, out: &mut Vec<(usize, usize)>) {
        out.clear();
        out.extend(
            self.conns
                .iter()
                .enumerate()
                .filter_map(|(id, c)| c.as_ref().map(|c| (id, c.num_samples))),
        );
    }

    fn train_round(
        &mut self,
        assign: &TrainAssign<'_>,
    ) -> Vec<Result<ClientUpdate, TransportError>> {
        self.round_buffered(&RoundSpec {
            mode: RoundMode::Train,
            round: assign.round as u64,
            seed: assign.seed,
            nonce: assign.nonce,
            cfg: assign.cfg,
            global: assign.global,
        })
    }

    fn train_round_streamed(
        &mut self,
        assign: &TrainAssign<'_>,
        sink: &mut UpdateSink<'_>,
        results: &mut Vec<Result<(), TransportError>>,
    ) {
        let mut outcomes = Vec::new();
        self.round_streamed(
            &RoundSpec {
                mode: RoundMode::Train,
                round: assign.round as u64,
                seed: assign.seed,
                nonce: assign.nonce,
                cfg: assign.cfg,
                global: assign.global,
            },
            None,
            sink,
            &mut outcomes,
        );
        results.clear();
        results.extend(outcomes.into_iter().map(|(_, r)| r));
    }

    /// Sampled round: frames go only to the cohort's connections; every
    /// other registered worker stays parked in the poller, untouched
    /// and unbilled this round.
    fn train_round_sampled(
        &mut self,
        assign: &TrainAssign<'_>,
        cohort: &[(usize, usize)],
        sink: &mut UpdateSink<'_>,
        results: &mut Vec<Result<(), TransportError>>,
    ) {
        let mut outcomes = Vec::new();
        self.round_streamed(
            &RoundSpec {
                mode: RoundMode::Train,
                round: assign.round as u64,
                seed: assign.seed,
                nonce: assign.nonce,
                cfg: assign.cfg,
                global: assign.global,
            },
            Some(cohort),
            sink,
            &mut outcomes,
        );
        results.clear();
        results.extend(outcomes.into_iter().map(|(_, r)| r));
    }

    /// Evicts `client_id`: its connection is closed (after a
    /// best-effort typed `Err` frame telling the worker why) and its id
    /// is banned from readmission, so a quarantined worker cannot
    /// reconnect into its old slot with a resume token.
    fn quarantine(&mut self, client_id: usize) -> bool {
        self.banned.insert(client_id);
        let Some(slot) = self.conns.get_mut(client_id) else {
            return false;
        };
        let Some(conn) = slot.as_mut() else {
            return false;
        };
        // Best-effort delivery on the way out: briefly back to blocking
        // mode with a bounded write timeout so the frame actually
        // leaves before the socket closes.
        conn.stream.set_nonblocking(false).ok();
        conn.stream
            .set_write_timeout(Some(Duration::from_secs(2)))
            .ok();
        if let Ok(n) = write_frame(
            &mut conn.stream,
            &Msg::Err {
                code: err_code::QUARANTINED,
                detail: format!("client id {client_id} is quarantined"),
            },
            &self.cfg.limits,
        ) {
            self.stats.sent_bytes.add(n as u64);
        }
        *slot = None;
        true
    }
}

impl DistillTransport for TcpTransport {
    fn num_clients(&self) -> usize {
        RoundTransport::num_clients(self)
    }

    fn begin_unlearn(&mut self, job: &UnlearnJob, teacher: &[f32]) -> Result<(), TransportError> {
        if job.hard.is_none() {
            return Err(TransportError::Unsupported {
                reason: "custom hard losses cannot be shipped to workers".into(),
            });
        }
        let staged = std::mem::take(&mut self.staged);
        // Before any frame goes out: every client whose own data is
        // being deleted must be connected. Workers apply deletions
        // permanently on receipt, so discovering a missing requester
        // *after* the fan-out would leave other requesters' datasets
        // shrunk while the coordinator aborts and keeps serving the
        // pre-request model.
        for req in &staged {
            if !req.removed.is_empty() && self.conns.get(req.client_id).is_none_or(|c| c.is_none())
            {
                return Err(TransportError::Disconnected {
                    client_id: req.client_id,
                    reason: "deletion-requesting client is not connected".into(),
                });
            }
        }
        // Frames differ per client only in the (tiny) removed-index
        // list; encode each against the live set into the reusable
        // per-client buffers — the (large) teacher state is borrowed
        // straight into every frame, never cloned.
        while self.assign_bufs.len() < self.conns.len() {
            self.assign_bufs.push(Vec::new());
        }
        static NO_REMOVALS: &[usize] = &[];
        let enc_start = self.stats.clock.now_nanos();
        for (id, slot) in self.conns.iter().enumerate() {
            if slot.is_none() {
                continue;
            }
            let removed: &[usize] = staged
                .iter()
                .find(|r| r.client_id == id)
                .map(|r| r.removed.as_slice())
                .unwrap_or(NO_REMOVALS);
            encode_unlearn_assign_into(
                &mut self.assign_bufs[id],
                self.staged_serial,
                job,
                removed,
                teacher,
                &self.cfg.limits,
            )
            .map_err(|e| map_wire_error(id, e))?;
        }
        self.stats
            .broadcast_encode_seconds
            .observe_nanos(self.stats.clock.now_nanos().saturating_sub(enc_start));
        let TcpTransport {
            conns,
            cfg,
            stats,
            assign_bufs,
            state_pool,
            poller,
            events,
            ..
        } = self;
        let state_pool: &Mutex<Vec<Vec<f32>>> = state_pool;
        let frames: Vec<Option<&[u8]>> = conns
            .iter()
            .enumerate()
            .map(|(id, c)| c.as_ref().map(|_| assign_bufs[id].as_slice()))
            .collect();
        let mut results: Vec<(usize, Result<(), TransportError>)> = Vec::new();
        let mut acked_sizes: Vec<(usize, usize)> = Vec::new();
        Self::fan_out(
            conns,
            stats,
            cfg,
            state_pool,
            poller,
            events,
            &frames,
            |id, reply| {
                let outcome = reply.and_then(|r| match r {
                    Reply::UnlearnAck { num_samples } => {
                        acked_sizes.push((id, num_samples));
                        Ok(())
                    }
                    Reply::Ack => Ok(()),
                    Reply::Update { state, .. } => {
                        state_pool
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push(state);
                        Err(TransportError::Protocol {
                            client_id: id,
                            reason: "expected an UnlearnAssign ack, got a round result".into(),
                        })
                    }
                    Reply::Eval { .. } => Err(TransportError::Protocol {
                        client_id: id,
                        reason: "expected an UnlearnAssign ack, got Eval".into(),
                    }),
                });
                results.push((id, outcome));
            },
        );
        self.drop_failed_and_sort(&mut results);
        if results.iter().all(|(_, r)| r.is_err()) {
            return Err(TransportError::NoLiveClients);
        }
        // A client whose *own* deletion request did not land must fail
        // the whole pass — otherwise the coordinator would report the
        // request as served while the data survives. (Intact clients
        // that dropped are mere stragglers; the survivors distill on.)
        for req in &staged {
            if req.removed.is_empty() {
                continue;
            }
            let acked = results
                .iter()
                .any(|(id, r)| *id == req.client_id && r.is_ok());
            if !acked {
                let failure = results
                    .iter()
                    .find_map(|(id, r)| match r {
                        Err(e) if *id == req.client_id => Some(e.clone()),
                        _ => None,
                    })
                    .unwrap_or(TransportError::Disconnected {
                        client_id: req.client_id,
                        reason: "deletion-requesting client is not connected".into(),
                    });
                return Err(failure);
            }
        }
        // Registry sync from worker truth: each ack reports the
        // worker's own post-deletion count, and the registry *assigns*
        // it (never subtracts). A rejoined worker whose `Hello` already
        // reflected the deletion and whose serial cache made the
        // re-application a no-op therefore cannot be double-shrunk.
        for (id, n) in acked_sizes {
            if let Some(conn) = self.conns[id].as_mut() {
                conn.num_samples = n;
            }
        }
        Ok(())
    }

    fn distill_round(
        &mut self,
        round: usize,
        seed: u64,
        global: &[f32],
    ) -> Vec<Result<ClientUpdate, TransportError>> {
        // cfg travels for frame uniformity but is ignored by distill
        // workers (the job shipped it already).
        self.round_buffered(&RoundSpec {
            mode: RoundMode::Distill,
            round: round as u64,
            seed,
            // Distill assignments derive their nonce the same way
            // training rounds do; workers echo whatever the
            // `RoundAssign` carried, so both sides agree by
            // construction.
            nonce: goldfish_fed::transport::round_nonce(seed, round),
            cfg: &goldfish_fed::trainer::TrainConfig::default(),
            global,
        })
    }
}

impl ServeTransport for TcpTransport {
    fn client_sizes(&self) -> Vec<usize> {
        self.conns
            .iter()
            .map(|c| c.as_ref().map(|c| c.num_samples).unwrap_or(0))
            .collect()
    }

    fn stage_removals(&mut self, requests: &[UnlearnRequest], serial: u64) {
        self.staged = requests.to_vec();
        self.staged_serial = serial;
    }

    fn admit_reconnects(&mut self, round: usize, global: &[f32]) -> usize {
        // The typed no-listener path (a fleet torn down mid-run, or one
        // that never enabled reconnects) admits zero — no unwrap, no
        // panic, pinned by `tests/reactor.rs`.
        let Some(listener) = self.listener.take() else {
            return 0;
        };
        // Drain whatever is queued on the listener without blocking the
        // round loop; each candidate then gets a normal (blocking,
        // deadline-bounded) handshake. The listener is held by value
        // while draining, so no aliased re-borrow of `self` is needed.
        let mut admitted = 0;
        if listener.set_nonblocking(true).is_ok() {
            let mut candidates = Vec::new();
            while let Ok((stream, _)) = listener.accept() {
                candidates.push(stream);
            }
            listener.set_nonblocking(false).ok();
            for stream in candidates {
                if self.admit_one(stream, round, global).is_some() {
                    admitted += 1;
                }
            }
        }
        self.listener = Some(listener);
        admitted
    }

    fn set_read_timeout(&mut self, timeout: Duration) {
        // The reactor enforces this as a per-fan-out deadline; nothing
        // per-socket to update (connections are non-blocking).
        self.cfg.read_timeout = timeout;
    }

    fn shutdown(&mut self) {
        // Best effort: a worker that already vanished can't be told.
        // Briefly back to blocking mode so the frame actually flushes
        // on a socket whose send buffer is busy.
        for conn in self.conns.iter_mut().flatten() {
            conn.stream.set_nonblocking(false).ok();
            conn.stream
                .set_write_timeout(Some(Duration::from_secs(5)))
                .ok();
            if let Ok(n) = write_frame(&mut conn.stream, &Msg::Shutdown, &self.cfg.limits) {
                self.stats.sent_bytes.add(n as u64);
            }
        }
    }

    fn local_eval(
        &mut self,
        round: usize,
        global: &[f32],
    ) -> Vec<Result<LocalEval, TransportError>> {
        let enc_start = self.stats.clock.now_nanos();
        let encoded =
            encode_eval_request_into(&mut self.bcast, round as u64, global, &self.cfg.limits);
        self.stats
            .broadcast_encode_seconds
            .observe_nanos(self.stats.clock.now_nanos().saturating_sub(enc_start));
        if let Err(e) = encoded {
            return self
                .live_clients()
                .into_iter()
                .map(|id| Err(map_wire_error(id, e.clone())))
                .collect();
        }
        let TcpTransport {
            conns,
            cfg,
            stats,
            bcast,
            state_pool,
            poller,
            events,
            ..
        } = self;
        let state_pool: &Mutex<Vec<Vec<f32>>> = state_pool;
        let mut evals: Vec<(usize, Result<LocalEval, TransportError>)> = Vec::new();
        Self::broadcast(
            conns,
            stats,
            cfg,
            state_pool,
            poller,
            events,
            bcast,
            None,
            |id, reply| {
                let outcome = reply.and_then(|r| match r {
                    Reply::Eval { accuracy, mse } => Ok(LocalEval {
                        client_id: id,
                        accuracy,
                        mse,
                    }),
                    Reply::Update { state, .. } => {
                        state_pool
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push(state);
                        Err(TransportError::Protocol {
                            client_id: id,
                            reason: "expected an Eval reply, got a round result".into(),
                        })
                    }
                    Reply::Ack | Reply::UnlearnAck { .. } => Err(TransportError::Protocol {
                        client_id: id,
                        reason: "expected an Eval reply, got an acknowledgement".into(),
                    }),
                });
                evals.push((id, outcome));
            },
        );
        self.drop_failed_and_sort(&mut evals);
        evals.into_iter().map(|(_, e)| e).collect()
    }

    fn wire_stats(&self) -> WireStats {
        self.stats.wire_stats()
    }

    fn set_telemetry(&mut self, telemetry: &ServeTelemetry) {
        // Carries handshake-era counts into the shared catalog's cells.
        self.stats.attach(telemetry);
    }
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TcpTransport({} live of {} slots, {} B out, {} B in)",
            RoundTransport::num_clients(self),
            self.conns.len(),
            self.stats.sent_bytes.get(),
            self.stats.received_bytes.get()
        )
    }
}

/// Convenience: binds `addr` (e.g. `127.0.0.1:0`) and returns the
/// listener plus its resolved local address string.
///
/// # Errors
///
/// [`WireError::Io`] when binding fails.
pub fn bind(addr: &str) -> Result<(TcpListener, String), WireError> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?.to_string();
    Ok((listener, local))
}

// Keep the module's error text helpers exercised even in non-network
// test builds.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_error_mapping() {
        let e = map_wire_error(
            3,
            WireError::Io {
                kind: std::io::ErrorKind::TimedOut,
                detail: "t".into(),
            },
        );
        assert_eq!(e, TransportError::Timeout { client_id: 3 });
        let e = map_wire_error(
            1,
            WireError::Io {
                kind: std::io::ErrorKind::ConnectionReset,
                detail: "gone".into(),
            },
        );
        assert!(matches!(
            e,
            TransportError::Disconnected { client_id: 1, .. }
        ));
        let e = map_wire_error(0, WireError::UnknownKind(9));
        assert!(matches!(e, TransportError::Protocol { .. }));
        let _ = crate::wire::describe_err(&Msg::Err {
            code: 1,
            detail: "x".into(),
        });
    }
}
