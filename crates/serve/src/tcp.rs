//! The coordinator-side TCP transport.
//!
//! One blocking socket per worker (thread-per-connection: each round
//! fans its frame exchange out over a `std::thread::scope`, so the pool
//! is bounded by the live-connection count), per-client read timeouts
//! for liveness, and byte counters for the wire-cost benchmarks. A
//! client that times out, disconnects, or answers out of protocol is
//! dropped from the live set and reported as a typed
//! [`TransportError`]; the round driver then re-rounds over the
//! survivors.
//!
//! Hot-path machinery (DESIGN.md §11):
//!
//! * **Encode-once broadcast** — round assignments and eval requests are
//!   encoded a single time into a transport-owned reusable buffer
//!   straight from the borrowed global state (no `Msg`, no state clone)
//!   and the same bytes are written to every connection.
//! * **Pooled frame buffers** — every connection owns a reusable payload
//!   read buffer, and decoded update states go through a shared buffer
//!   pool, so a steady-state round re-uses the same allocations.
//! * **Streaming replies** — connection threads hand each decoded update
//!   to the caller *as it arrives* over a channel, which is what lets
//!   the coordinator's [`goldfish_fed::transport::RoundRuntime`] fold
//!   updates while stragglers are still on the wire.

use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Duration;

use goldfish_core::transport::{DistillTransport, UnlearnJob};
use goldfish_fed::aggregate::ClientUpdate;
use goldfish_fed::transport::{
    RoundTransport, StreamedUpdate, TrainAssign, TransportError, UpdateSink,
};

use crate::queue::UnlearnRequest;
use crate::transport::{LocalEval, ServeTransport, WireStats};
use crate::wire::{
    decode_msg, decode_update_into, encode_eval_request_into, encode_round_assign_into,
    encode_unlearn_assign_into, err_code, kind as wire_kind, read_raw_frame, write_frame,
    FrameLimits, Msg, RoundMode, UpdateHeader, WireError,
};

/// Socket policy of a [`TcpTransport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpConfig {
    /// Frame-size limits (both directions).
    pub limits: FrameLimits,
    /// Per-reply read deadline; a worker exceeding it is dropped as a
    /// straggler. Reconfigurable after accept via
    /// [`ServeTransport::set_read_timeout`] (the coordinator builder's
    /// knob).
    pub read_timeout: Duration,
    /// Aggregation-mode wire code announced in `Capabilities`
    /// ([`goldfish_fed::aggregate::AggregationMode::wire_code`]), so
    /// workers know which robust fold their updates feed.
    pub agg_mode: u8,
    /// Mode parameter paired with `agg_mode` (trim count or clip-limit
    /// bits; 0 when the mode takes none).
    pub agg_param: u64,
}

impl Default for TcpConfig {
    /// 30 s replies — generous for CI boxes under load; benchmarks and
    /// tests that probe straggler handling shrink it.
    fn default() -> Self {
        TcpConfig {
            limits: FrameLimits::default(),
            read_timeout: Duration::from_secs(30),
            agg_mode: 0,
            agg_param: 0,
        }
    }
}

struct Conn {
    stream: TcpStream,
    num_samples: usize,
    /// Reusable payload read buffer — frames land here, so a
    /// steady-state connection never allocates to receive.
    rbuf: Vec<u8>,
}

/// The networked [`ServeTransport`]: a registry of worker connections
/// keyed by client id, accepting the round-loop contracts of
/// `goldfish_fed` and `goldfish_core` over the wire protocol.
pub struct TcpTransport {
    conns: Vec<Option<Conn>>,
    cfg: TcpConfig,
    staged: Vec<UnlearnRequest>,
    /// Drain serial of the staged batch — shipped in `UnlearnAssign` so
    /// a worker can deduplicate a re-shipped batch after a coordinator
    /// crash-restart.
    staged_serial: u64,
    stats: WireStats,
    /// Parameter count every `Hello` must match (kept for reconnect
    /// validation).
    state_len: usize,
    /// Listener retained for mid-run reconnects; `None` = closed-world
    /// fleet (original behaviour).
    listener: Option<TcpListener>,
    /// The encode-once broadcast frame, reused round after round.
    bcast: Vec<u8>,
    /// Per-client frame buffers for fan-outs whose frames differ per
    /// client (`UnlearnAssign`), reused across requests.
    assign_bufs: Vec<Vec<u8>>,
    /// Pool of decoded-update state buffers, refilled after each fold.
    state_pool: Mutex<Vec<Vec<f32>>>,
    /// Client ids evicted via [`RoundTransport::quarantine`]. Banned
    /// ids are refused readmission even with a valid resume token.
    banned: std::collections::BTreeSet<usize>,
}

/// One round-shaped fan-out's borrowed parameters (train or distill).
struct RoundSpec<'a> {
    mode: RoundMode,
    round: u64,
    seed: u64,
    nonce: u64,
    cfg: &'a goldfish_fed::trainer::TrainConfig,
    global: &'a [f32],
}

/// A decoded worker reply leaving a connection thread.
enum Reply {
    /// `Update` / `UnlearnResult` with the state decoded into a pooled
    /// buffer.
    Update {
        header: UpdateHeader,
        state: Vec<f32>,
    },
    /// An `Eval` reply's metrics.
    Eval { accuracy: f64, mse: f64 },
    /// A bare acknowledgement.
    Ack,
    /// An `UnlearnAssign` ack carrying the worker's authoritative
    /// post-deletion sample count.
    UnlearnAck { num_samples: usize },
}

impl TcpTransport {
    /// Accepts `expected` workers on `listener`. Each must open with a
    /// valid `Hello` (unique client id below `expected`, matching
    /// `state_len`); invalid peers get a typed `Err` frame and are
    /// dropped without consuming a slot.
    ///
    /// # Errors
    ///
    /// [`WireError`] on listener failures.
    pub fn accept(
        listener: &TcpListener,
        expected: usize,
        state_len: usize,
        cfg: TcpConfig,
    ) -> Result<TcpTransport, WireError> {
        let mut conns: Vec<Option<Conn>> = (0..expected).map(|_| None).collect();
        let mut registered = 0;
        let mut rbuf = Vec::new();
        while registered < expected {
            let (mut stream, _) = listener.accept()?;
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(Some(cfg.read_timeout)).ok();
            let hello = match read_raw_frame(&mut stream, &mut rbuf, &cfg.limits)
                .and_then(|(kind, _)| decode_msg(kind, &rbuf))
            {
                Ok(msg) => msg,
                Err(_) => continue, // bad opener; next candidate
            };
            let Msg::Hello {
                client_id,
                state_len: worker_len,
                num_samples,
                // A resume token at startup is fine: a worker that
                // outlived a crashed coordinator re-registers into its
                // old slot here (slots are keyed by client id, so
                // cohort/round seeds are unperturbed).
                resume: _,
            } = hello
            else {
                let _ = write_frame(
                    &mut stream,
                    &Msg::Err {
                        code: err_code::BAD_REQUEST,
                        detail: "expected Hello".into(),
                    },
                    &cfg.limits,
                );
                continue;
            };
            let id = client_id as usize;
            if id >= expected || conns[id].is_some() {
                let _ = write_frame(
                    &mut stream,
                    &Msg::Err {
                        code: err_code::BAD_REQUEST,
                        detail: format!("client id {id} invalid or already registered"),
                    },
                    &cfg.limits,
                );
                continue;
            }
            if worker_len as usize != state_len {
                let _ = write_frame(
                    &mut stream,
                    &Msg::Err {
                        code: err_code::BAD_STATE_LEN,
                        detail: format!("model has {state_len} params, worker says {worker_len}"),
                    },
                    &cfg.limits,
                );
                continue;
            }
            write_frame(
                &mut stream,
                &Msg::Capabilities {
                    max_payload: cfg.limits.max_payload as u64,
                    state_len: state_len as u64,
                    agg_mode: cfg.agg_mode,
                    agg_param: cfg.agg_param,
                },
                &cfg.limits,
            )?;
            conns[id] = Some(Conn {
                stream,
                num_samples: num_samples as usize,
                rbuf: Vec::new(),
            });
            registered += 1;
        }
        Ok(TcpTransport {
            conns,
            cfg,
            staged: Vec::new(),
            staged_serial: 0,
            stats: WireStats::default(),
            state_len,
            listener: None,
            bcast: Vec::new(),
            assign_bufs: Vec::new(),
            state_pool: Mutex::new(Vec::new()),
            banned: std::collections::BTreeSet::new(),
        })
    }

    /// Keeps `listener` open for mid-run reconnects: at every round
    /// boundary the coordinator calls
    /// [`ServeTransport::admit_reconnects`], which re-admits workers
    /// presenting a `Hello` resume token into their (vacated) slots.
    /// Without this the fleet is closed-world — a dropped worker stays
    /// dropped.
    pub fn enable_reconnect(&mut self, listener: TcpListener) {
        self.listener = Some(listener);
    }

    /// One reconnect admission attempt: validates the resume `Hello`,
    /// replies `Capabilities` then `Digest` (current round + global
    /// state digest, so the worker can verify it rejoined the same run)
    /// and waits for the worker's `Ack`. Returns the registered slot.
    fn admit_one(&mut self, mut stream: TcpStream, round: usize, global: &[f32]) -> Option<usize> {
        stream.set_nonblocking(false).ok();
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(self.cfg.read_timeout)).ok();
        let mut rbuf = Vec::new();
        let hello = read_raw_frame(&mut stream, &mut rbuf, &self.cfg.limits)
            .and_then(|(kind, _)| decode_msg(kind, &rbuf))
            .ok()?;
        let Msg::Hello {
            client_id,
            state_len: worker_len,
            num_samples,
            resume,
        } = hello
        else {
            return None;
        };
        let id = client_id as usize;
        let reject = |stream: &mut TcpStream, code: u16, detail: String| {
            let _ = write_frame(stream, &Msg::Err { code, detail }, &self.cfg.limits);
        };
        if resume.is_none() {
            reject(
                &mut stream,
                err_code::BAD_REQUEST,
                "mid-run joins require a resume token".into(),
            );
            return None;
        }
        if id >= self.conns.len() || self.conns[id].is_some() {
            reject(
                &mut stream,
                err_code::BAD_REQUEST,
                format!("client id {id} invalid or already registered"),
            );
            return None;
        }
        if self.banned.contains(&id) {
            reject(
                &mut stream,
                err_code::QUARANTINED,
                format!("client id {id} is quarantined"),
            );
            return None;
        }
        if worker_len as usize != self.state_len {
            reject(
                &mut stream,
                err_code::BAD_STATE_LEN,
                format!(
                    "model has {} params, worker says {worker_len}",
                    self.state_len
                ),
            );
            return None;
        }
        write_frame(
            &mut stream,
            &Msg::Capabilities {
                max_payload: self.cfg.limits.max_payload as u64,
                state_len: self.state_len as u64,
                agg_mode: self.cfg.agg_mode,
                agg_param: self.cfg.agg_param,
            },
            &self.cfg.limits,
        )
        .ok()?;
        write_frame(
            &mut stream,
            &Msg::Digest {
                round: round as u64,
                digest: crate::digest::state_digest(round as u64, global),
            },
            &self.cfg.limits,
        )
        .ok()?;
        match read_raw_frame(&mut stream, &mut rbuf, &self.cfg.limits)
            .and_then(|(kind, _)| decode_msg(kind, &rbuf))
        {
            Ok(Msg::Ack) => {}
            _ => return None,
        }
        self.conns[id] = Some(Conn {
            stream,
            num_samples: num_samples as usize,
            rbuf: Vec::new(),
        });
        Some(id)
    }

    /// Live client ids, ascending.
    pub fn live_clients(&self) -> Vec<usize> {
        self.conns
            .iter()
            .enumerate()
            .filter_map(|(id, c)| c.as_ref().map(|_| id))
            .collect()
    }

    /// The fan-out engine: writes `frames[id]` to every live connection
    /// with a frame, reads one reply each (concurrently, one thread per
    /// connection), and hands each decoded reply to `on_reply` **as it
    /// arrives** on the coordinating thread. Failed connections are
    /// dropped from the live set afterwards. Wire bytes are tallied into
    /// `self.stats`.
    fn fan_out(
        conns: &mut [Option<Conn>],
        stats: &mut WireStats,
        limits: FrameLimits,
        state_pool: &Mutex<Vec<Vec<f32>>>,
        frames: &[Option<&[u8]>],
        mut on_reply: impl FnMut(usize, Result<Reply, TransportError>),
    ) {
        use std::io::Write;
        let mut failed: Vec<usize> = Vec::new();
        let (mut sent_total, mut recv_total) = (0u64, 0u64);
        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<(usize, Result<Reply, TransportError>, u64, u64)>();
            let mut spawned = 0usize;
            for (id, slot) in conns.iter_mut().enumerate() {
                let (Some(conn), Some(frame)) = (slot.as_mut(), frames.get(id).copied().flatten())
                else {
                    continue;
                };
                let tx = tx.clone();
                scope.spawn(move || {
                    let mut sent = 0u64;
                    let mut received = 0u64;
                    let result = (|| {
                        conn.stream
                            .write_all(frame)
                            .and_then(|()| conn.stream.flush())
                            .map_err(|e| map_wire_error(id, WireError::from(e)))?;
                        sent = frame.len() as u64;
                        let (kind, n) = read_raw_frame(&mut conn.stream, &mut conn.rbuf, &limits)
                            .map_err(|e| map_wire_error(id, e))?;
                        received = n as u64;
                        match kind {
                            // Update / UnlearnResult: decode the state
                            // straight into a pooled buffer.
                            wire_kind::UPDATE | wire_kind::UNLEARN_RESULT => {
                                let mut state = state_pool
                                    .lock()
                                    .unwrap_or_else(|e| e.into_inner())
                                    .pop()
                                    .unwrap_or_default();
                                match decode_update_into(kind, &conn.rbuf, &mut state) {
                                    Ok(header) => {
                                        // A train update's weight is the
                                        // worker's own dataset size —
                                        // authoritative, so a registry
                                        // count that drifted (e.g. a
                                        // deletion re-shipped to a
                                        // rejoined worker) self-heals.
                                        if !header.distill {
                                            conn.num_samples = header.weight as usize;
                                        }
                                        Ok(Reply::Update { header, state })
                                    }
                                    Err(e) => {
                                        // Failed decodes return their
                                        // buffer too, or the pool leaks.
                                        state_pool
                                            .lock()
                                            .unwrap_or_else(|e| e.into_inner())
                                            .push(state);
                                        Err(map_wire_error(id, e))
                                    }
                                }
                            }
                            _ => match decode_msg(kind, &conn.rbuf)
                                .map_err(|e| map_wire_error(id, e))?
                            {
                                Msg::Err { code, detail } => Err(TransportError::Protocol {
                                    client_id: id,
                                    reason: format!("worker error code {code}: {detail}"),
                                }),
                                Msg::Eval { accuracy, mse, .. } => {
                                    Ok(Reply::Eval { accuracy, mse })
                                }
                                Msg::Ack => Ok(Reply::Ack),
                                Msg::UnlearnAck { num_samples } => Ok(Reply::UnlearnAck {
                                    num_samples: num_samples as usize,
                                }),
                                other => Err(TransportError::Protocol {
                                    client_id: id,
                                    reason: format!("unexpected {} from worker", other.name()),
                                }),
                            },
                        }
                    })();
                    // The receiver outlives the scope; a send can only
                    // fail if the coordinating thread panicked.
                    let _ = tx.send((id, result, sent, received));
                });
                spawned += 1;
            }
            drop(tx);
            // Stream replies to the caller in arrival order — this is
            // where aggregation overlaps with stragglers' I/O.
            for _ in 0..spawned {
                let (id, result, sent, received) =
                    rx.recv().expect("connection thread panicked before send");
                sent_total += sent;
                recv_total += received;
                if result.is_err() {
                    failed.push(id);
                }
                on_reply(id, result);
            }
        });
        stats.bytes_sent += sent_total;
        stats.bytes_received += recv_total;
        for id in failed {
            // Straggler / lost / misbehaving worker: drop it.
            conns[id] = None;
        }
    }

    /// Broadcast form of [`TcpTransport::fan_out`]: one shared,
    /// encoded-once frame to every live connection.
    fn broadcast(
        conns: &mut [Option<Conn>],
        stats: &mut WireStats,
        limits: FrameLimits,
        state_pool: &Mutex<Vec<Vec<f32>>>,
        frame: &[u8],
        on_reply: impl FnMut(usize, Result<Reply, TransportError>),
    ) {
        let frames: Vec<Option<&[u8]>> = conns.iter().map(|c| c.as_ref().map(|_| frame)).collect();
        Self::fan_out(conns, stats, limits, state_pool, &frames, on_reply);
    }

    /// Runs a round-shaped fan-out (train or distill) feeding `sink` as
    /// updates arrive, recording per-client outcomes into `results`
    /// (sorted by client id).
    fn round_streamed(
        &mut self,
        spec: &RoundSpec<'_>,
        sink: &mut UpdateSink<'_>,
        results: &mut Vec<(usize, Result<(), TransportError>)>,
    ) {
        results.clear();
        let round = spec.round;
        let want_distill = matches!(spec.mode, RoundMode::Distill);
        if let Err(e) = encode_round_assign_into(
            &mut self.bcast,
            spec.mode,
            spec.round,
            spec.seed,
            spec.nonce,
            spec.cfg,
            spec.global,
            &self.cfg.limits,
        ) {
            results.extend(
                self.live_clients()
                    .into_iter()
                    .map(|id| (id, Err(map_wire_error(id, e.clone())))),
            );
            return;
        }
        let TcpTransport {
            conns,
            cfg,
            stats,
            bcast,
            state_pool,
            ..
        } = self;
        let state_pool: &Mutex<Vec<Vec<f32>>> = state_pool;
        let mut outcomes: Vec<(usize, Result<(), TransportError>)> = Vec::new();
        Self::broadcast(conns, stats, cfg.limits, state_pool, bcast, |id, reply| {
            let outcome = reply.and_then(|r| match r {
                Reply::Update { header, state } => {
                    // The nonce is *forwarded*, not checked: the
                    // streamed path feeds the coordinator's admission
                    // layer ([`goldfish_fed::transport::RoundRuntime`]),
                    // which judges stale nonces as typed violations so
                    // they earn strikes instead of a bare protocol drop.
                    let result = check_update_header(id, &header, round, want_distill, None)
                        .and_then(|()| {
                            sink(StreamedUpdate {
                                client_id: id,
                                num_samples: header.weight as usize,
                                nonce: header.nonce,
                                state: &state,
                            })
                        });
                    state_pool
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(state);
                    result
                }
                _ => Err(TransportError::Protocol {
                    client_id: id,
                    reason: "expected a round result".into(),
                }),
            });
            outcomes.push((id, outcome));
        });
        self.drop_failed_and_sort(&mut outcomes);
        results.append(&mut outcomes);
    }

    /// Drops the connections of clients whose round outcome was **their
    /// fault** (straggling, disconnecting, answering out of protocol)
    /// and sorts outcomes by client id. Three error kinds keep the
    /// connection alive:
    ///
    /// * [`TransportError::UpdateWindowExceeded`] is the coordinator's
    ///   own capacity policy — the worker answered correctly — so the
    ///   error propagates to the caller instead of silently shrinking
    ///   the fleet.
    /// * [`TransportError::Rejected`] and
    ///   [`TransportError::DuplicateUpdate`] are admission verdicts:
    ///   the strike/quarantine ledger decides the worker's fate, and
    ///   evicting on the first offense would bypass the configured
    ///   `max_strikes` budget.
    ///
    /// A [`TransportError::Quarantined`] outcome additionally bans the
    /// client from readmission (the eviction itself happens in
    /// [`RoundTransport::quarantine`]).
    fn drop_failed_and_sort<T>(&mut self, outcomes: &mut [(usize, Result<T, TransportError>)]) {
        for (id, outcome) in outcomes.iter() {
            match outcome {
                Ok(_)
                | Err(TransportError::UpdateWindowExceeded { .. })
                | Err(TransportError::Rejected { .. })
                | Err(TransportError::DuplicateUpdate { .. }) => {}
                Err(TransportError::Quarantined { .. }) => {
                    self.banned.insert(*id);
                    self.conns[*id] = None;
                }
                Err(_) => {
                    self.conns[*id] = None;
                }
            }
        }
        outcomes.sort_by_key(|(id, _)| *id);
    }

    /// Buffered round collection (the [`RoundTransport::train_round`] /
    /// [`DistillTransport::distill_round`] contract).
    fn round_buffered(
        &mut self,
        spec: &RoundSpec<'_>,
    ) -> Vec<Result<ClientUpdate, TransportError>> {
        let mut updates: Vec<(usize, Result<ClientUpdate, TransportError>)> = Vec::new();
        let round = spec.round;
        let nonce = spec.nonce;
        let want_distill = matches!(spec.mode, RoundMode::Distill);
        if let Err(e) = encode_round_assign_into(
            &mut self.bcast,
            spec.mode,
            spec.round,
            spec.seed,
            spec.nonce,
            spec.cfg,
            spec.global,
            &self.cfg.limits,
        ) {
            return self
                .live_clients()
                .into_iter()
                .map(|id| Err(map_wire_error(id, e.clone())))
                .collect();
        }
        let TcpTransport {
            conns,
            cfg: tcp_cfg,
            stats,
            bcast,
            state_pool,
            ..
        } = self;
        let state_pool: &Mutex<Vec<Vec<f32>>> = state_pool;
        Self::broadcast(
            conns,
            stats,
            tcp_cfg.limits,
            state_pool,
            bcast,
            |id, reply| {
                let outcome = reply.and_then(|r| match r {
                    Reply::Update { header, state } => {
                        // The buffered contract has no downstream
                        // admission layer, so the echoed nonce is
                        // enforced right here.
                        match check_update_header(id, &header, round, want_distill, Some(nonce)) {
                            // The delivered state leaves the pool with
                            // the update (the buffered contract hands
                            // ownership to the caller)…
                            Ok(()) => Ok(ClientUpdate {
                                client_id: id,
                                state,
                                num_samples: header.weight as usize,
                                server_mse: None,
                            }),
                            // …but a rejected one returns its buffer.
                            Err(e) => {
                                state_pool
                                    .lock()
                                    .unwrap_or_else(|e| e.into_inner())
                                    .push(state);
                                Err(e)
                            }
                        }
                    }
                    _ => Err(TransportError::Protocol {
                        client_id: id,
                        reason: "expected a round result".into(),
                    }),
                });
                updates.push((id, outcome));
            },
        );
        self.drop_failed_and_sort(&mut updates);
        updates.into_iter().map(|(_, u)| u).collect()
    }
}

/// Validates an `Update`/`UnlearnResult` header against the round it
/// answers (shared by the streamed and buffered collection paths, so
/// they can never diverge in what they accept). `expect_nonce` is
/// `Some` only on the buffered path — the streamed path forwards the
/// echoed nonce to the admission layer, which turns a mismatch into a
/// strike-earning [`TransportError::Rejected`] instead.
fn check_update_header(
    id: usize,
    header: &UpdateHeader,
    round: u64,
    want_distill: bool,
    expect_nonce: Option<u64>,
) -> Result<(), TransportError> {
    if header.distill == want_distill && header.round == round && header.client_id as usize == id {
        match expect_nonce {
            Some(want) if header.nonce != want => {
                return Err(TransportError::Rejected {
                    client_id: id,
                    violation: goldfish_fed::transport::UpdateViolation::StaleNonce {
                        got: header.nonce,
                        want,
                    },
                });
            }
            _ => return Ok(()),
        }
    }
    Err(TransportError::Protocol {
        client_id: id,
        reason: format!(
            "reply mismatch: round {} (want {round}), client {} (want {id}), distill {} (want {want_distill})",
            header.round, header.client_id, header.distill
        ),
    })
}

fn map_wire_error(client_id: usize, e: WireError) -> TransportError {
    match e {
        WireError::Io { kind, detail } => match kind {
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                TransportError::Timeout { client_id }
            }
            _ => TransportError::Disconnected {
                client_id,
                reason: detail,
            },
        },
        // A peer that vanished with a frame half-delivered is a
        // disconnect, not a protocol violation — the distinction drives
        // reconnect/backoff policy instead of a hard protocol abort.
        WireError::DisconnectedMidFrame { got, want } => TransportError::Disconnected {
            client_id,
            reason: format!("connection lost mid-frame ({got} of {want} bytes)"),
        },
        other => TransportError::Protocol {
            client_id,
            reason: other.to_string(),
        },
    }
}

impl RoundTransport for TcpTransport {
    fn num_clients(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    fn cohort_into(&self, out: &mut Vec<(usize, usize)>) {
        out.clear();
        out.extend(
            self.conns
                .iter()
                .enumerate()
                .filter_map(|(id, c)| c.as_ref().map(|c| (id, c.num_samples))),
        );
    }

    fn train_round(
        &mut self,
        assign: &TrainAssign<'_>,
    ) -> Vec<Result<ClientUpdate, TransportError>> {
        self.round_buffered(&RoundSpec {
            mode: RoundMode::Train,
            round: assign.round as u64,
            seed: assign.seed,
            nonce: assign.nonce,
            cfg: assign.cfg,
            global: assign.global,
        })
    }

    fn train_round_streamed(
        &mut self,
        assign: &TrainAssign<'_>,
        sink: &mut UpdateSink<'_>,
        results: &mut Vec<Result<(), TransportError>>,
    ) {
        let mut outcomes = Vec::new();
        self.round_streamed(
            &RoundSpec {
                mode: RoundMode::Train,
                round: assign.round as u64,
                seed: assign.seed,
                nonce: assign.nonce,
                cfg: assign.cfg,
                global: assign.global,
            },
            sink,
            &mut outcomes,
        );
        results.clear();
        results.extend(outcomes.into_iter().map(|(_, r)| r));
    }

    /// Evicts `client_id`: its connection is closed (after a
    /// best-effort typed `Err` frame telling the worker why) and its id
    /// is banned from readmission, so a quarantined worker cannot
    /// reconnect into its old slot with a resume token.
    fn quarantine(&mut self, client_id: usize) -> bool {
        self.banned.insert(client_id);
        let Some(slot) = self.conns.get_mut(client_id) else {
            return false;
        };
        let Some(conn) = slot.as_mut() else {
            return false;
        };
        let _ = write_frame(
            &mut conn.stream,
            &Msg::Err {
                code: err_code::QUARANTINED,
                detail: format!("client id {client_id} is quarantined"),
            },
            &self.cfg.limits,
        );
        *slot = None;
        true
    }
}

impl DistillTransport for TcpTransport {
    fn num_clients(&self) -> usize {
        RoundTransport::num_clients(self)
    }

    fn begin_unlearn(&mut self, job: &UnlearnJob, teacher: &[f32]) -> Result<(), TransportError> {
        if job.hard.is_none() {
            return Err(TransportError::Unsupported {
                reason: "custom hard losses cannot be shipped to workers".into(),
            });
        }
        let staged = std::mem::take(&mut self.staged);
        // Before any frame goes out: every client whose own data is
        // being deleted must be connected. Workers apply deletions
        // permanently on receipt, so discovering a missing requester
        // *after* the fan-out would leave other requesters' datasets
        // shrunk while the coordinator aborts and keeps serving the
        // pre-request model.
        for req in &staged {
            if !req.removed.is_empty() && self.conns.get(req.client_id).is_none_or(|c| c.is_none())
            {
                return Err(TransportError::Disconnected {
                    client_id: req.client_id,
                    reason: "deletion-requesting client is not connected".into(),
                });
            }
        }
        // Frames differ per client only in the (tiny) removed-index
        // list; encode each against the live set into the reusable
        // per-client buffers — the (large) teacher state is borrowed
        // straight into every frame, never cloned.
        while self.assign_bufs.len() < self.conns.len() {
            self.assign_bufs.push(Vec::new());
        }
        static NO_REMOVALS: &[usize] = &[];
        for (id, slot) in self.conns.iter().enumerate() {
            if slot.is_none() {
                continue;
            }
            let removed: &[usize] = staged
                .iter()
                .find(|r| r.client_id == id)
                .map(|r| r.removed.as_slice())
                .unwrap_or(NO_REMOVALS);
            encode_unlearn_assign_into(
                &mut self.assign_bufs[id],
                self.staged_serial,
                job,
                removed,
                teacher,
                &self.cfg.limits,
            )
            .map_err(|e| map_wire_error(id, e))?;
        }
        let TcpTransport {
            conns,
            cfg,
            stats,
            assign_bufs,
            state_pool,
            ..
        } = self;
        let state_pool: &Mutex<Vec<Vec<f32>>> = state_pool;
        let frames: Vec<Option<&[u8]>> = conns
            .iter()
            .enumerate()
            .map(|(id, c)| c.as_ref().map(|_| assign_bufs[id].as_slice()))
            .collect();
        let mut results: Vec<(usize, Result<(), TransportError>)> = Vec::new();
        let mut acked_sizes: Vec<(usize, usize)> = Vec::new();
        Self::fan_out(
            conns,
            stats,
            cfg.limits,
            state_pool,
            &frames,
            |id, reply| {
                let outcome = reply.and_then(|r| match r {
                    Reply::UnlearnAck { num_samples } => {
                        acked_sizes.push((id, num_samples));
                        Ok(())
                    }
                    Reply::Ack => Ok(()),
                    Reply::Update { state, .. } => {
                        state_pool
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push(state);
                        Err(TransportError::Protocol {
                            client_id: id,
                            reason: "expected an UnlearnAssign ack, got a round result".into(),
                        })
                    }
                    Reply::Eval { .. } => Err(TransportError::Protocol {
                        client_id: id,
                        reason: "expected an UnlearnAssign ack, got Eval".into(),
                    }),
                });
                results.push((id, outcome));
            },
        );
        self.drop_failed_and_sort(&mut results);
        if results.iter().all(|(_, r)| r.is_err()) {
            return Err(TransportError::NoLiveClients);
        }
        // A client whose *own* deletion request did not land must fail
        // the whole pass — otherwise the coordinator would report the
        // request as served while the data survives. (Intact clients
        // that dropped are mere stragglers; the survivors distill on.)
        for req in &staged {
            if req.removed.is_empty() {
                continue;
            }
            let acked = results
                .iter()
                .any(|(id, r)| *id == req.client_id && r.is_ok());
            if !acked {
                let failure = results
                    .iter()
                    .find_map(|(id, r)| match r {
                        Err(e) if *id == req.client_id => Some(e.clone()),
                        _ => None,
                    })
                    .unwrap_or(TransportError::Disconnected {
                        client_id: req.client_id,
                        reason: "deletion-requesting client is not connected".into(),
                    });
                return Err(failure);
            }
        }
        // Registry sync from worker truth: each ack reports the
        // worker's own post-deletion count, and the registry *assigns*
        // it (never subtracts). A rejoined worker whose `Hello` already
        // reflected the deletion and whose serial cache made the
        // re-application a no-op therefore cannot be double-shrunk.
        for (id, n) in acked_sizes {
            if let Some(conn) = self.conns[id].as_mut() {
                conn.num_samples = n;
            }
        }
        Ok(())
    }

    fn distill_round(
        &mut self,
        round: usize,
        seed: u64,
        global: &[f32],
    ) -> Vec<Result<ClientUpdate, TransportError>> {
        // cfg travels for frame uniformity but is ignored by distill
        // workers (the job shipped it already).
        self.round_buffered(&RoundSpec {
            mode: RoundMode::Distill,
            round: round as u64,
            seed,
            // Distill assignments derive their nonce the same way
            // training rounds do; workers echo whatever the
            // `RoundAssign` carried, so both sides agree by
            // construction.
            nonce: goldfish_fed::transport::round_nonce(seed, round),
            cfg: &goldfish_fed::trainer::TrainConfig::default(),
            global,
        })
    }
}

impl ServeTransport for TcpTransport {
    fn client_sizes(&self) -> Vec<usize> {
        self.conns
            .iter()
            .map(|c| c.as_ref().map(|c| c.num_samples).unwrap_or(0))
            .collect()
    }

    fn stage_removals(&mut self, requests: &[UnlearnRequest], serial: u64) {
        self.staged = requests.to_vec();
        self.staged_serial = serial;
    }

    fn admit_reconnects(&mut self, round: usize, global: &[f32]) -> usize {
        let Some(listener) = self.listener.as_ref() else {
            return 0;
        };
        // Drain whatever is queued on the listener without blocking the
        // round loop; each candidate then gets a normal (blocking,
        // deadline-bounded) handshake.
        if listener.set_nonblocking(true).is_err() {
            return 0;
        }
        let mut admitted = 0;
        loop {
            let stream = match self.listener.as_ref().unwrap().accept() {
                Ok((stream, _)) => stream,
                Err(_) => break, // WouldBlock or a transient accept error
            };
            if self.admit_one(stream, round, global).is_some() {
                admitted += 1;
            }
        }
        if let Some(listener) = self.listener.as_ref() {
            listener.set_nonblocking(false).ok();
        }
        admitted
    }

    fn set_read_timeout(&mut self, timeout: Duration) {
        self.cfg.read_timeout = timeout;
        for conn in self.conns.iter_mut().flatten() {
            conn.stream.set_read_timeout(Some(timeout)).ok();
        }
    }

    fn shutdown(&mut self) {
        // Best effort: a worker that already vanished can't be told.
        for conn in self.conns.iter_mut().flatten() {
            let _ = write_frame(&mut conn.stream, &Msg::Shutdown, &self.cfg.limits);
        }
    }

    fn local_eval(
        &mut self,
        round: usize,
        global: &[f32],
    ) -> Vec<Result<LocalEval, TransportError>> {
        if let Err(e) =
            encode_eval_request_into(&mut self.bcast, round as u64, global, &self.cfg.limits)
        {
            return self
                .live_clients()
                .into_iter()
                .map(|id| Err(map_wire_error(id, e.clone())))
                .collect();
        }
        let TcpTransport {
            conns,
            cfg,
            stats,
            bcast,
            state_pool,
            ..
        } = self;
        let state_pool: &Mutex<Vec<Vec<f32>>> = state_pool;
        let mut evals: Vec<(usize, Result<LocalEval, TransportError>)> = Vec::new();
        Self::broadcast(conns, stats, cfg.limits, state_pool, bcast, |id, reply| {
            let outcome = reply.and_then(|r| match r {
                Reply::Eval { accuracy, mse } => Ok(LocalEval {
                    client_id: id,
                    accuracy,
                    mse,
                }),
                Reply::Update { state, .. } => {
                    state_pool
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(state);
                    Err(TransportError::Protocol {
                        client_id: id,
                        reason: "expected an Eval reply, got a round result".into(),
                    })
                }
                Reply::Ack | Reply::UnlearnAck { .. } => Err(TransportError::Protocol {
                    client_id: id,
                    reason: "expected an Eval reply, got an acknowledgement".into(),
                }),
            });
            evals.push((id, outcome));
        });
        self.drop_failed_and_sort(&mut evals);
        evals.into_iter().map(|(_, e)| e).collect()
    }

    fn wire_stats(&self) -> WireStats {
        self.stats
    }
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TcpTransport({} live of {} slots, {} B out, {} B in)",
            RoundTransport::num_clients(self),
            self.conns.len(),
            self.stats.bytes_sent,
            self.stats.bytes_received
        )
    }
}

/// Convenience: binds `addr` (e.g. `127.0.0.1:0`) and returns the
/// listener plus its resolved local address string.
///
/// # Errors
///
/// [`WireError::Io`] when binding fails.
pub fn bind(addr: &str) -> Result<(TcpListener, String), WireError> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?.to_string();
    Ok((listener, local))
}

// Keep the module's error text helpers exercised even in non-network
// test builds.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_error_mapping() {
        let e = map_wire_error(
            3,
            WireError::Io {
                kind: std::io::ErrorKind::TimedOut,
                detail: "t".into(),
            },
        );
        assert_eq!(e, TransportError::Timeout { client_id: 3 });
        let e = map_wire_error(
            1,
            WireError::Io {
                kind: std::io::ErrorKind::ConnectionReset,
                detail: "gone".into(),
            },
        );
        assert!(matches!(
            e,
            TransportError::Disconnected { client_id: 1, .. }
        ));
        let e = map_wire_error(0, WireError::UnknownKind(9));
        assert!(matches!(e, TransportError::Protocol { .. }));
        let _ = crate::wire::describe_err(&Msg::Err {
            code: 1,
            detail: "x".into(),
        });
    }
}
