//! The coordinator-side TCP transport.
//!
//! One blocking socket per worker (thread-per-connection: each round
//! fans its frame exchange out over a `std::thread::scope`, so the pool
//! is bounded by the live-connection count), per-client read timeouts
//! for liveness, and byte counters for the wire-cost benchmarks. A
//! client that times out, disconnects, or answers out of protocol is
//! dropped from the live set and reported as a typed
//! [`TransportError`]; the round driver then re-rounds over the
//! survivors (see `goldfish_fed::transport::collect_round`).

use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use goldfish_core::transport::{DistillTransport, UnlearnJob};
use goldfish_fed::aggregate::ClientUpdate;
use goldfish_fed::transport::{RoundTransport, TrainAssign, TransportError};

use crate::queue::UnlearnRequest;
use crate::transport::{LocalEval, ServeTransport, WireStats};
use crate::wire::{
    encode_frame, err_code, read_frame, write_frame, FrameLimits, Msg, RoundMode, WireError,
};

/// Socket policy of a [`TcpTransport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpConfig {
    /// Frame-size limits (both directions).
    pub limits: FrameLimits,
    /// Per-reply read deadline; a worker exceeding it is dropped as a
    /// straggler.
    pub read_timeout: Duration,
}

impl Default for TcpConfig {
    /// 30 s replies — generous for CI boxes under load; benchmarks and
    /// tests that probe straggler handling shrink it.
    fn default() -> Self {
        TcpConfig {
            limits: FrameLimits::default(),
            read_timeout: Duration::from_secs(30),
        }
    }
}

struct Conn {
    stream: TcpStream,
    num_samples: usize,
}

/// The networked [`ServeTransport`]: a registry of worker connections
/// keyed by client id, accepting the round-loop contracts of
/// `goldfish_fed` and `goldfish_core` over the wire protocol.
pub struct TcpTransport {
    conns: Vec<Option<Conn>>,
    cfg: TcpConfig,
    staged: Vec<UnlearnRequest>,
    stats: WireStats,
}

impl TcpTransport {
    /// Accepts `expected` workers on `listener`. Each must open with a
    /// valid `Hello` (unique client id below `expected`, matching
    /// `state_len`); invalid peers get a typed `Err` frame and are
    /// dropped without consuming a slot.
    ///
    /// # Errors
    ///
    /// [`WireError`] on listener failures.
    pub fn accept(
        listener: &TcpListener,
        expected: usize,
        state_len: usize,
        cfg: TcpConfig,
    ) -> Result<TcpTransport, WireError> {
        let mut conns: Vec<Option<Conn>> = (0..expected).map(|_| None).collect();
        let mut registered = 0;
        while registered < expected {
            let (mut stream, _) = listener.accept()?;
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(Some(cfg.read_timeout)).ok();
            let hello = match read_frame(&mut stream, &cfg.limits) {
                Ok((msg, _)) => msg,
                Err(_) => continue, // bad opener; next candidate
            };
            let Msg::Hello {
                client_id,
                state_len: worker_len,
                num_samples,
            } = hello
            else {
                let _ = write_frame(
                    &mut stream,
                    &Msg::Err {
                        code: err_code::BAD_REQUEST,
                        detail: "expected Hello".into(),
                    },
                    &cfg.limits,
                );
                continue;
            };
            let id = client_id as usize;
            if id >= expected || conns[id].is_some() {
                let _ = write_frame(
                    &mut stream,
                    &Msg::Err {
                        code: err_code::BAD_REQUEST,
                        detail: format!("client id {id} invalid or already registered"),
                    },
                    &cfg.limits,
                );
                continue;
            }
            if worker_len as usize != state_len {
                let _ = write_frame(
                    &mut stream,
                    &Msg::Err {
                        code: err_code::BAD_STATE_LEN,
                        detail: format!("model has {state_len} params, worker says {worker_len}"),
                    },
                    &cfg.limits,
                );
                continue;
            }
            write_frame(
                &mut stream,
                &Msg::Capabilities {
                    max_payload: cfg.limits.max_payload as u64,
                    state_len: state_len as u64,
                },
                &cfg.limits,
            )?;
            conns[id] = Some(Conn {
                stream,
                num_samples: num_samples as usize,
            });
            registered += 1;
        }
        Ok(TcpTransport {
            conns,
            cfg,
            staged: Vec::new(),
            stats: WireStats::default(),
        })
    }

    /// Live client ids, ascending.
    pub fn live_clients(&self) -> Vec<usize> {
        self.conns
            .iter()
            .enumerate()
            .filter_map(|(id, c)| c.as_ref().map(|_| id))
            .collect()
    }

    /// Broadcasts one message to every live worker and reads one reply
    /// each, concurrently (one thread per connection). The frame is
    /// **encoded once** and the bytes shared across connections — round
    /// assignments are identical per client, so per-worker
    /// re-serialization of the (large) global-state payload would be
    /// pure waste. Failed connections are dropped from the live set and
    /// reported as errors.
    fn broadcast(
        &mut self,
        msg: &Msg,
        parse: impl Fn(usize, Msg) -> Result<ClientUpdateOrMsg, TransportError> + Sync,
    ) -> Vec<Result<ClientUpdateOrMsg, TransportError>> {
        match encode_frame(msg, &self.cfg.limits) {
            Ok(frame) => {
                let frame = std::sync::Arc::new(frame);
                let frames: Vec<Option<std::sync::Arc<Vec<u8>>>> = self
                    .conns
                    .iter()
                    .map(|c| c.as_ref().map(|_| std::sync::Arc::clone(&frame)))
                    .collect();
                self.exchange(frames, parse)
            }
            Err(e) => self
                .live_clients()
                .into_iter()
                .map(|id| Err(map_wire_error(id, e.clone())))
                .collect(),
        }
    }

    /// Sends `frames[id]` (one pre-encoded frame per live connection) and
    /// reads one reply each, concurrently. The engine behind
    /// [`TcpTransport::broadcast`] and the per-client `UnlearnAssign`
    /// fan-out.
    fn exchange(
        &mut self,
        frames: Vec<Option<std::sync::Arc<Vec<u8>>>>,
        parse: impl Fn(usize, Msg) -> Result<ClientUpdateOrMsg, TransportError> + Sync,
    ) -> Vec<Result<ClientUpdateOrMsg, TransportError>> {
        use std::io::Write;
        let limits = self.cfg.limits;
        let mut outcomes: Vec<(usize, Result<ClientUpdateOrMsg, TransportError>, u64, u64)> =
            Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for ((id, slot), frame) in self.conns.iter_mut().enumerate().zip(&frames) {
                let (Some(conn), Some(frame)) = (slot.as_mut(), frame) else {
                    continue;
                };
                let parse = &parse;
                handles.push(scope.spawn(move || {
                    let mut sent = 0u64;
                    let mut received = 0u64;
                    let result = (|| {
                        conn.stream
                            .write_all(frame)
                            .and_then(|()| conn.stream.flush())
                            .map_err(|e| map_wire_error(id, WireError::from(e)))?;
                        sent = frame.len() as u64;
                        let (reply, n) = read_frame(&mut conn.stream, &limits)
                            .map_err(|e| map_wire_error(id, e))?;
                        received = n as u64;
                        if let Msg::Err { code, detail } = reply {
                            return Err(TransportError::Protocol {
                                client_id: id,
                                reason: format!("worker error code {code}: {detail}"),
                            });
                        }
                        parse(id, reply)
                    })();
                    (id, result, sent, received)
                }));
            }
            for h in handles {
                outcomes.push(h.join().expect("connection thread panicked"));
            }
        });
        outcomes.sort_by_key(|(id, ..)| *id);
        let mut results = Vec::with_capacity(outcomes.len());
        for (id, result, sent, received) in outcomes {
            self.stats.bytes_sent += sent;
            self.stats.bytes_received += received;
            if result.is_err() {
                // Straggler / lost / misbehaving worker: drop it.
                self.conns[id] = None;
            }
            results.push(result);
        }
        results
    }
}

/// A parsed worker reply: a round update, a local evaluation, or an
/// acknowledgement from the given client.
enum ClientUpdateOrMsg {
    Update(ClientUpdate),
    Eval(LocalEval),
    Ack(usize),
}

fn map_wire_error(client_id: usize, e: WireError) -> TransportError {
    match e {
        WireError::Io { kind, detail } => match kind {
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                TransportError::Timeout { client_id }
            }
            _ => TransportError::Disconnected {
                client_id,
                reason: detail,
            },
        },
        other => TransportError::Protocol {
            client_id,
            reason: other.to_string(),
        },
    }
}

fn expect_update(
    id: usize,
    reply: Msg,
    want_round: u64,
    distill: bool,
) -> Result<ClientUpdateOrMsg, TransportError> {
    let (round, client_id, weight, state, got_distill) = match reply {
        Msg::Update {
            round,
            client_id,
            weight,
            state,
        } => (round, client_id, weight, state, false),
        Msg::UnlearnResult {
            round,
            client_id,
            weight,
            state,
        } => (round, client_id, weight, state, true),
        other => {
            return Err(TransportError::Protocol {
                client_id: id,
                reason: format!("expected a round result, got {}", other.name()),
            })
        }
    };
    if got_distill != distill || round != want_round || client_id as usize != id {
        return Err(TransportError::Protocol {
            client_id: id,
            reason: format!(
                "reply mismatch: round {round} (want {want_round}), client {client_id} (want {id}), distill {got_distill} (want {distill})"
            ),
        });
    }
    Ok(ClientUpdateOrMsg::Update(ClientUpdate {
        client_id: id,
        state,
        num_samples: weight as usize,
        server_mse: None,
    }))
}

fn unwrap_update(
    r: Result<ClientUpdateOrMsg, TransportError>,
) -> Result<ClientUpdate, TransportError> {
    r.map(|v| match v {
        ClientUpdateOrMsg::Update(u) => u,
        _ => unreachable!("parser produced a non-update"),
    })
}

impl RoundTransport for TcpTransport {
    fn num_clients(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    fn train_round(
        &mut self,
        assign: &TrainAssign<'_>,
    ) -> Vec<Result<ClientUpdate, TransportError>> {
        let round = assign.round as u64;
        let msg = Msg::RoundAssign {
            mode: RoundMode::Train,
            round,
            seed: assign.seed,
            cfg: *assign.cfg,
            global: assign.global.to_vec(),
        };
        self.broadcast(&msg, |id, reply| expect_update(id, reply, round, false))
            .into_iter()
            .map(unwrap_update)
            .collect()
    }
}

impl DistillTransport for TcpTransport {
    fn num_clients(&self) -> usize {
        RoundTransport::num_clients(self)
    }

    fn begin_unlearn(&mut self, job: &UnlearnJob, teacher: &[f32]) -> Result<(), TransportError> {
        if job.hard.is_none() {
            return Err(TransportError::Unsupported {
                reason: "custom hard losses cannot be shipped to workers".into(),
            });
        }
        let staged = std::mem::take(&mut self.staged);
        // Before any frame goes out: every client whose own data is
        // being deleted must be connected. Workers apply deletions
        // permanently on receipt, so discovering a missing requester
        // *after* the fan-out would leave other requesters' datasets
        // shrunk while the coordinator aborts and keeps serving the
        // pre-request model.
        for req in &staged {
            if !req.removed.is_empty() && self.conns.get(req.client_id).is_none_or(|c| c.is_none())
            {
                return Err(TransportError::Disconnected {
                    client_id: req.client_id,
                    reason: "deletion-requesting client is not connected".into(),
                });
            }
        }
        // Frames differ per client only in the (tiny) removed-index
        // list; encode each against the live set.
        let mut frames: Vec<Option<std::sync::Arc<Vec<u8>>>> = Vec::with_capacity(self.conns.len());
        for (id, slot) in self.conns.iter().enumerate() {
            if slot.is_none() {
                frames.push(None);
                continue;
            }
            let removed: Vec<u64> = staged
                .iter()
                .find(|r| r.client_id == id)
                .map(|r| r.removed.iter().map(|&i| i as u64).collect())
                .unwrap_or_default();
            let msg = Msg::UnlearnAssign {
                job: *job,
                removed,
                teacher: teacher.to_vec(),
            };
            let frame = encode_frame(&msg, &self.cfg.limits).map_err(|e| map_wire_error(id, e))?;
            frames.push(Some(std::sync::Arc::new(frame)));
        }
        let results = self.exchange(frames, |id, reply| match reply {
            Msg::Ack => Ok(ClientUpdateOrMsg::Ack(id)),
            other => Err(TransportError::Protocol {
                client_id: id,
                reason: format!("expected an UnlearnAssign ack, got {}", other.name()),
            }),
        });
        if results.iter().all(|r| r.is_err()) {
            return Err(TransportError::NoLiveClients);
        }
        // A client whose *own* deletion request did not land must fail
        // the whole pass — otherwise the coordinator would report the
        // request as served while the data survives. (Intact clients
        // that dropped are mere stragglers; the survivors distill on.)
        let acked: Vec<usize> = results
            .iter()
            .filter_map(|r| match r {
                Ok(ClientUpdateOrMsg::Ack(id)) => Some(*id),
                _ => None,
            })
            .collect();
        for req in &staged {
            if req.removed.is_empty() {
                continue;
            }
            if !acked.contains(&req.client_id) {
                let failure = results
                    .iter()
                    .find_map(|r| match r {
                        Err(e) if e.client_id() == Some(req.client_id) => Some(e.clone()),
                        _ => None,
                    })
                    .unwrap_or(TransportError::Disconnected {
                        client_id: req.client_id,
                        reason: "deletion-requesting client is not connected".into(),
                    });
                return Err(failure);
            }
            // The worker applied the deletion permanently; keep the
            // registry's sample counts (request validation) in sync.
            if let Some(conn) = self.conns[req.client_id].as_mut() {
                conn.num_samples = conn.num_samples.saturating_sub(req.removed.len());
            }
        }
        Ok(())
    }

    fn distill_round(
        &mut self,
        round: usize,
        seed: u64,
        global: &[f32],
    ) -> Vec<Result<ClientUpdate, TransportError>> {
        let round = round as u64;
        // cfg travels for frame uniformity but is ignored by distill
        // workers (the job shipped it already).
        let msg = Msg::RoundAssign {
            mode: RoundMode::Distill,
            round,
            seed,
            cfg: goldfish_fed::trainer::TrainConfig::default(),
            global: global.to_vec(),
        };
        self.broadcast(&msg, |id, reply| expect_update(id, reply, round, true))
            .into_iter()
            .map(unwrap_update)
            .collect()
    }
}

impl ServeTransport for TcpTransport {
    fn client_sizes(&self) -> Vec<usize> {
        self.conns
            .iter()
            .map(|c| c.as_ref().map(|c| c.num_samples).unwrap_or(0))
            .collect()
    }

    fn stage_removals(&mut self, requests: &[UnlearnRequest]) {
        self.staged = requests.to_vec();
    }

    fn local_eval(
        &mut self,
        round: usize,
        global: &[f32],
    ) -> Vec<Result<LocalEval, TransportError>> {
        let round = round as u64;
        let msg = Msg::Eval {
            round,
            accuracy: 0.0,
            mse: 0.0,
            global: global.to_vec(),
        };
        self.broadcast(&msg, |id, reply| match reply {
            Msg::Eval { accuracy, mse, .. } => Ok(ClientUpdateOrMsg::Eval(LocalEval {
                client_id: id,
                accuracy,
                mse,
            })),
            other => Err(TransportError::Protocol {
                client_id: id,
                reason: format!("expected an Eval reply, got {}", other.name()),
            }),
        })
        .into_iter()
        .map(|r| {
            r.map(|v| match v {
                ClientUpdateOrMsg::Eval(e) => e,
                _ => unreachable!("parser produced a non-eval"),
            })
        })
        .collect()
    }

    fn wire_stats(&self) -> WireStats {
        self.stats
    }
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TcpTransport({} live of {} slots, {} B out, {} B in)",
            RoundTransport::num_clients(self),
            self.conns.len(),
            self.stats.bytes_sent,
            self.stats.bytes_received
        )
    }
}

/// Convenience: binds `addr` (e.g. `127.0.0.1:0`) and returns the
/// listener plus its resolved local address string.
///
/// # Errors
///
/// [`WireError::Io`] when binding fails.
pub fn bind(addr: &str) -> Result<(TcpListener, String), WireError> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?.to_string();
    Ok((listener, local))
}

// Keep the module's error text helpers exercised even in non-network
// test builds.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_error_mapping() {
        let e = map_wire_error(
            3,
            WireError::Io {
                kind: std::io::ErrorKind::TimedOut,
                detail: "t".into(),
            },
        );
        assert_eq!(e, TransportError::Timeout { client_id: 3 });
        let e = map_wire_error(
            1,
            WireError::Io {
                kind: std::io::ErrorKind::ConnectionReset,
                detail: "gone".into(),
            },
        );
        assert!(matches!(
            e,
            TransportError::Disconnected { client_id: 1, .. }
        ));
        let e = map_wire_error(0, WireError::UnknownKind(9));
        assert!(matches!(e, TransportError::Protocol { .. }));
        let _ = crate::wire::describe_err(&Msg::Err {
            code: 1,
            detail: "x".into(),
        });
    }
}
