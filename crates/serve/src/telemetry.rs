//! The coordinator's observability surface: one shared registry of
//! preregistered counters/gauges/histograms plus the structured event
//! trace, wired through the round loop, the TCP transport, the
//! unlearning queue and the durable store.
//!
//! Three rules (inherited from `goldfish_telemetry` and pinned by
//! `tests/alloc_free_round.rs` and the serve identity suites):
//!
//! 1. **Zero allocation after registration.** Every metric is created
//!    here, once; hot-path updates are relaxed atomic ops.
//! 2. **Off the numeric path.** Telemetry observes rounds, it never
//!    feeds back into them — all bitwise identity gates pass with
//!    telemetry enabled.
//! 3. **Injected time.** Every span duration and trace timestamp comes
//!    from the [`Clock`] handed in at construction, so tests drive a
//!    manual clock and production pays one monotonic read per span
//!    edge.
//!
//! Subsystems that exist before (or without) a coordinator — the TCP
//! transport counts handshake bytes from `accept` on — start with
//! *detached* handles ([`WireTelemetry::default`]) and join the shared
//! registry later via `transfer_into`, so no byte is ever lost to
//! wiring order.

use std::sync::Arc;

use goldfish_fed::transport::RoundMetrics;
use goldfish_telemetry::clock::Clock;
use goldfish_telemetry::events::Trace;
use goldfish_telemetry::export;
use goldfish_telemetry::registry::{Counter, Gauge, Histogram, Registry};

use crate::transport::WireStats;

/// Every metric the serving stack exports, preregistered in one
/// registry. Construct once per daemon (wrapped in an [`Arc`] so the
/// admin endpoint, the coordinator and the transport share it) and
/// hand it to [`crate::coordinator::CoordinatorConfig::with_telemetry`].
#[derive(Debug)]
pub struct ServeTelemetry {
    /// The registry behind every handle below (what the admin endpoint
    /// exports).
    pub registry: Registry,
    /// The time source for every span and trace timestamp.
    pub clock: Clock,
    /// The structured event ring (disabled unless the daemon passed
    /// `--trace-out`).
    pub trace: Trace,
    /// The round-loop metrics (`goldfish_fed`'s instrumentation),
    /// registered into the shared registry.
    pub round: RoundMetrics,
    /// Frame bytes written to workers (handshake, broadcast, control
    /// and shutdown frames included).
    pub wire_sent_bytes: Counter,
    /// Frame bytes read from workers (handshake and update frames).
    pub wire_received_bytes: Counter,
    /// Encode-once broadcast serialization time per round.
    pub broadcast_encode_seconds: Histogram,
    /// Time spent blocked in the readiness poller per wakeup.
    pub poll_wait_seconds: Histogram,
    /// Wall time from an assignment frame's flush to its reply's last
    /// byte (per completed frame read).
    pub frame_read_seconds: Histogram,
    /// End-to-end wall time of one training round (hot path).
    pub round_seconds: Histogram,
    /// WAL append+fsync time per accepted unlearning submit.
    pub wal_append_seconds: Histogram,
    /// Checkpoint write+fsync+rename time per commit.
    pub checkpoint_fsync_seconds: Histogram,
    /// End-to-end wall time of one unlearning drain batch.
    pub drain_seconds: Histogram,
    /// Current unlearning-queue depth (distinct clients pending).
    pub unlearn_queue_depth: Gauge,
    /// Deletion requests accepted into the queue, lifetime.
    pub unlearn_submitted_total: Counter,
    /// Submits merged into an existing pending request (same client).
    pub unlearn_merged_total: Counter,
    /// Unlearning requests served across all drains.
    pub unlearn_requests_served_total: Counter,
    /// Drain batches executed.
    pub drain_batches_total: Counter,
    /// Requests served by the most recent drain.
    pub drain_last_batch_requests: Gauge,
    /// Shard retrain tasks completed across all shard drains.
    pub shard_tasks_total: Counter,
    /// Shard checkpoints reconstructed from XOR parity (owner straggled).
    pub shard_reconstructions_total: Counter,
    /// Shard tasks committed via the degraded (delegated) path.
    pub shard_degraded_drains_total: Counter,
    /// Shard tasks re-enqueued because the drain deadline expired.
    pub shard_tasks_requeued_total: Counter,
    /// Shard retrain tasks currently pending in the shard queue.
    pub shard_tasks_pending: Gauge,
}

impl ServeTelemetry {
    /// Builds the full metric catalog in a fresh registry. The only
    /// allocating call in this module — everything after is atomics.
    pub fn new(clock: Clock, trace: Trace) -> ServeTelemetry {
        let registry = Registry::new();
        let round = RoundMetrics::register(&registry, clock.clone(), trace.clone());
        ServeTelemetry {
            round,
            wire_sent_bytes: registry.counter(
                "goldfish_wire_sent_bytes_total",
                "Frame bytes written to workers (all frame kinds)",
            ),
            wire_received_bytes: registry.counter(
                "goldfish_wire_received_bytes_total",
                "Frame bytes read from workers (all frame kinds)",
            ),
            broadcast_encode_seconds: registry.histogram(
                "goldfish_broadcast_encode_seconds",
                "Encode-once broadcast serialization time per round",
            ),
            poll_wait_seconds: registry.histogram(
                "goldfish_poll_wait_seconds",
                "Time blocked in the readiness poller per wakeup",
            ),
            frame_read_seconds: registry.histogram(
                "goldfish_frame_read_seconds",
                "Request-flush-to-reply wall time per completed frame read",
            ),
            round_seconds: registry.histogram(
                "goldfish_round_seconds",
                "End-to-end wall time of one training round",
            ),
            wal_append_seconds: registry.histogram(
                "goldfish_wal_append_seconds",
                "WAL append+fsync time per accepted unlearning submit",
            ),
            checkpoint_fsync_seconds: registry.histogram(
                "goldfish_checkpoint_fsync_seconds",
                "Checkpoint write+fsync+rename time per commit",
            ),
            drain_seconds: registry.histogram(
                "goldfish_drain_seconds",
                "End-to-end wall time of one unlearning drain batch",
            ),
            unlearn_queue_depth: registry.gauge(
                "goldfish_unlearn_queue_depth",
                "Distinct clients with a pending deletion request",
            ),
            unlearn_submitted_total: registry.counter(
                "goldfish_unlearn_submitted_total",
                "Deletion requests accepted into the queue",
            ),
            unlearn_merged_total: registry.counter(
                "goldfish_unlearn_merged_total",
                "Submits merged into an existing pending request",
            ),
            unlearn_requests_served_total: registry.counter(
                "goldfish_unlearn_requests_served_total",
                "Unlearning requests served across all drains",
            ),
            drain_batches_total: registry.counter(
                "goldfish_drain_batches_total",
                "Unlearning drain batches executed",
            ),
            drain_last_batch_requests: registry.gauge(
                "goldfish_drain_last_batch_requests",
                "Requests served by the most recent drain",
            ),
            shard_tasks_total: registry.counter(
                "goldfish_shard_tasks_total",
                "Shard retrain tasks completed across all shard drains",
            ),
            shard_reconstructions_total: registry.counter(
                "goldfish_shard_reconstructions_total",
                "Shard checkpoints reconstructed from XOR parity",
            ),
            shard_degraded_drains_total: registry.counter(
                "goldfish_shard_degraded_drains_total",
                "Shard tasks committed via the degraded (delegated) path",
            ),
            shard_tasks_requeued_total: registry.counter(
                "goldfish_shard_tasks_requeued_total",
                "Shard tasks re-enqueued past an expired drain deadline",
            ),
            shard_tasks_pending: registry.gauge(
                "goldfish_shard_tasks_pending",
                "Shard retrain tasks currently pending",
            ),
            registry,
            clock,
            trace,
        }
    }

    /// A detached catalog on the system clock with tracing off — what a
    /// coordinator uses when no telemetry was configured. Metrics still
    /// count (accessors like `drain_stats()` read them) but nothing is
    /// exported.
    pub fn disabled() -> Arc<ServeTelemetry> {
        Arc::new(ServeTelemetry::new(Clock::system(), Trace::disabled()))
    }

    /// Nanoseconds since the telemetry clock's epoch (daemon start).
    pub fn uptime_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// The Prometheus exposition of the registry.
    pub fn prometheus_text(&self) -> String {
        export::prometheus_text(&self.registry)
    }

    /// The JSON snapshot of the registry.
    pub fn json_snapshot(&self) -> String {
        export::json_snapshot(&self.registry, self.uptime_nanos(), self.trace.dropped())
    }

    /// The human-readable status table (`goldfish-coordinator --status`).
    pub fn status_table(&self) -> String {
        export::status_table(&self.registry, self.uptime_nanos())
    }
}

/// The wire-side handle bundle a [`crate::tcp::TcpTransport`] carries.
/// `Default` is fully detached — the transport counts every handshake
/// byte from `accept` on even before a coordinator (and its registry)
/// exists; [`WireTelemetry::attach`] later moves those counts into the
/// shared cells without losing a byte.
#[derive(Debug, Clone, Default)]
pub struct WireTelemetry {
    /// Span clock for poll/encode/frame timings.
    pub clock: Clock,
    /// Frame bytes written (all frame kinds, fan-out and control).
    pub sent_bytes: Counter,
    /// Frame bytes read (all frame kinds).
    pub received_bytes: Counter,
    /// Encode-once broadcast serialization time.
    pub broadcast_encode_seconds: Histogram,
    /// Time blocked in the readiness poller.
    pub poll_wait_seconds: Histogram,
    /// Request-flush-to-reply time per completed frame read.
    pub frame_read_seconds: Histogram,
}

impl WireTelemetry {
    /// Joins the shared catalog: byte counts accumulated so far move
    /// into the registered cells, and the span histograms/clock rebind
    /// to the shared ones.
    pub fn attach(&mut self, t: &ServeTelemetry) {
        self.clock = t.clock.clone();
        self.sent_bytes.transfer_into(&t.wire_sent_bytes);
        self.received_bytes.transfer_into(&t.wire_received_bytes);
        self.broadcast_encode_seconds = t.broadcast_encode_seconds.clone();
        self.poll_wait_seconds = t.poll_wait_seconds.clone();
        self.frame_read_seconds = t.frame_read_seconds.clone();
    }

    /// The byte counters as the legacy [`WireStats`] snapshot.
    pub fn wire_stats(&self) -> WireStats {
        WireStats {
            bytes_sent: self.sent_bytes.get(),
            bytes_received: self.received_bytes.get(),
        }
    }
}

/// The unlearning queue's handle bundle. `Default` is detached (the
/// queue still counts; nothing exports).
#[derive(Debug, Clone, Default)]
pub struct QueueTelemetry {
    /// Current queue depth (distinct clients pending).
    pub depth: Gauge,
    /// Requests accepted, lifetime.
    pub submitted_total: Counter,
    /// Submits merged into an existing pending request.
    pub merged_total: Counter,
    /// The structured event ring (`unlearn_queued` events).
    pub trace: Trace,
}

impl QueueTelemetry {
    /// The shared catalog's queue handles.
    pub fn from_serve(t: &ServeTelemetry) -> QueueTelemetry {
        QueueTelemetry {
            depth: t.unlearn_queue_depth.clone(),
            submitted_total: t.unlearn_submitted_total.clone(),
            merged_total: t.unlearn_merged_total.clone(),
            trace: t.trace.clone(),
        }
    }
}

/// The durable store's handle bundle: fsync spans. `Default` is
/// detached.
#[derive(Debug, Clone, Default)]
pub struct DurabilityTelemetry {
    /// Span clock.
    pub clock: Clock,
    /// WAL append+fsync time per accepted submit.
    pub wal_append_seconds: Histogram,
    /// Checkpoint write+fsync+rename time per commit.
    pub checkpoint_fsync_seconds: Histogram,
}

impl DurabilityTelemetry {
    /// The shared catalog's durability handles.
    pub fn from_serve(t: &ServeTelemetry) -> DurabilityTelemetry {
        DurabilityTelemetry {
            clock: t.clock.clone(),
            wal_append_seconds: t.wal_append_seconds.clone(),
            checkpoint_fsync_seconds: t.checkpoint_fsync_seconds.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_registers_every_family_once() {
        let t = ServeTelemetry::new(Clock::manual(), Trace::disabled());
        let names: Vec<String> = t
            .registry
            .metrics()
            .iter()
            .map(|m| m.name().to_string())
            .collect();
        for want in [
            "goldfish_rounds_total",
            "goldfish_wire_sent_bytes_total",
            "goldfish_wire_received_bytes_total",
            "goldfish_round_seconds",
            "goldfish_unlearn_queue_depth",
            "goldfish_checkpoint_fsync_seconds",
            "goldfish_shard_tasks_total",
            "goldfish_shard_reconstructions_total",
            "goldfish_shard_degraded_drains_total",
            "goldfish_shard_tasks_requeued_total",
            "goldfish_shard_tasks_pending",
        ] {
            assert!(
                names.iter().any(|n| n == want),
                "missing {want} in {names:?}"
            );
        }
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate registrations");
    }

    #[test]
    fn wire_telemetry_attach_carries_preregistration_bytes() {
        let mut wire = WireTelemetry::default();
        wire.sent_bytes.add(100);
        wire.received_bytes.add(40);
        let t = ServeTelemetry::new(Clock::manual(), Trace::disabled());
        wire.attach(&t);
        assert_eq!(t.wire_sent_bytes.get(), 100);
        assert_eq!(t.wire_received_bytes.get(), 40);
        wire.sent_bytes.add(1); // now writes through
        assert_eq!(t.wire_sent_bytes.get(), 101);
        assert_eq!(wire.wire_stats().total(), 141);
    }
}
