//! The serve-level transport contract and its in-process implementation.
//!
//! [`ServeTransport`] is what a [`crate::coordinator::Coordinator`]
//! drives: the federated-round contract
//! ([`goldfish_fed::transport::RoundTransport`]) plus the distillation
//! contract ([`goldfish_core::transport::DistillTransport`]) plus the
//! serve-specific operations (staging deletion requests, local
//! evaluation, wire accounting). Two implementations exist:
//!
//! * [`LoopbackTransport`] (here) — clients are datasets in this process;
//!   execution delegates to the same loopback executors the library's
//!   `Federation`/`GoldfishUnlearning` use, so a loopback run **is** the
//!   existing in-process path,
//! * [`crate::tcp::TcpTransport`] — clients are remote worker daemons
//!   behind sockets; bitwise-identical to loopback because both sides
//!   run the same per-client code against losslessly round-tripped
//!   states.

use goldfish_core::transport::{DistillTransport, LoopbackDistill, UnlearnJob};
use goldfish_core::ClientSplit;
use goldfish_data::Dataset;
use goldfish_fed::aggregate::ClientUpdate;
use goldfish_fed::trainer::{train_local_hot, TrainWorkspace};
use goldfish_fed::transport::{
    client_seed, LoopbackClients, RoundTransport, StreamedUpdate, TrainAssign, TransportError,
    UpdateSink,
};
use goldfish_fed::{eval, pool, ModelFactory};
use goldfish_nn::loss::CrossEntropy;
use goldfish_nn::optim::FusedSgd;
use goldfish_nn::Network;

use crate::queue::UnlearnRequest;

/// Wire-traffic counters of a transport (zero for loopback).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Total frame bytes written to peers.
    pub bytes_sent: u64,
    /// Total frame bytes read from peers.
    pub bytes_received: u64,
}

impl WireStats {
    /// Sum of both directions.
    pub fn total(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }
}

/// One client's local evaluation of a state vector (the `Eval` exchange).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalEval {
    /// The evaluating client.
    pub client_id: usize,
    /// Classification accuracy on the client's local data.
    pub accuracy: f64,
    /// Mean squared error on the client's local data.
    pub mse: f64,
}

/// Everything a coordinator needs from a transport.
pub trait ServeTransport: RoundTransport + DistillTransport {
    /// Local dataset sizes by client id (`0` for dead clients) — used to
    /// validate deletion requests before they are queued.
    fn client_sizes(&self) -> Vec<usize>;

    /// Stages the drained deletion requests for the next
    /// [`DistillTransport::begin_unlearn`]: each listed client will split
    /// its data by the given indices; unlisted clients stay intact.
    /// `serial` is the coordinator-wide drain-batch serial — remote
    /// transports ship it with the `UnlearnAssign` so workers apply a
    /// deletion exactly once even when a recovered coordinator re-sends
    /// the batch.
    fn stage_removals(&mut self, requests: &[UnlearnRequest], serial: u64);

    /// Recovery path: re-applies *already committed* deletions (from
    /// the audit chain, in chain order) to the transport's view of the
    /// client datasets. Loopback shrinks its owned datasets; remote
    /// transports do nothing (the workers are authoritative for their
    /// own data and apply deletions idempotently by serial).
    fn apply_removals(&mut self, requests: &[UnlearnRequest]) {
        let _ = requests;
    }

    /// Gives the transport a chance to re-admit reconnecting workers
    /// between rounds (`round` = the round about to run, `global` = the
    /// state a resume digest is computed over). Returns how many
    /// workers were re-admitted. The default — and loopback, whose
    /// clients cannot leave — does nothing, keeping the loopback hot
    /// path allocation-free.
    fn admit_reconnects(&mut self, round: usize, global: &[f32]) -> usize {
        let _ = (round, global);
        0
    }

    /// Asks every live client to evaluate `global` on its local data.
    fn local_eval(
        &mut self,
        round: usize,
        global: &[f32],
    ) -> Vec<Result<LocalEval, TransportError>>;

    /// Reconfigures the per-client reply deadline (the coordinator
    /// builder's straggler knob). No-op for transports without one.
    fn set_read_timeout(&mut self, timeout: std::time::Duration) {
        let _ = timeout;
    }

    /// A fatal, transport-wide fault that is *not* attributable to any
    /// single client — e.g. an injected coordinator kill from the fault
    /// harness. When set, the coordinator stops re-rounding over
    /// "survivors" (there are none) and propagates the reason instead
    /// of a generic `NoLiveClients`. Real transports have no such
    /// state and return `None`.
    fn fatal_fault(&self) -> Option<&str> {
        None
    }

    /// Announces a graceful end-of-service to every live worker (the
    /// `Shutdown` frame on networked transports). Without it a worker
    /// cannot tell a finished schedule from a crashed coordinator —
    /// bare EOF is always treated as a disconnect. In-process
    /// transports have nothing to announce; the default is a no-op.
    fn shutdown(&mut self) {}

    /// Wire-traffic counters since construction.
    fn wire_stats(&self) -> WireStats;

    /// Joins the coordinator's shared telemetry catalog: transports
    /// with wire-side counters/spans rebind their handles to the
    /// registered cells (carrying pre-registration counts forward via
    /// `transfer_into`). In-process transports have nothing to report;
    /// the default is a no-op.
    fn set_telemetry(&mut self, telemetry: &crate::telemetry::ServeTelemetry) {
        let _ = telemetry;
    }

    /// Executes one shard-granular retrain (DESIGN.md §16): the
    /// executor subsets the owner's **original** dataset by
    /// `assign.keep_rows` and runs
    /// `goldfish_core::optimization::retrain_shard` from the shipped
    /// Eq 9 checkpoint — the same primitive `ShardedClient` uses, which
    /// is what pins the serve drain bitwise against the in-core oracle.
    /// Transports without shard support return
    /// [`TransportError::Unsupported`].
    fn shard_retrain(
        &mut self,
        assign: &crate::shard::ShardRetrainAssign,
    ) -> Result<Vec<f32>, TransportError> {
        let _ = assign;
        Err(TransportError::Unsupported {
            reason: "transport does not implement shard retrains".into(),
        })
    }

    /// The injected straggle delay (milliseconds) scripted for a
    /// client's replies, consulted by the deadline-driven drain *before*
    /// dispatching a shard retrain — fully deterministic, no wall-clock
    /// sleeps on the drain path. Real transports report `0` (their
    /// stragglers surface as read timeouts instead).
    fn straggle_ms(&self, client_id: usize) -> u64 {
        let _ = client_id;
        0
    }
}

/// One client's long-lived in-process worker: a network whose arenas,
/// batch-gather buffers and optimizer velocity persist across rounds, so
/// a steady-state training round performs **zero heap allocations** (the
/// ISSUE-5 loopback hot path, pinned by `tests/alloc_free_round.rs`).
///
/// Reuse is bitwise safe: every round starts by installing the broadcast
/// global via `set_state_vector`, which overwrites the *entire* state —
/// trainable parameters and frozen tracked state (BatchNorm running
/// statistics) alike — so a reused network is indistinguishable from the
/// fresh `factory(seed)` the per-round path used to build.
struct LoopbackWorker {
    net: Network,
    ws: TrainWorkspace,
    sgd: FusedSgd,
    state: Vec<f32>,
}

impl LoopbackWorker {
    fn new(factory: &ModelFactory) -> Self {
        LoopbackWorker {
            net: (factory)(0),
            ws: TrainWorkspace::new(),
            // Placeholder hyperparameters; re-armed from the round's
            // TrainConfig before every local run.
            sgd: FusedSgd::new(1.0, 0.0),
            state: Vec::new(),
        }
    }
}

/// The in-process [`ServeTransport`]: owns every client's dataset and a
/// pool of persistent [`LoopbackWorker`]s. Training rounds run the same
/// per-client compute as the library's [`LoopbackClients`] executor
/// (bitwise identical — pinned by `serve_identity`), but through
/// long-lived workers feeding the streaming aggregation sink, so a warm
/// round never touches the allocator. Distillation rounds delegate to
/// [`LoopbackDistill`]. The reference implementation every TCP run is
/// checked against.
pub struct LoopbackTransport {
    factory: ModelFactory,
    clients: Vec<Dataset>,
    threads: Option<usize>,
    staged: Vec<UnlearnRequest>,
    distill: Option<LoopbackDistill>,
    workers: Vec<LoopbackWorker>,
    /// Clients evicted via [`RoundTransport::quarantine`]: excluded
    /// from cohorts and the streamed feed (their datasets stay owned —
    /// in-process data cannot "leave" — but their updates never reach
    /// an aggregation sink again).
    quarantined: std::collections::BTreeSet<usize>,
}

impl LoopbackTransport {
    /// Wraps the client datasets as an in-process transport.
    pub fn new(factory: ModelFactory, clients: Vec<Dataset>, threads: Option<usize>) -> Self {
        LoopbackTransport {
            factory,
            clients,
            threads,
            staged: Vec::new(),
            distill: None,
            workers: Vec::new(),
            quarantined: std::collections::BTreeSet::new(),
        }
    }

    /// Clients evicted so far, ascending.
    pub fn quarantined_clients(&self) -> Vec<usize> {
        self.quarantined.iter().copied().collect()
    }
}

impl RoundTransport for LoopbackTransport {
    fn num_clients(&self) -> usize {
        self.clients.len() - self.quarantined.len()
    }

    fn cohort_into(&self, out: &mut Vec<(usize, usize)>) {
        out.clear();
        out.extend(
            self.clients
                .iter()
                .enumerate()
                .filter(|(id, _)| !self.quarantined.contains(id))
                .map(|(id, d)| (id, d.len())),
        );
    }

    fn train_round(
        &mut self,
        assign: &TrainAssign<'_>,
    ) -> Vec<Result<ClientUpdate, TransportError>> {
        LoopbackClients::new(&self.factory, &self.clients, self.threads).train_round(assign)
    }

    fn train_round_streamed(
        &mut self,
        assign: &TrainAssign<'_>,
        sink: &mut UpdateSink<'_>,
        results: &mut Vec<Result<(), TransportError>>,
    ) {
        while self.workers.len() < self.clients.len() {
            self.workers.push(LoopbackWorker::new(&self.factory));
        }
        self.workers.truncate(self.clients.len());
        let clients = &self.clients;
        let workers = &mut self.workers;
        let quarantined = &self.quarantined;
        pool::install(self.threads, || {
            pool::for_each_slot(workers, |id, w| {
                // Quarantined clients are out of the federation: no
                // compute, no upload.
                if quarantined.contains(&id) {
                    return;
                }
                let seed = client_seed(assign.seed, id, assign.round);
                w.net.set_state_vector(assign.global);
                train_local_hot(
                    &mut w.net,
                    &clients[id],
                    assign.cfg,
                    &CrossEntropy,
                    seed,
                    &mut w.ws,
                    &mut w.sgd,
                );
                w.net.state_vector_into(&mut w.state);
            });
        });
        // Feed in client-id order: the aggregation frontier folds every
        // update on arrival, so nothing is ever parked on loopback.
        results.clear();
        results.extend(
            self.workers
                .iter()
                .enumerate()
                .filter(|(id, _)| !quarantined.contains(id))
                .map(|(id, w)| {
                    sink(StreamedUpdate {
                        client_id: id,
                        num_samples: clients[id].len(),
                        nonce: assign.nonce,
                        state: &w.state,
                    })
                }),
        );
    }

    /// Sampled round: only cohort members compute and upload. Workers
    /// stay 1:1 with client ids (slot `id` always serves client `id`),
    /// so a client sampled in rounds 3 and 7 reuses *its own* arenas —
    /// bitwise identical to having trained every round.
    fn train_round_sampled(
        &mut self,
        assign: &TrainAssign<'_>,
        cohort: &[(usize, usize)],
        sink: &mut UpdateSink<'_>,
        results: &mut Vec<Result<(), TransportError>>,
    ) {
        while self.workers.len() < self.clients.len() {
            self.workers.push(LoopbackWorker::new(&self.factory));
        }
        self.workers.truncate(self.clients.len());
        let clients = &self.clients;
        let workers = &mut self.workers;
        let quarantined = &self.quarantined;
        let in_cohort = |id: usize| cohort.binary_search_by_key(&id, |&(cid, _)| cid).is_ok();
        pool::install(self.threads, || {
            pool::for_each_slot(workers, |id, w| {
                if quarantined.contains(&id) || !in_cohort(id) {
                    return;
                }
                let seed = client_seed(assign.seed, id, assign.round);
                w.net.set_state_vector(assign.global);
                train_local_hot(
                    &mut w.net,
                    &clients[id],
                    assign.cfg,
                    &CrossEntropy,
                    seed,
                    &mut w.ws,
                    &mut w.sgd,
                );
                w.net.state_vector_into(&mut w.state);
            });
        });
        results.clear();
        results.extend(
            self.workers
                .iter()
                .enumerate()
                .filter(|(id, _)| !quarantined.contains(id) && in_cohort(*id))
                .map(|(id, w)| {
                    sink(StreamedUpdate {
                        client_id: id,
                        num_samples: clients[id].len(),
                        nonce: assign.nonce,
                        state: &w.state,
                    })
                }),
        );
    }

    /// Evicts `client_id` from every future cohort and streamed feed.
    fn quarantine(&mut self, client_id: usize) -> bool {
        if client_id >= self.clients.len() {
            return false;
        }
        self.quarantined.insert(client_id)
    }
}

impl DistillTransport for LoopbackTransport {
    fn num_clients(&self) -> usize {
        self.clients.len()
    }

    fn begin_unlearn(&mut self, job: &UnlearnJob, teacher: &[f32]) -> Result<(), TransportError> {
        let hard = match job.hard {
            Some(spec) => spec.build(),
            None => {
                return Err(TransportError::Unsupported {
                    reason: "custom hard losses cannot be shipped to workers".into(),
                })
            }
        };
        let staged = std::mem::take(&mut self.staged);
        let splits: Vec<ClientSplit> = self
            .clients
            .iter()
            .enumerate()
            .map(
                |(id, data)| match staged.iter().find(|r| r.client_id == id) {
                    Some(req) if !req.removed.is_empty() => {
                        ClientSplit::with_removed(data, &req.removed)
                    }
                    _ => ClientSplit::intact(data.clone()),
                },
            )
            .collect();
        // The deletion is permanent (mirroring the worker daemon's state
        // machine): a client with removals keeps only its remaining data
        // for every later training round.
        for (id, split) in splits.iter().enumerate() {
            if !split.forget.is_empty() {
                self.clients[id] = split.remaining.clone();
            }
        }
        let mut distill = LoopbackDistill::new(self.factory.clone(), splits, hard, self.threads);
        distill.begin_unlearn(job, teacher)?;
        self.distill = Some(distill);
        Ok(())
    }

    fn distill_round(
        &mut self,
        round: usize,
        seed: u64,
        global: &[f32],
    ) -> Vec<Result<ClientUpdate, TransportError>> {
        self.distill
            .as_mut()
            .expect("distill_round before begin_unlearn")
            .distill_round(round, seed, global)
    }
}

impl ServeTransport for LoopbackTransport {
    fn client_sizes(&self) -> Vec<usize> {
        self.clients.iter().map(|c| c.len()).collect()
    }

    fn stage_removals(&mut self, requests: &[UnlearnRequest], _serial: u64) {
        self.staged = requests.to_vec();
    }

    fn apply_removals(&mut self, requests: &[UnlearnRequest]) {
        // Committed deletions replay in audit order; each removal's
        // indices refer to the dataset as it stood at that point, so
        // the shrink must be sequential, exactly as `begin_unlearn`
        // originally performed it.
        for req in requests {
            if req.removed.is_empty() {
                continue;
            }
            if let Some(data) = self.clients.get(req.client_id) {
                let split = ClientSplit::with_removed(data, &req.removed);
                self.clients[req.client_id] = split.remaining;
            }
        }
    }

    fn local_eval(
        &mut self,
        _round: usize,
        global: &[f32],
    ) -> Vec<Result<LocalEval, TransportError>> {
        let factory = &self.factory;
        let clients = &self.clients;
        let mut evals: Vec<Option<LocalEval>> = (0..clients.len()).map(|_| None).collect();
        pool::install(self.threads, || {
            pool::for_each_slot(&mut evals, |id, slot| {
                let mut net = (factory)(0);
                net.set_state_vector(global);
                *slot = Some(LocalEval {
                    client_id: id,
                    accuracy: eval::accuracy(&mut net, &clients[id]),
                    mse: eval::mse(&mut net, &clients[id]),
                });
            });
        });
        evals
            .into_iter()
            .map(|e| Ok(e.expect("missing loopback eval")))
            .collect()
    }

    fn wire_stats(&self) -> WireStats {
        WireStats::default()
    }

    fn shard_retrain(
        &mut self,
        assign: &crate::shard::ShardRetrainAssign,
    ) -> Result<Vec<f32>, TransportError> {
        // In shard mode the owned datasets never shrink (`begin_unlearn`
        // is never called), so `keep_rows` — original-order indices —
        // subsets them directly. The redundancy-group model: members
        // hold replicas of each other's shard data, so any executor can
        // run the owner's retrain; in-process, that is simply reading
        // the owner's dataset.
        let data = match self.clients.get(assign.owner) {
            Some(d) => d,
            None => {
                return Err(TransportError::Disconnected {
                    client_id: assign.owner,
                    reason: "shard retrain for unregistered client".into(),
                })
            }
        };
        if let Some(&bad) = assign.keep_rows.iter().find(|&&r| r >= data.len()) {
            return Err(TransportError::Protocol {
                client_id: assign.owner,
                reason: format!("keep row {bad} out of {} local samples", data.len()),
            });
        }
        let survived = data.subset(&assign.keep_rows);
        Ok(goldfish_core::optimization::retrain_shard(
            &self.factory,
            &assign.cfg,
            &assign.checkpoint,
            &survived,
            assign.seed,
        ))
    }
}

impl std::fmt::Debug for LoopbackTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LoopbackTransport({} clients)", self.clients.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::DemoSpec;
    use goldfish_core::basic_model::GoldfishLocalConfig;
    use goldfish_nn::loss::HardLossSpec;

    #[test]
    fn loopback_runs_both_flows() {
        let spec = DemoSpec {
            clients: 2,
            samples_per_client: 40,
            test_samples: 20,
            seed: 5,
        };
        let factory = spec.factory();
        let mut t = LoopbackTransport::new(factory.clone(), spec.client_shards(), Some(2));
        assert_eq!(RoundTransport::num_clients(&t), 2);
        assert_eq!(t.client_sizes(), vec![40, 40]);

        let global = (factory)(1).state_vector();
        let cfg = spec.train_config();
        let assign = TrainAssign {
            round: 0,
            seed: 3,
            nonce: goldfish_fed::transport::round_nonce(3, 0),
            global: &global,
            cfg: &cfg,
        };
        let updates = t.train_round(&assign);
        assert_eq!(updates.len(), 2);
        assert!(updates.iter().all(|u| u.is_ok()));

        t.stage_removals(&[UnlearnRequest::new(0, vec![0, 1, 2])], 0);
        let job = UnlearnJob {
            local: GoldfishLocalConfig {
                epochs: 1,
                batch_size: 20,
                ..GoldfishLocalConfig::default()
            },
            hard: Some(HardLossSpec::CrossEntropy),
        };
        t.begin_unlearn(&job, &global).unwrap();
        let results = t.distill_round(0, 3, &global);
        assert_eq!(results.len(), 2);
        let first = results[0].as_ref().unwrap();
        assert_eq!(first.num_samples, 37); // 40 - 3 removed

        let evals = t.local_eval(0, &global);
        assert_eq!(evals.len(), 2);
        assert!(evals[0].as_ref().unwrap().accuracy <= 1.0);
        assert_eq!(t.wire_stats().total(), 0);
    }
}
