//! The serve-level transport contract and its in-process implementation.
//!
//! [`ServeTransport`] is what a [`crate::coordinator::Coordinator`]
//! drives: the federated-round contract
//! ([`goldfish_fed::transport::RoundTransport`]) plus the distillation
//! contract ([`goldfish_core::transport::DistillTransport`]) plus the
//! serve-specific operations (staging deletion requests, local
//! evaluation, wire accounting). Two implementations exist:
//!
//! * [`LoopbackTransport`] (here) — clients are datasets in this process;
//!   execution delegates to the same loopback executors the library's
//!   `Federation`/`GoldfishUnlearning` use, so a loopback run **is** the
//!   existing in-process path,
//! * [`crate::tcp::TcpTransport`] — clients are remote worker daemons
//!   behind sockets; bitwise-identical to loopback because both sides
//!   run the same per-client code against losslessly round-tripped
//!   states.

use goldfish_core::transport::{DistillTransport, LoopbackDistill, UnlearnJob};
use goldfish_core::ClientSplit;
use goldfish_data::Dataset;
use goldfish_fed::aggregate::ClientUpdate;
use goldfish_fed::transport::{LoopbackClients, RoundTransport, TrainAssign, TransportError};
use goldfish_fed::{eval, pool, ModelFactory};

use crate::queue::UnlearnRequest;

/// Wire-traffic counters of a transport (zero for loopback).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Total frame bytes written to peers.
    pub bytes_sent: u64,
    /// Total frame bytes read from peers.
    pub bytes_received: u64,
}

impl WireStats {
    /// Sum of both directions.
    pub fn total(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }
}

/// One client's local evaluation of a state vector (the `Eval` exchange).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalEval {
    /// The evaluating client.
    pub client_id: usize,
    /// Classification accuracy on the client's local data.
    pub accuracy: f64,
    /// Mean squared error on the client's local data.
    pub mse: f64,
}

/// Everything a coordinator needs from a transport.
pub trait ServeTransport: RoundTransport + DistillTransport {
    /// Local dataset sizes by client id (`0` for dead clients) — used to
    /// validate deletion requests before they are queued.
    fn client_sizes(&self) -> Vec<usize>;

    /// Stages the drained deletion requests for the next
    /// [`DistillTransport::begin_unlearn`]: each listed client will split
    /// its data by the given indices; unlisted clients stay intact.
    fn stage_removals(&mut self, requests: &[UnlearnRequest]);

    /// Asks every live client to evaluate `global` on its local data.
    fn local_eval(
        &mut self,
        round: usize,
        global: &[f32],
    ) -> Vec<Result<LocalEval, TransportError>>;

    /// Wire-traffic counters since construction.
    fn wire_stats(&self) -> WireStats;
}

/// The in-process [`ServeTransport`]: owns every client's dataset and
/// delegates execution to the library's loopback executors
/// ([`LoopbackClients`] for training rounds, [`LoopbackDistill`] for
/// distillation rounds). The reference implementation every TCP run is
/// checked against.
pub struct LoopbackTransport {
    factory: ModelFactory,
    clients: Vec<Dataset>,
    threads: Option<usize>,
    staged: Vec<UnlearnRequest>,
    distill: Option<LoopbackDistill>,
}

impl LoopbackTransport {
    /// Wraps the client datasets as an in-process transport.
    pub fn new(factory: ModelFactory, clients: Vec<Dataset>, threads: Option<usize>) -> Self {
        LoopbackTransport {
            factory,
            clients,
            threads,
            staged: Vec::new(),
            distill: None,
        }
    }
}

impl RoundTransport for LoopbackTransport {
    fn num_clients(&self) -> usize {
        self.clients.len()
    }

    fn train_round(
        &mut self,
        assign: &TrainAssign<'_>,
    ) -> Vec<Result<ClientUpdate, TransportError>> {
        LoopbackClients::new(&self.factory, &self.clients, self.threads).train_round(assign)
    }
}

impl DistillTransport for LoopbackTransport {
    fn num_clients(&self) -> usize {
        self.clients.len()
    }

    fn begin_unlearn(&mut self, job: &UnlearnJob, teacher: &[f32]) -> Result<(), TransportError> {
        let hard = match job.hard {
            Some(spec) => spec.build(),
            None => {
                return Err(TransportError::Unsupported {
                    reason: "custom hard losses cannot be shipped to workers".into(),
                })
            }
        };
        let staged = std::mem::take(&mut self.staged);
        let splits: Vec<ClientSplit> = self
            .clients
            .iter()
            .enumerate()
            .map(
                |(id, data)| match staged.iter().find(|r| r.client_id == id) {
                    Some(req) if !req.removed.is_empty() => {
                        ClientSplit::with_removed(data, &req.removed)
                    }
                    _ => ClientSplit::intact(data.clone()),
                },
            )
            .collect();
        // The deletion is permanent (mirroring the worker daemon's state
        // machine): a client with removals keeps only its remaining data
        // for every later training round.
        for (id, split) in splits.iter().enumerate() {
            if !split.forget.is_empty() {
                self.clients[id] = split.remaining.clone();
            }
        }
        let mut distill = LoopbackDistill::new(self.factory.clone(), splits, hard, self.threads);
        distill.begin_unlearn(job, teacher)?;
        self.distill = Some(distill);
        Ok(())
    }

    fn distill_round(
        &mut self,
        round: usize,
        seed: u64,
        global: &[f32],
    ) -> Vec<Result<ClientUpdate, TransportError>> {
        self.distill
            .as_mut()
            .expect("distill_round before begin_unlearn")
            .distill_round(round, seed, global)
    }
}

impl ServeTransport for LoopbackTransport {
    fn client_sizes(&self) -> Vec<usize> {
        self.clients.iter().map(|c| c.len()).collect()
    }

    fn stage_removals(&mut self, requests: &[UnlearnRequest]) {
        self.staged = requests.to_vec();
    }

    fn local_eval(
        &mut self,
        _round: usize,
        global: &[f32],
    ) -> Vec<Result<LocalEval, TransportError>> {
        let factory = &self.factory;
        let clients = &self.clients;
        let mut evals: Vec<Option<LocalEval>> = (0..clients.len()).map(|_| None).collect();
        pool::install(self.threads, || {
            pool::for_each_slot(&mut evals, |id, slot| {
                let mut net = (factory)(0);
                net.set_state_vector(global);
                *slot = Some(LocalEval {
                    client_id: id,
                    accuracy: eval::accuracy(&mut net, &clients[id]),
                    mse: eval::mse(&mut net, &clients[id]),
                });
            });
        });
        evals
            .into_iter()
            .map(|e| Ok(e.expect("missing loopback eval")))
            .collect()
    }

    fn wire_stats(&self) -> WireStats {
        WireStats::default()
    }
}

impl std::fmt::Debug for LoopbackTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LoopbackTransport({} clients)", self.clients.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::DemoSpec;
    use goldfish_core::basic_model::GoldfishLocalConfig;
    use goldfish_nn::loss::HardLossSpec;

    #[test]
    fn loopback_runs_both_flows() {
        let spec = DemoSpec {
            clients: 2,
            samples_per_client: 40,
            test_samples: 20,
            seed: 5,
        };
        let factory = spec.factory();
        let mut t = LoopbackTransport::new(factory.clone(), spec.client_shards(), Some(2));
        assert_eq!(RoundTransport::num_clients(&t), 2);
        assert_eq!(t.client_sizes(), vec![40, 40]);

        let global = (factory)(1).state_vector();
        let cfg = spec.train_config();
        let assign = TrainAssign {
            round: 0,
            seed: 3,
            global: &global,
            cfg: &cfg,
        };
        let updates = t.train_round(&assign);
        assert_eq!(updates.len(), 2);
        assert!(updates.iter().all(|u| u.is_ok()));

        t.stage_removals(&[UnlearnRequest::new(0, vec![0, 1, 2])]);
        let job = UnlearnJob {
            local: GoldfishLocalConfig {
                epochs: 1,
                batch_size: 20,
                ..GoldfishLocalConfig::default()
            },
            hard: Some(HardLossSpec::CrossEntropy),
        };
        t.begin_unlearn(&job, &global).unwrap();
        let results = t.distill_round(0, 3, &global);
        assert_eq!(results.len(), 2);
        let first = results[0].as_ref().unwrap();
        assert_eq!(first.num_samples, 37); // 40 - 3 removed

        let evals = t.local_eval(0, &global);
        assert_eq!(evals.len(), 2);
        assert!(evals[0].as_ref().unwrap().accuracy <= 1.0);
        assert_eq!(t.wire_stats().total(), 0);
    }
}
