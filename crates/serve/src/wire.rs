//! The versioned, length-prefixed binary wire protocol (DESIGN.md §10).
//!
//! Every message travels as one **frame**:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"GFWP"
//! 4       1     protocol version (PROTOCOL_VERSION)
//! 5       1     message kind
//! 6       4     payload length, u32 LE
//! 10      n     payload
//! ```
//!
//! Payloads are little-endian throughout. `f32` vectors (model states,
//! teacher states) are embedded verbatim in the
//! [`goldfish_tensor::serialize::params_to_bytes`] format — a `u64`
//! element count followed by the bulk-converted floats — so the hot part
//! of every frame moves through the ~10 GB/s batched codec, and the
//! `f32 → LE bytes → f32` round trip is bit-exact (what makes a TCP round
//! bitwise identical to an in-process one). The vector is always the
//! **last** field of its payload.
//!
//! Decoding is strict: wrong magic, an unsupported version, an unknown
//! kind, a length prefix above the configured maximum, or a truncated
//! buffer each produce a distinct [`WireError`] — no panic, no partial
//! message.

use bytes::BufMut;
use goldfish_core::basic_model::GoldfishLocalConfig;
use goldfish_core::extension::AdaptiveTemperature;
use goldfish_core::loss::LossWeights;
use goldfish_core::transport::UnlearnJob;
use goldfish_fed::trainer::TrainConfig;
use goldfish_nn::loss::HardLossSpec;
use goldfish_tensor::serialize;

/// Frame magic: "GoldFish Wire Protocol".
pub const MAGIC: [u8; 4] = *b"GFWP";

/// Protocol version spoken by this build. Bumped on any incompatible
/// frame or payload change; both ends reject mismatches at the frame
/// layer (and again during the Hello/Capabilities handshake).
///
/// Version history: 1 = initial GFWP; 2 = `Hello` resume token,
/// `UnlearnAssign` drain serial, `Digest` frame; 3 = round nonce in
/// `RoundAssign`/`Update`/`UnlearnResult`, aggregation-mode negotiation
/// in `Capabilities` (DESIGN.md §13); 4 = `ShardAssign`/`ShardResult`
/// frames and shard-policy announcement in `Capabilities`
/// (DESIGN.md §16).
pub const PROTOCOL_VERSION: u8 = 4;

/// Frame header size in bytes.
pub const HEADER_LEN: usize = 10;

/// Frame-size policy. A peer announcing or sending frames above
/// `max_payload` is rejected before any allocation happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameLimits {
    /// Maximum payload bytes per frame.
    pub max_payload: usize,
}

impl Default for FrameLimits {
    /// 256 MiB — comfortably above any model this repository trains
    /// (a 500k-parameter state is 2 MB) while bounding a hostile length
    /// prefix.
    fn default() -> Self {
        FrameLimits {
            max_payload: 256 << 20,
        }
    }
}

/// Typed decode/transport failures of the wire layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ends before the frame (or a payload field) does.
    Truncated,
    /// The first four bytes are not [`MAGIC`].
    BadMagic {
        /// The bytes found instead.
        got: [u8; 4],
    },
    /// The peer speaks a different protocol version.
    UnsupportedVersion {
        /// The version byte received.
        got: u8,
    },
    /// The kind byte maps to no known message.
    UnknownKind(u8),
    /// The length prefix exceeds [`FrameLimits::max_payload`].
    FrameTooLarge {
        /// The announced payload length.
        len: u64,
        /// The configured maximum.
        max: usize,
    },
    /// The payload parsed but its contents are invalid.
    Malformed(String),
    /// An I/O error while reading or writing a frame.
    Io {
        /// The underlying error kind.
        kind: std::io::ErrorKind,
        /// The error text.
        detail: String,
    },
    /// The peer closed the stream **inside** a frame: some header or
    /// payload bytes arrived, then EOF. Distinct from a clean EOF
    /// between frames (reported as [`WireError::Io`] with
    /// [`std::io::ErrorKind::UnexpectedEof`]), because a mid-frame close
    /// means the peer died or reset rather than finishing its session.
    DisconnectedMidFrame {
        /// Bytes of the frame that did arrive.
        got: usize,
        /// Bytes the frame announced (header plus payload).
        want: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadMagic { got } => write!(f, "bad frame magic {got:?}"),
            WireError::UnsupportedVersion { got } => {
                write!(
                    f,
                    "unsupported protocol version {got} (want {PROTOCOL_VERSION})"
                )
            }
            WireError::UnknownKind(k) => write!(f, "unknown message kind {k}"),
            WireError::FrameTooLarge { len, max } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {max}-byte limit"
                )
            }
            WireError::Malformed(why) => write!(f, "malformed payload: {why}"),
            WireError::Io { kind, detail } => write!(f, "wire i/o error ({kind:?}): {detail}"),
            WireError::DisconnectedMidFrame { got, want } => {
                write!(f, "peer disconnected mid-frame ({got} of {want} bytes)")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io {
            kind: e.kind(),
            detail: e.to_string(),
        }
    }
}

/// Frame kind bytes — the one place a message's wire kind is assigned.
/// [`Msg::kind`], the payload decoders and the borrowed encoders all
/// reference these, so adding or renumbering a message is a one-site
/// change.
pub mod kind {
    /// [`super::Msg::Hello`].
    pub const HELLO: u8 = 1;
    /// [`super::Msg::Capabilities`].
    pub const CAPABILITIES: u8 = 2;
    /// [`super::Msg::RoundAssign`].
    pub const ROUND_ASSIGN: u8 = 3;
    /// [`super::Msg::Update`].
    pub const UPDATE: u8 = 4;
    /// [`super::Msg::UnlearnAssign`].
    pub const UNLEARN_ASSIGN: u8 = 5;
    /// [`super::Msg::UnlearnResult`].
    pub const UNLEARN_RESULT: u8 = 6;
    /// [`super::Msg::Eval`].
    pub const EVAL: u8 = 7;
    /// [`super::Msg::Err`].
    pub const ERR: u8 = 8;
    /// [`super::Msg::Ack`].
    pub const ACK: u8 = 9;
    /// [`super::Msg::Digest`].
    pub const DIGEST: u8 = 10;
    /// [`super::Msg::UnlearnAck`].
    pub const UNLEARN_ACK: u8 = 11;
    /// [`super::Msg::Shutdown`].
    pub const SHUTDOWN: u8 = 12;
    /// [`super::Msg::ShardAssign`].
    pub const SHARD_ASSIGN: u8 = 13;
    /// [`super::Msg::ShardResult`].
    pub const SHARD_RESULT: u8 = 14;
}

/// Error codes carried by [`Msg::Err`].
pub mod err_code {
    /// The peer's state-vector length does not match the architecture.
    pub const BAD_STATE_LEN: u16 = 1;
    /// A distillation round arrived with no preceding `UnlearnAssign`.
    pub const NOT_UNLEARNING: u16 = 2;
    /// The request is semantically invalid (bad indices, bad job).
    pub const BAD_REQUEST: u16 = 3;
    /// Catch-all for internal worker failures.
    pub const INTERNAL: u16 = 4;
    /// The client has been quarantined by the coordinator's
    /// strike/reputation ledger and will not be readmitted.
    pub const QUARANTINED: u16 = 5;
}

/// Whether a `RoundAssign` is a plain training round or a distillation
/// round of an active unlearning request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundMode {
    /// Local SGD on the client's full data; reply is [`Msg::Update`].
    Train,
    /// Goldfish distillation retraining; reply is [`Msg::UnlearnResult`]
    /// and requires a prior [`Msg::UnlearnAssign`].
    Distill,
}

/// One protocol message. See DESIGN.md §10 for the message table and the
/// coordinator/worker state machines that exchange them.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Worker → coordinator introduction, first frame on a connection.
    Hello {
        /// The worker's logical client id.
        client_id: u64,
        /// State-vector length of the worker's model build.
        state_len: u64,
        /// Local dataset size (the FedAvg weight).
        num_samples: u64,
        /// Resume token: `Some(last_acked_round)` when this connection
        /// re-joins a session the worker already participated in, `None`
        /// on a fresh join. The coordinator re-admits resuming workers
        /// into their registry slot without perturbing cohort or round
        /// seeds and answers with a [`Msg::Digest`] of the current
        /// global so the worker can confirm it rejoined the same run.
        resume: Option<u64>,
    },
    /// Coordinator → worker handshake acknowledgement.
    Capabilities {
        /// The coordinator's frame-size limit.
        max_payload: u64,
        /// The coordinator's state-vector length (must match the
        /// worker's).
        state_len: u64,
        /// The negotiated aggregation mode
        /// ([`goldfish_fed::aggregate::AggregationMode::wire_code`]):
        /// announced so workers know which robust fold their updates
        /// enter.
        agg_mode: u8,
        /// The aggregation mode's parameter (trim count or norm-limit
        /// bits; `0` when the mode takes none).
        agg_param: u64,
        /// Shards per client when the coordinator runs shard-isolated
        /// unlearning (DESIGN.md §16); `0` when shard mode is off.
        shard_tau: u32,
        /// Redundancy-group width of the coordinator's shard parity
        /// (`0` when shard mode is off).
        shard_group: u32,
    },
    /// Coordinator → worker: one round's marching orders.
    RoundAssign {
        /// Training or distillation round.
        mode: RoundMode,
        /// Round index.
        round: u64,
        /// Base seed; the worker derives its own via
        /// [`goldfish_fed::transport::client_seed`].
        seed: u64,
        /// This round's nonce
        /// ([`goldfish_fed::transport::round_nonce`]); the worker must
        /// echo it in its reply, which is how the admission layer
        /// rejects stale and replayed update frames.
        nonce: u64,
        /// Local training hyperparameters (ignored for
        /// [`RoundMode::Distill`], which uses the job shipped by
        /// `UnlearnAssign`).
        cfg: TrainConfig,
        /// The current global state vector.
        global: Vec<f32>,
    },
    /// Worker → coordinator: the trained local state.
    Update {
        /// Echoes the assignment's round index.
        round: u64,
        /// The worker's client id.
        client_id: u64,
        /// Aggregation weight (local sample count).
        weight: u64,
        /// Echoes the assignment's round nonce.
        nonce: u64,
        /// The updated local state vector.
        state: Vec<f32>,
    },
    /// Coordinator → worker: an unlearning request begins. The worker
    /// splits its local data by `removed`, rebuilds its distillation
    /// state and answers subsequent [`RoundMode::Distill`] assignments.
    UnlearnAssign {
        /// Drain serial: the coordinator-wide index of the drain batch
        /// this assignment belongs to. Workers apply a deletion **once
        /// per serial** — a re-shipped assignment after a coordinator
        /// crash/restart reuses the cached split instead of removing
        /// the indices a second time from already-shrunk data.
        serial: u64,
        /// The job (local config + hard loss).
        job: UnlearnJob,
        /// Indices into this worker's local data to forget (empty for
        /// clients without a deletion request).
        removed: Vec<u64>,
        /// The frozen pre-deletion global state (the teacher).
        teacher: Vec<f32>,
    },
    /// Worker → coordinator: one distillation round's result.
    UnlearnResult {
        /// Echoes the assignment's round index.
        round: u64,
        /// The worker's client id.
        client_id: u64,
        /// Aggregation weight (remaining sample count).
        weight: u64,
        /// Echoes the assignment's round nonce.
        nonce: u64,
        /// The retrained student state.
        state: Vec<f32>,
    },
    /// Local-evaluation exchange. The coordinator sends a non-empty
    /// `global` with zeroed metrics; the worker replies with an empty
    /// `global` and its local test of that state.
    Eval {
        /// Round index this evaluation refers to.
        round: u64,
        /// Classification accuracy on the worker's local data.
        accuracy: f64,
        /// Mean squared error on the worker's local data.
        mse: f64,
        /// The state to evaluate (request) or empty (reply).
        global: Vec<f32>,
    },
    /// A typed failure, either direction. The connection is torn down
    /// after sending or receiving one.
    Err {
        /// One of [`err_code`]'s values.
        code: u16,
        /// Human-readable detail.
        detail: String,
    },
    /// A bare positive acknowledgement (worker → coordinator), e.g. of
    /// an accepted `UnlearnAssign`. Empty payload.
    Ack,
    /// Coordinator → worker on a resumed connection: the round counter
    /// and SHA-256 state digest (see
    /// [`crate::digest::state_digest`]) of the global the session will
    /// continue from. The worker replies [`Msg::Ack`].
    Digest {
        /// Rounds completed so far.
        round: u64,
        /// `state_digest(round, global)`.
        digest: [u8; 32],
    },
    /// Worker → coordinator: an [`Msg::UnlearnAssign`] landed. Carries
    /// the worker's authoritative post-deletion dataset size: the
    /// coordinator *assigns* (never subtracts) this into its registry,
    /// so a batch re-shipped to a rejoined worker — whose `Hello`
    /// already reported the shrunk size and whose serial cache makes
    /// the re-application a no-op — cannot double-shrink the
    /// aggregation weights.
    UnlearnAck {
        /// Remaining local sample count (the FedAvg weight from here
        /// on).
        num_samples: u64,
    },
    /// Coordinator → worker: the schedule is complete; close cleanly.
    /// This frame is what distinguishes a graceful end-of-service from
    /// a coordinator crash — a worker seeing bare EOF *without* a
    /// preceding `Shutdown` treats the session as a disconnect (and,
    /// under `--reconnect`, waits for the coordinator to come back).
    Shutdown,
    /// Coordinator → worker: retrain one shard of `owner`'s partition
    /// from its pre-deletion checkpoint (DESIGN.md §16). The recipient
    /// need not be the owner — under a degraded drain the coordinator
    /// reconstructs the checkpoint from group parity and delegates to a
    /// healthy group member, which trains on its replica of the owner's
    /// shard rows. The reply is [`Msg::ShardResult`].
    ShardAssign {
        /// The client whose shard is retrained (rows and checkpoint are
        /// the owner's, whoever executes).
        owner: u64,
        /// Shard index within the owner's `τ`-way partition.
        shard: u32,
        /// The owner's shard count (sanity-checked against the
        /// recipient's announced policy).
        tau: u32,
        /// Retrain seed (already task-derived by the coordinator).
        seed: u64,
        /// Local training hyperparameters for the retrain.
        cfg: TrainConfig,
        /// Row indices (owner's original data ordering) the shard keeps
        /// after the deletion.
        keep_rows: Vec<u64>,
        /// The shard's stored pre-deletion state to warm-start from.
        checkpoint: Vec<f32>,
    },
    /// Worker → coordinator: one shard retrain's result.
    ShardResult {
        /// Echoes the assignment's owner.
        owner: u64,
        /// Echoes the assignment's shard index.
        shard: u32,
        /// The retrained shard state vector.
        state: Vec<f32>,
    },
}

impl Msg {
    /// The frame kind byte of this message.
    pub fn kind(&self) -> u8 {
        match self {
            Msg::Hello { .. } => kind::HELLO,
            Msg::Capabilities { .. } => kind::CAPABILITIES,
            Msg::RoundAssign { .. } => kind::ROUND_ASSIGN,
            Msg::Update { .. } => kind::UPDATE,
            Msg::UnlearnAssign { .. } => kind::UNLEARN_ASSIGN,
            Msg::UnlearnResult { .. } => kind::UNLEARN_RESULT,
            Msg::Eval { .. } => kind::EVAL,
            Msg::Err { .. } => kind::ERR,
            Msg::Ack => kind::ACK,
            Msg::Digest { .. } => kind::DIGEST,
            Msg::UnlearnAck { .. } => kind::UNLEARN_ACK,
            Msg::Shutdown => kind::SHUTDOWN,
            Msg::ShardAssign { .. } => kind::SHARD_ASSIGN,
            Msg::ShardResult { .. } => kind::SHARD_RESULT,
        }
    }

    /// Short message name for logs.
    pub fn name(&self) -> &'static str {
        match self {
            Msg::Hello { .. } => "Hello",
            Msg::Capabilities { .. } => "Capabilities",
            Msg::RoundAssign { .. } => "RoundAssign",
            Msg::Update { .. } => "Update",
            Msg::UnlearnAssign { .. } => "UnlearnAssign",
            Msg::UnlearnResult { .. } => "UnlearnResult",
            Msg::Eval { .. } => "Eval",
            Msg::Err { .. } => "Err",
            Msg::Ack => "Ack",
            Msg::Digest { .. } => "Digest",
            Msg::UnlearnAck { .. } => "UnlearnAck",
            Msg::Shutdown => "Shutdown",
            Msg::ShardAssign { .. } => "ShardAssign",
            Msg::ShardResult { .. } => "ShardResult",
        }
    }
}

/// Renders a message for logs: `Err` frames show their code and detail,
/// everything else its name.
pub fn describe_err(msg: &Msg) -> String {
    match msg {
        Msg::Err { code, detail } => format!("error code {code}: {detail}"),
        other => other.name().to_string(),
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.put_u64_le(v.to_bits());
}

fn put_f32s(out: &mut Vec<u8>, data: &[f32]) {
    serialize::params_write_into(out, data);
}

/// Starts a frame in `out` (cleared first): magic, version, kind, and a
/// zero length field to be patched by [`finish_frame`].
fn begin_frame(out: &mut Vec<u8>, kind: u8) {
    out.clear();
    out.put_slice(&MAGIC);
    out.put_slice(&[PROTOCOL_VERSION, kind]);
    out.put_u32_le(0); // payload length, patched by finish_frame
}

/// Validates the payload length against `limits` and patches the header's
/// length field. Returns the whole frame's size in bytes.
fn finish_frame(out: &mut [u8], limits: &FrameLimits) -> Result<usize, WireError> {
    let payload_len = out.len() - HEADER_LEN;
    // The header's length field is u32; a payload above either the
    // configured cap or the field's range must fail cleanly here, never
    // wrap into a desynced stream.
    if payload_len > limits.max_payload || payload_len > u32::MAX as usize {
        return Err(WireError::FrameTooLarge {
            len: payload_len as u64,
            max: limits.max_payload.min(u32::MAX as usize),
        });
    }
    out[6..10].copy_from_slice(&(payload_len as u32).to_le_bytes());
    Ok(out.len())
}

fn put_opt_f32(out: &mut Vec<u8>, v: Option<f32>) {
    match v {
        Some(x) => {
            out.put_slice(&[1]);
            out.put_f32_le(x);
        }
        None => out.put_slice(&[0]),
    }
}

fn put_train_config(out: &mut Vec<u8>, cfg: &TrainConfig) {
    out.put_u64_le(cfg.local_epochs as u64);
    out.put_u64_le(cfg.batch_size as u64);
    out.put_f32_le(cfg.lr);
    out.put_f32_le(cfg.momentum);
}

fn put_job(out: &mut Vec<u8>, job: &UnlearnJob) -> Result<(), WireError> {
    let l = &job.local;
    out.put_u64_le(l.epochs as u64);
    out.put_u64_le(l.batch_size as u64);
    out.put_f32_le(l.lr);
    out.put_f32_le(l.momentum);
    out.put_f32_le(l.weights.mu_c);
    out.put_f32_le(l.weights.mu_d);
    out.put_f32_le(l.weights.temperature);
    match &l.adaptive_temperature {
        Some(at) => {
            out.put_slice(&[1]);
            out.put_f32_le(at.t0);
            out.put_f32_le(at.alpha);
        }
        None => out.put_slice(&[0]),
    }
    put_opt_f32(out, l.early_termination);
    put_opt_f32(out, l.grad_clip);
    match job.hard {
        Some(HardLossSpec::CrossEntropy) => out.put_slice(&[0]),
        Some(HardLossSpec::Focal { gamma }) => {
            out.put_slice(&[1]);
            out.put_f32_le(gamma);
        }
        Some(HardLossSpec::Nll) => out.put_slice(&[2]),
        None => {
            return Err(WireError::Malformed(
                "custom hard losses cannot travel over the wire".into(),
            ))
        }
    }
    Ok(())
}

/// Serializes `msg` into one complete frame (header + payload).
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] when the payload exceeds `limits`, or
/// [`WireError::Malformed`] for messages that cannot be wire-encoded
/// (an [`UnlearnJob`] carrying a custom loss).
pub fn encode_frame(msg: &Msg, limits: &FrameLimits) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(HEADER_LEN + 64);
    encode_frame_into(msg, &mut out, limits)?;
    Ok(out)
}

/// [`encode_frame`] into a caller-owned buffer (cleared and refilled) —
/// the reusable-buffer form the transports encode every frame through,
/// so a steady-state round allocates no frame memory. Returns the
/// frame's size in bytes.
///
/// # Errors
///
/// Same as [`encode_frame`].
pub fn encode_frame_into(
    msg: &Msg,
    out: &mut Vec<u8>,
    limits: &FrameLimits,
) -> Result<usize, WireError> {
    begin_frame(out, msg.kind());
    match msg {
        Msg::Hello {
            client_id,
            state_len,
            num_samples,
            resume,
        } => {
            out.put_u64_le(*client_id);
            out.put_u64_le(*state_len);
            out.put_u64_le(*num_samples);
            match resume {
                Some(round) => {
                    out.put_slice(&[1]);
                    out.put_u64_le(*round);
                }
                None => out.put_slice(&[0]),
            }
        }
        Msg::Capabilities {
            max_payload,
            state_len,
            agg_mode,
            agg_param,
            shard_tau,
            shard_group,
        } => {
            out.put_u64_le(*max_payload);
            out.put_u64_le(*state_len);
            out.put_slice(&[*agg_mode]);
            out.put_u64_le(*agg_param);
            out.put_u32_le(*shard_tau);
            out.put_u32_le(*shard_group);
        }
        Msg::RoundAssign {
            mode,
            round,
            seed,
            nonce,
            cfg,
            global,
        } => {
            put_round_assign_payload(out, *mode, *round, *seed, *nonce, cfg, global);
        }
        Msg::Update {
            round,
            client_id,
            weight,
            nonce,
            state,
        }
        | Msg::UnlearnResult {
            round,
            client_id,
            weight,
            nonce,
            state,
        } => {
            out.put_u64_le(*round);
            out.put_u64_le(*client_id);
            out.put_u64_le(*weight);
            out.put_u64_le(*nonce);
            put_f32s(out, state);
        }
        Msg::UnlearnAssign {
            serial,
            job,
            removed,
            teacher,
        } => {
            out.put_u64_le(*serial);
            put_job(out, job)?;
            out.put_u32_le(removed.len() as u32);
            for &r in removed {
                out.put_u64_le(r);
            }
            put_f32s(out, teacher);
        }
        Msg::Eval {
            round,
            accuracy,
            mse,
            global,
        } => {
            out.put_u64_le(*round);
            put_f64(out, *accuracy);
            put_f64(out, *mse);
            put_f32s(out, global);
        }
        Msg::Err { code, detail } => {
            out.put_u16_le(*code);
            let b = detail.as_bytes();
            out.put_u32_le(b.len() as u32);
            out.put_slice(b);
        }
        Msg::Ack => {}
        Msg::Digest { round, digest } => {
            out.put_u64_le(*round);
            out.put_slice(digest);
        }
        Msg::UnlearnAck { num_samples } => {
            out.put_u64_le(*num_samples);
        }
        Msg::Shutdown => {}
        Msg::ShardAssign {
            owner,
            shard,
            tau,
            seed,
            cfg,
            keep_rows,
            checkpoint,
        } => {
            out.put_u64_le(*owner);
            out.put_u32_le(*shard);
            out.put_u32_le(*tau);
            out.put_u64_le(*seed);
            put_train_config(out, cfg);
            out.put_u32_le(keep_rows.len() as u32);
            for &r in keep_rows {
                out.put_u64_le(r);
            }
            put_f32s(out, checkpoint);
        }
        Msg::ShardResult {
            owner,
            shard,
            state,
        } => {
            out.put_u64_le(*owner);
            out.put_u32_le(*shard);
            put_f32s(out, state);
        }
    }
    finish_frame(out, limits)
}

fn put_round_assign_payload(
    out: &mut Vec<u8>,
    mode: RoundMode,
    round: u64,
    seed: u64,
    nonce: u64,
    cfg: &TrainConfig,
    global: &[f32],
) {
    out.put_slice(&[match mode {
        RoundMode::Train => 0,
        RoundMode::Distill => 1,
    }]);
    out.put_u64_le(round);
    out.put_u64_le(seed);
    out.put_u64_le(nonce);
    put_train_config(out, cfg);
    put_f32s(out, global);
}

/// Encodes a `RoundAssign` frame straight from borrowed fields — no
/// intermediate [`Msg`], no clone of the (large) global state. This is
/// the encode-once broadcast path: the coordinator builds the frame a
/// single time per round in a reused buffer and writes the same bytes to
/// every connection. Byte-for-byte identical to
/// `encode_frame(&Msg::RoundAssign { .. })`.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] when the payload exceeds `limits`.
// The parameter list mirrors the wire layout field-for-field; bundling
// them into a struct would just re-introduce the intermediate `Msg`.
#[allow(clippy::too_many_arguments)]
pub fn encode_round_assign_into(
    out: &mut Vec<u8>,
    mode: RoundMode,
    round: u64,
    seed: u64,
    nonce: u64,
    cfg: &TrainConfig,
    global: &[f32],
    limits: &FrameLimits,
) -> Result<usize, WireError> {
    begin_frame(out, kind::ROUND_ASSIGN);
    put_round_assign_payload(out, mode, round, seed, nonce, cfg, global);
    finish_frame(out, limits)
}

/// Encodes an `Eval` request frame from borrowed fields (zeroed metrics,
/// the state to evaluate) — the broadcast form of the local-evaluation
/// exchange. Byte-identical to the [`Msg::Eval`] request encoding.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] when the payload exceeds `limits`.
pub fn encode_eval_request_into(
    out: &mut Vec<u8>,
    round: u64,
    global: &[f32],
    limits: &FrameLimits,
) -> Result<usize, WireError> {
    begin_frame(out, kind::EVAL);
    out.put_u64_le(round);
    put_f64(out, 0.0);
    put_f64(out, 0.0);
    put_f32s(out, global);
    finish_frame(out, limits)
}

/// Encodes an `UnlearnAssign` frame from borrowed fields — per-client
/// frames differ only in the (tiny) removed-index list, so the fan-out
/// encodes each without ever cloning the (large) teacher state.
/// Byte-identical to the [`Msg::UnlearnAssign`] encoding.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] / [`WireError::Malformed`] as for
/// [`encode_frame`].
pub fn encode_unlearn_assign_into(
    out: &mut Vec<u8>,
    serial: u64,
    job: &UnlearnJob,
    removed: &[usize],
    teacher: &[f32],
    limits: &FrameLimits,
) -> Result<usize, WireError> {
    begin_frame(out, kind::UNLEARN_ASSIGN);
    out.put_u64_le(serial);
    put_job(out, job)?;
    out.put_u32_le(removed.len() as u32);
    for &r in removed {
        out.put_u64_le(r as u64);
    }
    put_f32s(out, teacher);
    finish_frame(out, limits)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A checked little-endian reader over a borrowed payload slice —
/// decoding never copies the payload, and the trailing `f32` vector can
/// stream straight into a pooled buffer.
struct Reader<'a> {
    b: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.b.len() < n {
            return Err(WireError::Truncated);
        }
        let (head, rest) = self.b.split_at(n);
        self.b = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn opt_f32(&mut self) -> Result<Option<f32>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f32()?)),
            t => Err(WireError::Malformed(format!("bad option tag {t}"))),
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|e| WireError::Malformed(format!("bad utf-8: {e}")))
    }

    /// Consumes the trailing `f32` vector (the bulk-codec segment).
    fn f32s(self) -> Result<Vec<f32>, WireError> {
        let mut out = Vec::new();
        self.f32s_into(&mut out)?;
        Ok(out)
    }

    /// Consumes the trailing `f32` vector into a caller-owned buffer —
    /// the pooled decode path.
    fn f32s_into(self, out: &mut Vec<f32>) -> Result<(), WireError> {
        serialize::params_read_into_vec(self.b, out)
            .map(|_| ())
            .map_err(|e| WireError::Malformed(format!("f32 vector: {e:?}")))
    }
}

fn read_train_config(r: &mut Reader<'_>) -> Result<TrainConfig, WireError> {
    Ok(TrainConfig {
        local_epochs: r.u64()? as usize,
        batch_size: r.u64()? as usize,
        lr: r.f32()?,
        momentum: r.f32()?,
    })
}

fn read_job(r: &mut Reader<'_>) -> Result<UnlearnJob, WireError> {
    let epochs = r.u64()? as usize;
    let batch_size = r.u64()? as usize;
    let lr = r.f32()?;
    let momentum = r.f32()?;
    let weights = LossWeights {
        mu_c: r.f32()?,
        mu_d: r.f32()?,
        temperature: r.f32()?,
    };
    let adaptive_temperature = match r.u8()? {
        0 => None,
        1 => Some(AdaptiveTemperature {
            t0: r.f32()?,
            alpha: r.f32()?,
        }),
        t => return Err(WireError::Malformed(format!("bad option tag {t}"))),
    };
    let early_termination = r.opt_f32()?;
    let grad_clip = r.opt_f32()?;
    let hard = match r.u8()? {
        0 => HardLossSpec::CrossEntropy,
        1 => {
            // `Focal::new` asserts γ ≥ 0; a hostile frame must surface
            // as a typed error here, never as a worker panic there.
            let gamma = r.f32()?;
            if !gamma.is_finite() || gamma < 0.0 {
                return Err(WireError::Malformed(format!(
                    "focal gamma {gamma} is not a finite non-negative value"
                )));
            }
            HardLossSpec::Focal { gamma }
        }
        2 => HardLossSpec::Nll,
        t => return Err(WireError::Malformed(format!("bad hard-loss tag {t}"))),
    };
    Ok(UnlearnJob {
        local: GoldfishLocalConfig {
            epochs,
            batch_size,
            lr,
            momentum,
            weights,
            adaptive_temperature,
            early_termination,
            grad_clip,
        },
        hard: Some(hard),
    })
}

/// A parsed `Update`/`UnlearnResult` header, the fixed-size fields in
/// front of the state vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateHeader {
    /// Echoed round index.
    pub round: u64,
    /// The uploading client.
    pub client_id: u64,
    /// Aggregation weight (local sample count).
    pub weight: u64,
    /// Echoed round nonce (checked by the admission layer).
    pub nonce: u64,
    /// Whether the frame was an `UnlearnResult` (distillation round)
    /// rather than a plain `Update`.
    pub distill: bool,
}

/// Decodes an `Update`/`UnlearnResult` payload with the state vector
/// written straight into a caller-owned (pooled) buffer — the transport
/// hot path, which never materialises a [`Msg`].
///
/// # Errors
///
/// [`WireError::UnknownKind`] for non-update kinds, otherwise the usual
/// payload errors.
pub fn decode_update_into(
    kind: u8,
    payload: &[u8],
    state: &mut Vec<f32>,
) -> Result<UpdateHeader, WireError> {
    if kind != self::kind::UPDATE && kind != self::kind::UNLEARN_RESULT {
        return Err(WireError::UnknownKind(kind));
    }
    let mut r = Reader { b: payload };
    let header = UpdateHeader {
        round: r.u64()?,
        client_id: r.u64()?,
        weight: r.u64()?,
        nonce: r.u64()?,
        distill: kind == self::kind::UNLEARN_RESULT,
    };
    r.f32s_into(state)?;
    Ok(header)
}

/// Decodes a payload of the given kind into a [`Msg`] (the body of
/// [`decode_frame`], exposed for transports that read frames through
/// pooled buffers).
///
/// # Errors
///
/// Any payload-level [`WireError`].
pub fn decode_msg(kind: u8, payload: &[u8]) -> Result<Msg, WireError> {
    decode_payload(kind, payload)
}

fn decode_payload(k: u8, payload: &[u8]) -> Result<Msg, WireError> {
    let mut r = Reader { b: payload };
    match k {
        kind::HELLO => {
            let client_id = r.u64()?;
            let state_len = r.u64()?;
            let num_samples = r.u64()?;
            let resume = match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                t => return Err(WireError::Malformed(format!("bad resume tag {t}"))),
            };
            Ok(Msg::Hello {
                client_id,
                state_len,
                num_samples,
                resume,
            })
        }
        kind::CAPABILITIES => Ok(Msg::Capabilities {
            max_payload: r.u64()?,
            state_len: r.u64()?,
            agg_mode: r.u8()?,
            agg_param: r.u64()?,
            shard_tau: r.u32()?,
            shard_group: r.u32()?,
        }),
        kind::ROUND_ASSIGN => {
            let mode = match r.u8()? {
                0 => RoundMode::Train,
                1 => RoundMode::Distill,
                t => return Err(WireError::Malformed(format!("bad round mode {t}"))),
            };
            let round = r.u64()?;
            let seed = r.u64()?;
            let nonce = r.u64()?;
            let cfg = read_train_config(&mut r)?;
            Ok(Msg::RoundAssign {
                mode,
                round,
                seed,
                nonce,
                cfg,
                global: r.f32s()?,
            })
        }
        kind::UPDATE | kind::UNLEARN_RESULT => {
            let round = r.u64()?;
            let client_id = r.u64()?;
            let weight = r.u64()?;
            let nonce = r.u64()?;
            let state = r.f32s()?;
            Ok(if k == kind::UPDATE {
                Msg::Update {
                    round,
                    client_id,
                    weight,
                    nonce,
                    state,
                }
            } else {
                Msg::UnlearnResult {
                    round,
                    client_id,
                    weight,
                    nonce,
                    state,
                }
            })
        }
        kind::UNLEARN_ASSIGN => {
            let serial = r.u64()?;
            let job = read_job(&mut r)?;
            let n = r.u32()? as usize;
            let mut removed = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                removed.push(r.u64()?);
            }
            Ok(Msg::UnlearnAssign {
                serial,
                job,
                removed,
                teacher: r.f32s()?,
            })
        }
        kind::EVAL => Ok(Msg::Eval {
            round: r.u64()?,
            accuracy: r.f64()?,
            mse: r.f64()?,
            global: r.f32s()?,
        }),
        kind::ERR => Ok(Msg::Err {
            code: r.u16()?,
            detail: r.string()?,
        }),
        kind::ACK => Ok(Msg::Ack),
        kind::DIGEST => {
            let round = r.u64()?;
            let mut digest = [0u8; 32];
            digest.copy_from_slice(r.take(32)?);
            Ok(Msg::Digest { round, digest })
        }
        kind::UNLEARN_ACK => Ok(Msg::UnlearnAck {
            num_samples: r.u64()?,
        }),
        kind::SHUTDOWN => Ok(Msg::Shutdown),
        kind::SHARD_ASSIGN => {
            let owner = r.u64()?;
            let shard = r.u32()?;
            let tau = r.u32()?;
            let seed = r.u64()?;
            let cfg = read_train_config(&mut r)?;
            let n = r.u32()? as usize;
            let mut keep_rows = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                keep_rows.push(r.u64()?);
            }
            Ok(Msg::ShardAssign {
                owner,
                shard,
                tau,
                seed,
                cfg,
                keep_rows,
                checkpoint: r.f32s()?,
            })
        }
        kind::SHARD_RESULT => {
            let owner = r.u64()?;
            let shard = r.u32()?;
            Ok(Msg::ShardResult {
                owner,
                shard,
                state: r.f32s()?,
            })
        }
        other => Err(WireError::UnknownKind(other)),
    }
}

/// Parses the 10-byte frame header, validating magic, version, and the
/// length prefix against `limits`. Returns `(kind, payload_len)`.
///
/// # Errors
///
/// [`WireError::Truncated`], [`WireError::BadMagic`],
/// [`WireError::UnsupportedVersion`] or [`WireError::FrameTooLarge`].
pub fn decode_header(header: &[u8], limits: &FrameLimits) -> Result<(u8, usize), WireError> {
    if header.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    if header[0..4] != MAGIC {
        let mut got = [0u8; 4];
        got.copy_from_slice(&header[0..4]);
        return Err(WireError::BadMagic { got });
    }
    if header[4] != PROTOCOL_VERSION {
        return Err(WireError::UnsupportedVersion { got: header[4] });
    }
    let kind = header[5];
    let len = u32::from_le_bytes(header[6..10].try_into().expect("4 bytes")) as usize;
    if len > limits.max_payload {
        return Err(WireError::FrameTooLarge {
            len: len as u64,
            max: limits.max_payload,
        });
    }
    Ok((kind, len))
}

/// Decodes one complete frame from `buf`, returning the message and the
/// bytes consumed.
///
/// # Errors
///
/// Any [`WireError`]; [`WireError::Truncated`] when `buf` ends before
/// the announced payload does.
pub fn decode_frame(buf: &[u8], limits: &FrameLimits) -> Result<(Msg, usize), WireError> {
    let (kind, len) = decode_header(buf, limits)?;
    if buf.len() < HEADER_LEN + len {
        return Err(WireError::Truncated);
    }
    // The payload is decoded in place — no copy into an owned buffer.
    let payload = &buf[HEADER_LEN..HEADER_LEN + len];
    Ok((decode_payload(kind, payload)?, HEADER_LEN + len))
}

/// Writes `msg` as one frame to `w` and returns the frame's size in
/// bytes.
///
/// # Errors
///
/// Encoding errors plus [`WireError::Io`] from the writer.
pub fn write_frame(
    w: &mut impl std::io::Write,
    msg: &Msg,
    limits: &FrameLimits,
) -> Result<usize, WireError> {
    let frame = encode_frame(msg, limits)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(frame.len())
}

/// Reads one frame from `r` (blocking until a full frame or an error)
/// and returns the message plus the frame's size in bytes.
///
/// # Errors
///
/// Any [`WireError`]; a clean EOF before the first header byte is
/// reported as [`WireError::Io`] with
/// [`std::io::ErrorKind::UnexpectedEof`].
pub fn read_frame(
    r: &mut impl std::io::Read,
    limits: &FrameLimits,
) -> Result<(Msg, usize), WireError> {
    let mut payload = Vec::new();
    let (kind, frame_len) = read_raw_frame(r, &mut payload, limits)?;
    Ok((decode_payload(kind, &payload)?, frame_len))
}

/// Reads one frame from `r` into a caller-owned (pooled) payload buffer
/// without decoding it: `buf` is resized to the announced payload length
/// (reusing its capacity — a steady-state connection never reallocates)
/// and filled. Returns `(kind, frame size in bytes)`.
///
/// # Errors
///
/// Same as [`read_frame`]; an EOF **after** the first header byte (the
/// peer died inside a frame) is reported as
/// [`WireError::DisconnectedMidFrame`] rather than the generic I/O
/// error a clean between-frames close produces.
pub fn read_raw_frame(
    r: &mut impl std::io::Read,
    buf: &mut Vec<u8>,
    limits: &FrameLimits,
) -> Result<(u8, usize), WireError> {
    let mut header = [0u8; HEADER_LEN];
    // The header is read byte-counted rather than with `read_exact` so
    // a close at offset 0 (clean end of session) stays distinguishable
    // from a close inside the header (peer died mid-frame).
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 {
                    WireError::Io {
                        kind: std::io::ErrorKind::UnexpectedEof,
                        detail: "clean eof before frame".into(),
                    }
                } else {
                    WireError::DisconnectedMidFrame {
                        got: filled,
                        want: HEADER_LEN,
                    }
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let (kind, len) = decode_header(&header, limits)?;
    buf.clear();
    buf.resize(len, 0);
    if let Err(e) = r.read_exact(buf) {
        return Err(if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::DisconnectedMidFrame {
                got: HEADER_LEN,
                want: HEADER_LEN + len,
            }
        } else {
            e.into()
        });
    }
    Ok((kind, HEADER_LEN + len))
}

/// Reads one frame via a caller-owned payload buffer and decodes it —
/// [`read_frame`] with buffer reuse for paths that need a full [`Msg`].
///
/// # Errors
///
/// Same as [`read_frame`].
pub fn read_frame_buffered(
    r: &mut impl std::io::Read,
    buf: &mut Vec<u8>,
    limits: &FrameLimits,
) -> Result<(Msg, usize), WireError> {
    let (kind, frame_len) = read_raw_frame(r, buf, limits)?;
    Ok((decode_payload(kind, buf)?, frame_len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Msg) {
        let limits = FrameLimits::default();
        let frame = encode_frame(&msg, &limits).unwrap();
        let (back, used) = decode_frame(&frame, &limits).unwrap();
        assert_eq!(used, frame.len());
        assert_eq!(back, msg);
    }

    #[test]
    fn all_kinds_roundtrip() {
        roundtrip(Msg::Hello {
            client_id: 3,
            state_len: 1234,
            num_samples: 300,
            resume: None,
        });
        roundtrip(Msg::Hello {
            client_id: 3,
            state_len: 1234,
            num_samples: 292,
            resume: Some(17),
        });
        roundtrip(Msg::Capabilities {
            max_payload: 1 << 20,
            state_len: 1234,
            agg_mode: 1,
            agg_param: 2,
            shard_tau: 3,
            shard_group: 4,
        });
        roundtrip(Msg::RoundAssign {
            mode: RoundMode::Train,
            round: 7,
            seed: 42,
            nonce: 0xABCD_EF01_2345_6789,
            cfg: TrainConfig::default(),
            global: vec![1.0, -2.5, f32::MIN_POSITIVE, 0.0],
        });
        roundtrip(Msg::Update {
            round: 7,
            client_id: 1,
            weight: 250,
            nonce: 99,
            state: vec![0.125; 33],
        });
        roundtrip(Msg::UnlearnAssign {
            serial: 4,
            job: UnlearnJob {
                local: GoldfishLocalConfig::default(),
                hard: Some(HardLossSpec::Focal { gamma: 2.0 }),
            },
            removed: vec![0, 5, 17],
            teacher: vec![-1.0; 9],
        });
        roundtrip(Msg::UnlearnResult {
            round: 0,
            client_id: 2,
            weight: 100,
            nonce: 7,
            state: vec![],
        });
        roundtrip(Msg::Eval {
            round: 3,
            accuracy: 0.875,
            mse: 0.023,
            global: vec![1.5; 4],
        });
        roundtrip(Msg::Err {
            code: err_code::BAD_STATE_LEN,
            detail: "want 10, got 12".into(),
        });
        roundtrip(Msg::Ack);
        let mut digest = [0u8; 32];
        for (i, b) in digest.iter_mut().enumerate() {
            *b = i as u8;
        }
        roundtrip(Msg::Digest { round: 11, digest });
        roundtrip(Msg::UnlearnAck { num_samples: 54 });
        roundtrip(Msg::Shutdown);
        roundtrip(Msg::ShardAssign {
            owner: 2,
            shard: 1,
            tau: 3,
            seed: 0xDEAD_BEEF,
            cfg: TrainConfig::default(),
            keep_rows: vec![0, 4, 9],
            checkpoint: vec![0.5, -0.25, 3.0],
        });
        roundtrip(Msg::ShardResult {
            owner: 2,
            shard: 1,
            state: vec![1.0, 2.0],
        });
    }

    #[test]
    fn header_rejections_are_typed() {
        let limits = FrameLimits::default();
        let msg = Msg::Hello {
            client_id: 0,
            state_len: 1,
            num_samples: 1,
            resume: None,
        };
        let mut frame = encode_frame(&msg, &limits).unwrap();

        assert_eq!(
            decode_frame(&frame[..5], &limits),
            Err(WireError::Truncated)
        );

        let mut bad = frame.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_frame(&bad, &limits),
            Err(WireError::BadMagic { .. })
        ));

        let mut bad = frame.clone();
        bad[4] = 99;
        assert_eq!(
            decode_frame(&bad, &limits),
            Err(WireError::UnsupportedVersion { got: 99 })
        );

        let mut bad = frame.clone();
        bad[5] = 200;
        assert_eq!(
            decode_frame(&bad, &limits),
            Err(WireError::UnknownKind(200))
        );

        // Oversized length prefix.
        frame[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&frame, &FrameLimits { max_payload: 1024 }),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn truncated_payload_is_typed() {
        let limits = FrameLimits::default();
        let frame = encode_frame(
            &Msg::Update {
                round: 1,
                client_id: 0,
                weight: 10,
                nonce: 0,
                state: vec![3.0; 100],
            },
            &limits,
        )
        .unwrap();
        for cut in [frame.len() - 1, frame.len() - 37, HEADER_LEN + 3] {
            assert_eq!(
                decode_frame(&frame[..cut], &limits),
                Err(WireError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversized_encode_is_rejected() {
        let tiny = FrameLimits { max_payload: 16 };
        let err = encode_frame(
            &Msg::Update {
                round: 0,
                client_id: 0,
                weight: 0,
                nonce: 0,
                state: vec![0.0; 64],
            },
            &tiny,
        )
        .unwrap_err();
        assert!(matches!(err, WireError::FrameTooLarge { .. }));
    }

    #[test]
    fn custom_loss_cannot_encode() {
        let err = encode_frame(
            &Msg::UnlearnAssign {
                serial: 0,
                job: UnlearnJob {
                    local: GoldfishLocalConfig::default(),
                    hard: None,
                },
                removed: vec![],
                teacher: vec![],
            },
            &FrameLimits::default(),
        )
        .unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)));
    }

    #[test]
    fn borrowed_encoders_match_msg_encoding_byte_for_byte() {
        let limits = FrameLimits::default();
        let global: Vec<f32> = (0..1234).map(|i| (i as f32 * 0.11).sin()).collect();
        let cfg = TrainConfig::default();

        let mut buf = Vec::new();
        for (mode, round, seed) in [(RoundMode::Train, 3u64, 9u64), (RoundMode::Distill, 0, 42)] {
            let nonce = seed ^ 0x5A5A;
            let n = encode_round_assign_into(
                &mut buf, mode, round, seed, nonce, &cfg, &global, &limits,
            )
            .unwrap();
            let via_msg = encode_frame(
                &Msg::RoundAssign {
                    mode,
                    round,
                    seed,
                    nonce,
                    cfg,
                    global: global.clone(),
                },
                &limits,
            )
            .unwrap();
            assert_eq!(buf, via_msg);
            assert_eq!(n, via_msg.len());
        }

        let n = encode_eval_request_into(&mut buf, 7, &global, &limits).unwrap();
        let via_msg = encode_frame(
            &Msg::Eval {
                round: 7,
                accuracy: 0.0,
                mse: 0.0,
                global: global.clone(),
            },
            &limits,
        )
        .unwrap();
        assert_eq!(buf, via_msg);
        assert_eq!(n, via_msg.len());

        let job = UnlearnJob {
            local: GoldfishLocalConfig::default(),
            hard: Some(HardLossSpec::Focal { gamma: 1.5 }),
        };
        let removed = vec![2usize, 9, 31];
        let n = encode_unlearn_assign_into(&mut buf, 6, &job, &removed, &global, &limits).unwrap();
        let via_msg = encode_frame(
            &Msg::UnlearnAssign {
                serial: 6,
                job,
                removed: removed.iter().map(|&i| i as u64).collect(),
                teacher: global.clone(),
            },
            &limits,
        )
        .unwrap();
        assert_eq!(buf, via_msg);
        assert_eq!(n, via_msg.len());
    }

    #[test]
    fn pooled_update_decode_matches_msg_decode() {
        let limits = FrameLimits::default();
        let state: Vec<f32> = (0..513).map(|i| i as f32 * -0.25).collect();
        for distill in [false, true] {
            let msg = if distill {
                Msg::UnlearnResult {
                    round: 5,
                    client_id: 3,
                    weight: 99,
                    nonce: 0xFEED,
                    state: state.clone(),
                }
            } else {
                Msg::Update {
                    round: 5,
                    client_id: 3,
                    weight: 99,
                    nonce: 0xFEED,
                    state: state.clone(),
                }
            };
            let frame = encode_frame(&msg, &limits).unwrap();
            let (kind, len) = decode_header(&frame, &limits).unwrap();
            let mut pooled = vec![0.0f32; 7]; // wrong size on purpose; resized
            let header =
                decode_update_into(kind, &frame[HEADER_LEN..HEADER_LEN + len], &mut pooled)
                    .unwrap();
            assert_eq!(
                header,
                UpdateHeader {
                    round: 5,
                    client_id: 3,
                    weight: 99,
                    nonce: 0xFEED,
                    distill,
                }
            );
            assert_eq!(pooled, state);
        }
        // Non-update kinds are typed rejections.
        let frame = encode_frame(&Msg::Ack, &limits).unwrap();
        let (kind, _) = decode_header(&frame, &limits).unwrap();
        assert_eq!(
            decode_update_into(kind, &[], &mut Vec::new()),
            Err(WireError::UnknownKind(9))
        );
    }

    #[test]
    fn raw_frame_reads_reuse_the_buffer() {
        let limits = FrameLimits::default();
        let msg = Msg::Update {
            round: 1,
            client_id: 2,
            weight: 30,
            nonce: 4,
            state: vec![1.5; 64],
        };
        let frame = encode_frame(&msg, &limits).unwrap();
        let mut buf = Vec::new();
        let (kind, n) = read_raw_frame(&mut frame.as_slice(), &mut buf, &limits).unwrap();
        assert_eq!((kind, n), (4, frame.len()));
        assert_eq!(&buf[..], &frame[HEADER_LEN..]);
        let cap = buf.capacity();
        let (back, n2) = read_frame_buffered(&mut frame.as_slice(), &mut buf, &limits).unwrap();
        assert_eq!(back, msg);
        assert_eq!(n2, frame.len());
        assert_eq!(buf.capacity(), cap, "payload buffer was reallocated");
    }

    #[test]
    fn eof_between_frames_vs_mid_frame_is_distinguished() {
        let limits = FrameLimits::default();
        let msg = Msg::Update {
            round: 1,
            client_id: 2,
            weight: 30,
            nonce: 4,
            state: vec![1.5; 16],
        };
        let frame = encode_frame(&msg, &limits).unwrap();
        let mut buf = Vec::new();

        // Clean close before any byte: generic UnexpectedEof.
        match read_raw_frame(&mut (&[] as &[u8]), &mut buf, &limits) {
            Err(WireError::Io { kind, .. }) => {
                assert_eq!(kind, std::io::ErrorKind::UnexpectedEof)
            }
            other => panic!("got {other:?}"),
        }

        // Close inside the header and inside the payload: typed
        // mid-frame disconnect.
        for cut in [1, HEADER_LEN - 1, HEADER_LEN + 1, frame.len() - 1] {
            match read_raw_frame(&mut &frame[..cut], &mut buf, &limits) {
                Err(WireError::DisconnectedMidFrame { want, .. }) => {
                    assert!(want > cut.min(HEADER_LEN), "cut at {cut}")
                }
                other => panic!("cut at {cut} gave {other:?}"),
            }
        }
    }

    #[test]
    fn stream_io_roundtrip() {
        let limits = FrameLimits::default();
        let msg = Msg::Eval {
            round: 9,
            accuracy: 1.0,
            mse: 0.0,
            global: vec![2.0; 7],
        };
        let mut buf = Vec::new();
        let wrote = write_frame(&mut buf, &msg, &limits).unwrap();
        let (back, read) = read_frame(&mut buf.as_slice(), &limits).unwrap();
        assert_eq!(wrote, read);
        assert_eq!(back, msg);
    }
}
