//! The worker daemon's client-side state machine.
//!
//! A worker owns one client's local dataset and answers the
//! coordinator's messages:
//!
//! ```text
//!            ┌────────────── Training ◄──────────────┐
//!            │   RoundAssign(Train) → Update         │ RoundAssign(Train)
//!            │   Eval              → Eval            │ (drops distill state)
//!            ▼                                       │
//!   UnlearnAssign (build ClientDistiller) ──► Unlearning
//!                RoundAssign(Distill) → UnlearnResult
//! ```
//!
//! The per-round compute is the library's own: `train_local_ce` for
//! training rounds and [`ClientDistiller::round`] for distillation
//! rounds — the exact functions the in-process loopback transport runs,
//! which is what makes a TCP federation bitwise identical to a loopback
//! one.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use goldfish_core::transport::ClientDistiller;
use goldfish_core::ClientSplit;
use goldfish_data::Dataset;
use goldfish_fed::trainer::train_local_ce;
use goldfish_fed::transport::client_seed;
use goldfish_fed::{eval, ModelFactory};

use crate::digest::DIGEST_LEN;
use crate::wire::{
    self, decode_msg, encode_frame_into, err_code, read_frame, read_raw_frame, write_frame,
    FrameLimits, Msg, RoundMode, WireError,
};

/// The worker-side state machine: one logical client, independent of how
/// its messages arrive (a socket in production, a byte buffer in tests).
pub struct WorkerRuntime {
    client_id: usize,
    factory: ModelFactory,
    data: Dataset,
    state_len: usize,
    distiller: Option<ClientDistiller>,
    /// Last round this worker answered — the `Hello` resume token after
    /// a reconnect (`None` until the first answered round).
    last_round: Option<u64>,
    /// The most recent applied deletion batch: its drain serial plus the
    /// resulting split. A re-shipped `UnlearnAssign` carrying the same
    /// serial (coordinator crash-restart re-draining the batch it never
    /// committed) reuses this instead of shrinking the dataset twice.
    last_unlearn: Option<(u64, ClientSplit)>,
    /// Round cursor + global-state digest the coordinator announced at
    /// re-admission (the `Digest` frame), for post-run verification.
    resume_digest: Option<(u64, [u8; DIGEST_LEN])>,
    /// Coordinator messages handled across all sessions (reconnect
    /// policies use it to tell progress from connect-fail loops).
    frames_handled: u64,
}

impl WorkerRuntime {
    /// Builds the runtime for one client.
    pub fn new(client_id: usize, factory: ModelFactory, data: Dataset) -> Self {
        let state_len = (factory)(0).state_len();
        WorkerRuntime {
            client_id,
            factory,
            data,
            state_len,
            distiller: None,
            last_round: None,
            last_unlearn: None,
            resume_digest: None,
            frames_handled: 0,
        }
    }

    /// This worker's client id.
    pub fn client_id(&self) -> usize {
        self.client_id
    }

    /// The model's state-vector length (announced in `Hello`).
    pub fn state_len(&self) -> usize {
        self.state_len
    }

    /// The last round this worker answered, if any — what its next
    /// `Hello` carries as the resume token.
    pub fn last_round(&self) -> Option<u64> {
        self.last_round
    }

    /// The `(round, digest)` the coordinator announced when this worker
    /// was re-admitted, if it ever reconnected mid-run.
    pub fn resume_digest(&self) -> Option<(u64, [u8; DIGEST_LEN])> {
        self.resume_digest
    }

    /// Coordinator messages handled across all sessions.
    pub fn frames_handled(&self) -> u64 {
        self.frames_handled
    }

    /// The introduction frame this worker opens a connection with. A
    /// worker that already answered rounds introduces itself with a
    /// resume token (client id + last answered round) so the
    /// coordinator re-admits it into its old slot.
    pub fn hello(&self) -> Msg {
        Msg::Hello {
            client_id: self.client_id as u64,
            state_len: self.state_len as u64,
            num_samples: self.data.len() as u64,
            resume: self.last_round,
        }
    }

    /// Handles one coordinator message and returns the reply to send.
    /// Protocol violations produce a [`Msg::Err`] reply (the caller
    /// should close the connection after sending one).
    pub fn handle(&mut self, msg: Msg) -> Msg {
        self.frames_handled += 1;
        match msg {
            Msg::RoundAssign {
                mode: RoundMode::Train,
                round,
                seed,
                nonce,
                cfg,
                global,
            } => {
                // A plain training round ends any unlearning request.
                self.distiller = None;
                if global.len() != self.state_len {
                    return bad_state_len(global.len(), self.state_len);
                }
                let s = client_seed(seed, self.client_id, round as usize);
                let mut net = (self.factory)(s);
                net.set_state_vector(&global);
                train_local_ce(&mut net, &self.data, &cfg, s);
                self.last_round = Some(round);
                Msg::Update {
                    round,
                    client_id: self.client_id as u64,
                    weight: self.data.len() as u64,
                    // The echoed nonce: the coordinator's admission
                    // layer matches it against the assignment to reject
                    // stale/replayed frames.
                    nonce,
                    state: net.state_vector(),
                }
            }
            Msg::UnlearnAssign {
                serial,
                job,
                removed,
                teacher,
            } => {
                if teacher.len() != self.state_len {
                    return bad_state_len(teacher.len(), self.state_len);
                }
                let hard = match job.hard {
                    Some(spec) => spec.build(),
                    None => {
                        return Msg::Err {
                            code: err_code::BAD_REQUEST,
                            detail: "unlearn job carries no wire-encodable hard loss".into(),
                        }
                    }
                };
                let split = if removed.is_empty() {
                    ClientSplit::intact(self.data.clone())
                } else if let Some((_, cached)) = self
                    .last_unlearn
                    .as_ref()
                    .filter(|(last, _)| *last == serial)
                {
                    // The same drain serial again: a coordinator that
                    // crashed before committing the batch re-drained it
                    // on recovery. The deletion already happened — reuse
                    // the cached split instead of shrinking twice (the
                    // shipped indices address the pre-deletion dataset,
                    // which no longer exists here).
                    cached.clone()
                } else {
                    if let Some(&bad) = removed.iter().find(|&&i| i as usize >= self.data.len()) {
                        return Msg::Err {
                            code: err_code::BAD_REQUEST,
                            detail: format!(
                                "removed index {bad} out of {} local samples",
                                self.data.len()
                            ),
                        };
                    }
                    let idx: Vec<usize> = removed.iter().map(|&i| i as usize).collect();
                    let split = ClientSplit::with_removed(&self.data, &idx);
                    // The deletion is permanent: once the request is
                    // assigned, the removed samples leave this worker's
                    // dataset — later training rounds must never touch
                    // them again.
                    self.data = split.remaining.clone();
                    self.last_unlearn = Some((serial, split.clone()));
                    split
                };
                self.distiller = Some(ClientDistiller::new(
                    self.client_id,
                    Arc::clone(&self.factory),
                    split,
                    teacher,
                    job.local,
                    hard,
                ));
                // The job is accepted; the distiller answers the coming
                // Distill assignments. The ack carries this worker's
                // authoritative remaining sample count — correct whether
                // the deletion was fresh or deduplicated by serial.
                Msg::UnlearnAck {
                    num_samples: self.data.len() as u64,
                }
            }
            Msg::RoundAssign {
                mode: RoundMode::Distill,
                round,
                seed,
                nonce,
                global,
                ..
            } => {
                if global.len() != self.state_len {
                    return bad_state_len(global.len(), self.state_len);
                }
                match self.distiller.as_mut() {
                    Some(d) => {
                        let update = d.round(&global, round as usize, seed);
                        self.last_round = Some(round);
                        Msg::UnlearnResult {
                            round,
                            client_id: update.client_id as u64,
                            weight: update.num_samples as u64,
                            nonce,
                            state: update.state,
                        }
                    }
                    None => Msg::Err {
                        code: err_code::NOT_UNLEARNING,
                        detail: "distill round without a preceding UnlearnAssign".into(),
                    },
                }
            }
            Msg::Digest { round, digest } => {
                // The coordinator's re-admission announcement: record
                // where the run stands and acknowledge.
                self.resume_digest = Some((round, digest));
                Msg::Ack
            }
            Msg::Eval { round, global, .. } => {
                if global.len() != self.state_len {
                    return bad_state_len(global.len(), self.state_len);
                }
                let mut net = (self.factory)(0);
                net.set_state_vector(&global);
                Msg::Eval {
                    round,
                    accuracy: eval::accuracy(&mut net, &self.data),
                    mse: eval::mse(&mut net, &self.data),
                    global: Vec::new(),
                }
            }
            Msg::ShardAssign {
                owner,
                shard,
                tau: _,
                seed,
                cfg,
                keep_rows,
                checkpoint,
            } => {
                // Shard retrain (DESIGN.md §16). `keep_rows` index the
                // owner's original data ordering; under the replica
                // data model a delegated executor holds the owner's
                // rows at the same indices, so the subset below works
                // identically for owner and delegate.
                if checkpoint.len() != self.state_len {
                    return bad_state_len(checkpoint.len(), self.state_len);
                }
                if let Some(&bad) = keep_rows.iter().find(|&&i| i as usize >= self.data.len()) {
                    return Msg::Err {
                        code: err_code::BAD_REQUEST,
                        detail: format!(
                            "shard keep-row {bad} out of range for {} local samples",
                            self.data.len()
                        ),
                    };
                }
                let idx: Vec<usize> = keep_rows.iter().map(|&i| i as usize).collect();
                let survived = self.data.subset(&idx);
                let state = goldfish_core::optimization::retrain_shard(
                    &self.factory,
                    &cfg,
                    &checkpoint,
                    &survived,
                    seed,
                );
                Msg::ShardResult {
                    owner,
                    shard,
                    state,
                }
            }
            other => Msg::Err {
                code: err_code::BAD_REQUEST,
                detail: format!("unexpected {} from coordinator", other.name()),
            },
        }
    }
}

impl std::fmt::Debug for WorkerRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WorkerRuntime(client {}, {} samples, {} params, unlearning: {})",
            self.client_id,
            self.data.len(),
            self.state_len,
            self.distiller.is_some()
        )
    }
}

fn bad_state_len(got: usize, want: usize) -> Msg {
    Msg::Err {
        code: err_code::BAD_STATE_LEN,
        detail: format!("state vector length {got}, this worker's model has {want}"),
    }
}

/// Connects to a coordinator, performs the `Hello`/`Capabilities`
/// handshake and serves assignments until the coordinator closes the
/// connection (clean shutdown) or a protocol error occurs.
///
/// # Errors
///
/// [`WireError`] on handshake or I/O failures; a coordinator-initiated
/// close is `Ok`.
pub fn run_worker(
    addr: &str,
    runtime: &mut WorkerRuntime,
    limits: &FrameLimits,
) -> Result<(), WireError> {
    let stream = TcpStream::connect(addr)?;
    serve_stream(stream, runtime, limits)
}

/// The connection loop over an established stream (what [`run_worker`]
/// runs after connecting; tests call it on in-process socket pairs).
///
/// # Errors
///
/// [`WireError`] on handshake or I/O failures.
pub fn serve_stream(
    mut stream: TcpStream,
    runtime: &mut WorkerRuntime,
    limits: &FrameLimits,
) -> Result<(), WireError> {
    stream.set_nodelay(true).ok();
    write_frame(&mut stream, &runtime.hello(), limits)?;
    let (reply, _) = read_frame(&mut stream, limits)?;
    match reply {
        Msg::Capabilities {
            state_len,
            agg_mode,
            agg_param,
            ..
        } => {
            if state_len as usize != runtime.state_len() {
                return Err(WireError::Malformed(format!(
                    "coordinator model has {state_len} params, ours has {}",
                    runtime.state_len()
                )));
            }
            // The negotiated aggregation mode: a worker that cannot
            // decode it would disagree with the coordinator about what
            // its updates feed, so it refuses the session.
            if goldfish_fed::aggregate::AggregationMode::from_wire(agg_mode, agg_param).is_none() {
                return Err(WireError::Malformed(format!(
                    "coordinator announced unknown aggregation mode {agg_mode} (param {agg_param})"
                )));
            }
        }
        Msg::Err { code, detail } => {
            return Err(WireError::Malformed(format!(
                "coordinator rejected hello (code {code}): {detail}"
            )))
        }
        other => {
            return Err(WireError::Malformed(format!(
                "expected Capabilities, got {}",
                other.name()
            )))
        }
    }
    // Connection-lifetime frame buffers: incoming payloads and outgoing
    // replies reuse the same allocations round after round.
    let mut rbuf: Vec<u8> = Vec::new();
    let mut wbuf: Vec<u8> = Vec::new();
    loop {
        // Bare EOF is NOT a clean end: a graceful coordinator sends
        // `Shutdown` first. EOF without it means the coordinator (or
        // the network) died, which must surface as an error so the
        // resilient loop can reconnect instead of exiting 0.
        let msg = read_raw_frame(&mut stream, &mut rbuf, limits)
            .and_then(|(kind, _)| decode_msg(kind, &rbuf))?;
        if matches!(msg, Msg::Shutdown) {
            return Ok(());
        }
        if let Msg::Err { code, detail } = &msg {
            return Err(WireError::Malformed(format!(
                "coordinator error (code {code}): {detail}"
            )));
        }
        let reply = runtime.handle(msg);
        let fatal = matches!(reply, Msg::Err { .. });
        encode_frame_into(&reply, &mut wbuf, limits)?;
        {
            use std::io::Write;
            stream.write_all(&wbuf)?;
            stream.flush()?;
        }
        if fatal {
            return Err(WireError::Malformed(wire::describe_err(&reply)));
        }
    }
}

/// Bounded-backoff policy of [`run_worker_resilient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Consecutive failed attempts (connect failure or a session that
    /// handled no message) before giving up. `1` = a single try.
    pub max_attempts: u32,
    /// Delay before the first retry; doubles per consecutive failure.
    pub initial_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Jitter seed — typically the worker's client id, so a
    /// mass-disconnect spreads the fleet's retries across the backoff
    /// window instead of thundering-herding the coordinator. The
    /// schedule stays fully deterministic per `(seed, attempt)`.
    pub jitter_seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            max_attempts: 20,
            initial_delay: Duration::from_millis(100),
            max_delay: Duration::from_secs(2),
            jitter_seed: 0,
        }
    }
}

/// Deterministic seeded jitter for one reconnect attempt: maps the
/// exponential-backoff `delay` into `[delay/2, delay)` using a
/// splitmix64 hash of `(seed, attempt)`. Same inputs, same output —
/// reconnect schedules are reproducible — while distinct seeds (one per
/// worker) decorrelate the fleet.
pub fn jittered_backoff(seed: u64, attempt: u32, delay: Duration) -> Duration {
    let nanos = delay.as_nanos().min(u64::MAX as u128) as u64;
    let half = nanos / 2;
    let span = nanos - half;
    if half == 0 {
        // Sub-2ns delays have no jitter window; pass through.
        return delay;
    }
    let mut z = seed
        .wrapping_mul(0x0100_0000_01B3)
        .wrapping_add(attempt as u64)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    Duration::from_nanos(half + z % span)
}

/// Why a worker gave up on its coordinator — the worker daemon's exit
/// status derives from the variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerSessionError {
    /// The coordinator answered but refused this worker (handshake
    /// rejection or a protocol violation). Retrying cannot help.
    Rejected {
        /// Human-readable rejection/violation text.
        detail: String,
    },
    /// The connection (or the coordinator) went away and the reconnect
    /// budget ran out.
    Disconnected {
        /// The last transport failure observed.
        detail: String,
    },
}

impl std::fmt::Display for WorkerSessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerSessionError::Rejected { detail } => {
                write!(f, "coordinator rejected this worker: {detail}")
            }
            WorkerSessionError::Disconnected { detail } => {
                write!(
                    f,
                    "coordinator unreachable, reconnect budget exhausted: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for WorkerSessionError {}

/// [`run_worker`] with crash resilience: a lost connection (including a
/// coordinator that died mid-frame) is retried under `policy` with
/// exponential backoff, re-introducing the runtime with its resume
/// token. Any session that handles at least one message refills the
/// attempt budget, so a long-lived worker survives any number of
/// *separate* coordinator restarts while a dead coordinator still fails
/// fast.
///
/// # Errors
///
/// [`WorkerSessionError::Rejected`] on a handshake rejection or
/// protocol violation (never retried);
/// [`WorkerSessionError::Disconnected`] when the budget runs out.
pub fn run_worker_resilient(
    addr: &str,
    runtime: &mut WorkerRuntime,
    limits: &FrameLimits,
    policy: ReconnectPolicy,
) -> Result<(), WorkerSessionError> {
    let mut attempts = 0u32;
    let mut delay = policy.initial_delay;
    loop {
        let before = runtime.frames_handled();
        let outcome = TcpStream::connect(addr)
            .map_err(WireError::from)
            .and_then(|stream| serve_stream(stream, runtime, limits));
        let detail = match outcome {
            Ok(()) => return Ok(()),
            // Malformed covers handshake rejections and protocol-level
            // faults: deterministic, so retrying is useless.
            Err(WireError::Malformed(detail)) => {
                return Err(WorkerSessionError::Rejected { detail })
            }
            Err(e) => e.to_string(),
        };
        if runtime.frames_handled() > before {
            // The session made progress before dying — a fresh outage,
            // not a continuation of the previous one.
            attempts = 0;
            delay = policy.initial_delay;
        }
        attempts += 1;
        if attempts >= policy.max_attempts {
            return Err(WorkerSessionError::Disconnected { detail });
        }
        std::thread::sleep(jittered_backoff(policy.jitter_seed, attempts, delay));
        delay = (delay * 2).min(policy.max_delay);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::DemoSpec;
    use goldfish_core::basic_model::GoldfishLocalConfig;
    use goldfish_core::transport::UnlearnJob;
    use goldfish_nn::loss::HardLossSpec;

    fn runtime() -> (WorkerRuntime, DemoSpec) {
        let spec = DemoSpec {
            clients: 2,
            samples_per_client: 40,
            test_samples: 20,
            seed: 6,
        };
        (
            WorkerRuntime::new(1, spec.factory(), spec.client_shard(1)),
            spec,
        )
    }

    #[test]
    fn train_round_matches_local_execution() {
        let (mut w, spec) = runtime();
        let factory = spec.factory();
        let global = (factory)(3).state_vector();
        let cfg = spec.train_config();
        let reply = w.handle(Msg::RoundAssign {
            mode: RoundMode::Train,
            round: 2,
            seed: 11,
            nonce: 0xFACE,
            cfg,
            global: global.clone(),
        });
        let Msg::Update {
            round,
            client_id,
            weight,
            nonce,
            state,
        } = reply
        else {
            panic!("expected Update, got {reply:?}");
        };
        // The worker echoes the assignment's nonce verbatim.
        assert_eq!((round, client_id, weight, nonce), (2, 1, 40, 0xFACE));
        let s = client_seed(11, 1, 2);
        let mut net = (factory)(s);
        net.set_state_vector(&global);
        train_local_ce(&mut net, &spec.client_shard(1), &cfg, s);
        assert_eq!(state, net.state_vector());
    }

    #[test]
    fn shard_assign_matches_local_retrain_and_validates() {
        let (mut w, spec) = runtime();
        let factory = spec.factory();
        let checkpoint = (factory)(9).state_vector();
        let cfg = spec.train_config();
        let keep_rows: Vec<u64> = vec![0, 3, 7, 11];
        let reply = w.handle(Msg::ShardAssign {
            owner: 1,
            shard: 2,
            tau: 4,
            seed: 77,
            cfg,
            keep_rows: keep_rows.clone(),
            checkpoint: checkpoint.clone(),
        });
        let Msg::ShardResult {
            owner,
            shard,
            state,
        } = reply
        else {
            panic!("expected ShardResult, got {reply:?}");
        };
        assert_eq!((owner, shard), (1, 2));
        let idx: Vec<usize> = keep_rows.iter().map(|&i| i as usize).collect();
        let survived = spec.client_shard(1).subset(&idx);
        let expect =
            goldfish_core::optimization::retrain_shard(&factory, &cfg, &checkpoint, &survived, 77);
        assert_eq!(state, expect);

        // Mismatched checkpoint length and out-of-range rows are typed
        // rejections, not panics.
        let reply = w.handle(Msg::ShardAssign {
            owner: 1,
            shard: 0,
            tau: 4,
            seed: 1,
            cfg,
            keep_rows: vec![0],
            checkpoint: vec![0.0; 3],
        });
        assert!(
            matches!(reply, Msg::Err { code, .. } if code == err_code::BAD_STATE_LEN),
            "got {reply:?}"
        );
        let reply = w.handle(Msg::ShardAssign {
            owner: 1,
            shard: 0,
            tau: 4,
            seed: 1,
            cfg,
            keep_rows: vec![40],
            checkpoint,
        });
        assert!(
            matches!(reply, Msg::Err { code, .. } if code == err_code::BAD_REQUEST),
            "got {reply:?}"
        );
    }

    #[test]
    fn distill_requires_assignment() {
        let (mut w, spec) = runtime();
        let global = (spec.factory())(3).state_vector();
        let reply = w.handle(Msg::RoundAssign {
            mode: RoundMode::Distill,
            round: 0,
            seed: 0,
            nonce: 0,
            cfg: spec.train_config(),
            global,
        });
        assert!(matches!(
            reply,
            Msg::Err {
                code: err_code::NOT_UNLEARNING,
                ..
            }
        ));
    }

    #[test]
    fn unlearn_flow_runs_and_train_exits_it() {
        let (mut w, spec) = runtime();
        let teacher = (spec.factory())(3).state_vector();
        let job = UnlearnJob {
            local: GoldfishLocalConfig {
                epochs: 1,
                batch_size: 20,
                ..GoldfishLocalConfig::default()
            },
            hard: Some(HardLossSpec::CrossEntropy),
        };
        let ack = w.handle(Msg::UnlearnAssign {
            serial: 0,
            job,
            removed: vec![0, 3],
            teacher: teacher.clone(),
        });
        // The ack reports the post-deletion dataset size (worker truth).
        assert!(matches!(ack, Msg::UnlearnAck { num_samples: 38 }));
        let reply = w.handle(Msg::RoundAssign {
            mode: RoundMode::Distill,
            round: 0,
            seed: 5,
            nonce: 21,
            cfg: spec.train_config(),
            global: teacher.clone(),
        });
        let Msg::UnlearnResult { weight, nonce, .. } = reply else {
            panic!("expected UnlearnResult, got {reply:?}");
        };
        assert_eq!((weight, nonce), (38, 21)); // 40 - 2 removed, nonce echoed

        // A training assignment exits unlearning mode — and trains on
        // the post-deletion dataset (the removal is permanent).
        let reply = w.handle(Msg::RoundAssign {
            mode: RoundMode::Train,
            round: 1,
            seed: 5,
            nonce: 0,
            cfg: spec.train_config(),
            global: teacher.clone(),
        });
        let Msg::Update { weight, .. } = reply else {
            panic!("expected Update, got {reply:?}");
        };
        assert_eq!(weight, 38);
        // …so a further distill round is a protocol error again.
        let reply = w.handle(Msg::RoundAssign {
            mode: RoundMode::Distill,
            round: 1,
            seed: 5,
            nonce: 0,
            cfg: spec.train_config(),
            global: teacher,
        });
        assert!(matches!(reply, Msg::Err { .. }));
    }

    #[test]
    fn bad_requests_are_typed() {
        let (mut w, spec) = runtime();
        let reply = w.handle(Msg::RoundAssign {
            mode: RoundMode::Train,
            round: 0,
            seed: 0,
            nonce: 0,
            cfg: spec.train_config(),
            global: vec![0.0; 3],
        });
        assert!(matches!(
            reply,
            Msg::Err {
                code: err_code::BAD_STATE_LEN,
                ..
            }
        ));
        let teacher = (spec.factory())(0).state_vector();
        let reply = w.handle(Msg::UnlearnAssign {
            serial: 0,
            job: UnlearnJob {
                local: GoldfishLocalConfig::default(),
                hard: Some(HardLossSpec::CrossEntropy),
            },
            removed: vec![10_000],
            teacher,
        });
        assert!(matches!(
            reply,
            Msg::Err {
                code: err_code::BAD_REQUEST,
                ..
            }
        ));
        let reply = w.handle(Msg::Hello {
            client_id: 0,
            state_len: 0,
            num_samples: 0,
            resume: None,
        });
        assert!(matches!(reply, Msg::Err { .. }));
    }

    #[test]
    fn eval_reports_local_metrics() {
        let (mut w, spec) = runtime();
        let global = (spec.factory())(3).state_vector();
        let reply = w.handle(Msg::Eval {
            round: 4,
            accuracy: 0.0,
            mse: 0.0,
            global,
        });
        let Msg::Eval {
            round,
            accuracy,
            mse,
            global,
        } = reply
        else {
            panic!("expected Eval, got {reply:?}");
        };
        assert_eq!(round, 4);
        assert!((0.0..=1.0).contains(&accuracy));
        assert!(mse > 0.0);
        assert!(global.is_empty());
    }

    #[test]
    fn jittered_backoff_is_bounded_and_deterministic() {
        for seed in 0..8u64 {
            for attempt in 0..12u32 {
                for ms in [1u64, 3, 100, 2000] {
                    let delay = Duration::from_millis(ms);
                    let j = jittered_backoff(seed, attempt, delay);
                    assert!(j >= delay / 2, "jitter below half: {j:?} < {delay:?}/2");
                    assert!(
                        j < delay,
                        "jitter not strictly below delay: {j:?} >= {delay:?}"
                    );
                    // Deterministic: same inputs, same schedule.
                    assert_eq!(j, jittered_backoff(seed, attempt, delay));
                }
            }
        }
        // A sub-2ns delay has no room to jitter and passes through.
        assert_eq!(
            jittered_backoff(1, 1, Duration::from_nanos(1)),
            Duration::from_nanos(1)
        );
        // Distinct seeds decorrelate: not every worker picks the same
        // point in the window.
        let d = Duration::from_millis(400);
        let picks: std::collections::BTreeSet<Duration> =
            (0..16).map(|s| jittered_backoff(s, 3, d)).collect();
        assert!(picks.len() > 8, "seeds collapsed to {} values", picks.len());
    }
}
