//! The worker daemon's client-side state machine.
//!
//! A worker owns one client's local dataset and answers the
//! coordinator's messages:
//!
//! ```text
//!            ┌────────────── Training ◄──────────────┐
//!            │   RoundAssign(Train) → Update         │ RoundAssign(Train)
//!            │   Eval              → Eval            │ (drops distill state)
//!            ▼                                       │
//!   UnlearnAssign (build ClientDistiller) ──► Unlearning
//!                RoundAssign(Distill) → UnlearnResult
//! ```
//!
//! The per-round compute is the library's own: `train_local_ce` for
//! training rounds and [`ClientDistiller::round`] for distillation
//! rounds — the exact functions the in-process loopback transport runs,
//! which is what makes a TCP federation bitwise identical to a loopback
//! one.

use std::net::TcpStream;
use std::sync::Arc;

use goldfish_core::transport::ClientDistiller;
use goldfish_core::ClientSplit;
use goldfish_data::Dataset;
use goldfish_fed::trainer::train_local_ce;
use goldfish_fed::transport::client_seed;
use goldfish_fed::{eval, ModelFactory};

use crate::wire::{
    self, decode_msg, encode_frame_into, err_code, read_frame, read_raw_frame, write_frame,
    FrameLimits, Msg, RoundMode, WireError,
};

/// The worker-side state machine: one logical client, independent of how
/// its messages arrive (a socket in production, a byte buffer in tests).
pub struct WorkerRuntime {
    client_id: usize,
    factory: ModelFactory,
    data: Dataset,
    state_len: usize,
    distiller: Option<ClientDistiller>,
}

impl WorkerRuntime {
    /// Builds the runtime for one client.
    pub fn new(client_id: usize, factory: ModelFactory, data: Dataset) -> Self {
        let state_len = (factory)(0).state_len();
        WorkerRuntime {
            client_id,
            factory,
            data,
            state_len,
            distiller: None,
        }
    }

    /// This worker's client id.
    pub fn client_id(&self) -> usize {
        self.client_id
    }

    /// The model's state-vector length (announced in `Hello`).
    pub fn state_len(&self) -> usize {
        self.state_len
    }

    /// The introduction frame this worker opens a connection with.
    pub fn hello(&self) -> Msg {
        Msg::Hello {
            client_id: self.client_id as u64,
            state_len: self.state_len as u64,
            num_samples: self.data.len() as u64,
        }
    }

    /// Handles one coordinator message and returns the reply to send.
    /// Protocol violations produce a [`Msg::Err`] reply (the caller
    /// should close the connection after sending one).
    pub fn handle(&mut self, msg: Msg) -> Msg {
        match msg {
            Msg::RoundAssign {
                mode: RoundMode::Train,
                round,
                seed,
                cfg,
                global,
            } => {
                // A plain training round ends any unlearning request.
                self.distiller = None;
                if global.len() != self.state_len {
                    return bad_state_len(global.len(), self.state_len);
                }
                let s = client_seed(seed, self.client_id, round as usize);
                let mut net = (self.factory)(s);
                net.set_state_vector(&global);
                train_local_ce(&mut net, &self.data, &cfg, s);
                Msg::Update {
                    round,
                    client_id: self.client_id as u64,
                    weight: self.data.len() as u64,
                    state: net.state_vector(),
                }
            }
            Msg::UnlearnAssign {
                job,
                removed,
                teacher,
            } => {
                if teacher.len() != self.state_len {
                    return bad_state_len(teacher.len(), self.state_len);
                }
                if let Some(&bad) = removed.iter().find(|&&i| i as usize >= self.data.len()) {
                    return Msg::Err {
                        code: err_code::BAD_REQUEST,
                        detail: format!(
                            "removed index {bad} out of {} local samples",
                            self.data.len()
                        ),
                    };
                }
                let hard = match job.hard {
                    Some(spec) => spec.build(),
                    None => {
                        return Msg::Err {
                            code: err_code::BAD_REQUEST,
                            detail: "unlearn job carries no wire-encodable hard loss".into(),
                        }
                    }
                };
                let split = if removed.is_empty() {
                    ClientSplit::intact(self.data.clone())
                } else {
                    let idx: Vec<usize> = removed.iter().map(|&i| i as usize).collect();
                    let split = ClientSplit::with_removed(&self.data, &idx);
                    // The deletion is permanent: once the request is
                    // assigned, the removed samples leave this worker's
                    // dataset — later training rounds must never touch
                    // them again.
                    self.data = split.remaining.clone();
                    split
                };
                self.distiller = Some(ClientDistiller::new(
                    self.client_id,
                    Arc::clone(&self.factory),
                    split,
                    teacher,
                    job.local,
                    hard,
                ));
                // The job is accepted; the distiller answers the coming
                // Distill assignments.
                Msg::Ack
            }
            Msg::RoundAssign {
                mode: RoundMode::Distill,
                round,
                seed,
                global,
                ..
            } => {
                if global.len() != self.state_len {
                    return bad_state_len(global.len(), self.state_len);
                }
                match self.distiller.as_mut() {
                    Some(d) => {
                        let update = d.round(&global, round as usize, seed);
                        Msg::UnlearnResult {
                            round,
                            client_id: update.client_id as u64,
                            weight: update.num_samples as u64,
                            state: update.state,
                        }
                    }
                    None => Msg::Err {
                        code: err_code::NOT_UNLEARNING,
                        detail: "distill round without a preceding UnlearnAssign".into(),
                    },
                }
            }
            Msg::Eval { round, global, .. } => {
                if global.len() != self.state_len {
                    return bad_state_len(global.len(), self.state_len);
                }
                let mut net = (self.factory)(0);
                net.set_state_vector(&global);
                Msg::Eval {
                    round,
                    accuracy: eval::accuracy(&mut net, &self.data),
                    mse: eval::mse(&mut net, &self.data),
                    global: Vec::new(),
                }
            }
            other => Msg::Err {
                code: err_code::BAD_REQUEST,
                detail: format!("unexpected {} from coordinator", other.name()),
            },
        }
    }
}

impl std::fmt::Debug for WorkerRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WorkerRuntime(client {}, {} samples, {} params, unlearning: {})",
            self.client_id,
            self.data.len(),
            self.state_len,
            self.distiller.is_some()
        )
    }
}

fn bad_state_len(got: usize, want: usize) -> Msg {
    Msg::Err {
        code: err_code::BAD_STATE_LEN,
        detail: format!("state vector length {got}, this worker's model has {want}"),
    }
}

/// Connects to a coordinator, performs the `Hello`/`Capabilities`
/// handshake and serves assignments until the coordinator closes the
/// connection (clean shutdown) or a protocol error occurs.
///
/// # Errors
///
/// [`WireError`] on handshake or I/O failures; a coordinator-initiated
/// close is `Ok`.
pub fn run_worker(
    addr: &str,
    runtime: &mut WorkerRuntime,
    limits: &FrameLimits,
) -> Result<(), WireError> {
    let stream = TcpStream::connect(addr)?;
    serve_stream(stream, runtime, limits)
}

/// The connection loop over an established stream (what [`run_worker`]
/// runs after connecting; tests call it on in-process socket pairs).
///
/// # Errors
///
/// [`WireError`] on handshake or I/O failures.
pub fn serve_stream(
    mut stream: TcpStream,
    runtime: &mut WorkerRuntime,
    limits: &FrameLimits,
) -> Result<(), WireError> {
    stream.set_nodelay(true).ok();
    write_frame(&mut stream, &runtime.hello(), limits)?;
    let (reply, _) = read_frame(&mut stream, limits)?;
    match reply {
        Msg::Capabilities { state_len, .. } => {
            if state_len as usize != runtime.state_len() {
                return Err(WireError::Malformed(format!(
                    "coordinator model has {state_len} params, ours has {}",
                    runtime.state_len()
                )));
            }
        }
        Msg::Err { code, detail } => {
            return Err(WireError::Malformed(format!(
                "coordinator rejected hello (code {code}): {detail}"
            )))
        }
        other => {
            return Err(WireError::Malformed(format!(
                "expected Capabilities, got {}",
                other.name()
            )))
        }
    }
    // Connection-lifetime frame buffers: incoming payloads and outgoing
    // replies reuse the same allocations round after round.
    let mut rbuf: Vec<u8> = Vec::new();
    let mut wbuf: Vec<u8> = Vec::new();
    loop {
        let msg = match read_raw_frame(&mut stream, &mut rbuf, limits)
            .and_then(|(kind, _)| decode_msg(kind, &rbuf))
        {
            Ok(msg) => msg,
            // A clean close after the handshake is the coordinator's
            // shutdown signal.
            Err(WireError::Io {
                kind: std::io::ErrorKind::UnexpectedEof,
                ..
            }) => return Ok(()),
            Err(e) => return Err(e),
        };
        if let Msg::Err { code, detail } = &msg {
            return Err(WireError::Malformed(format!(
                "coordinator error (code {code}): {detail}"
            )));
        }
        let reply = runtime.handle(msg);
        let fatal = matches!(reply, Msg::Err { .. });
        encode_frame_into(&reply, &mut wbuf, limits)?;
        {
            use std::io::Write;
            stream.write_all(&wbuf)?;
            stream.flush()?;
        }
        if fatal {
            return Err(WireError::Malformed(wire::describe_err(&reply)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::DemoSpec;
    use goldfish_core::basic_model::GoldfishLocalConfig;
    use goldfish_core::transport::UnlearnJob;
    use goldfish_nn::loss::HardLossSpec;

    fn runtime() -> (WorkerRuntime, DemoSpec) {
        let spec = DemoSpec {
            clients: 2,
            samples_per_client: 40,
            test_samples: 20,
            seed: 6,
        };
        (
            WorkerRuntime::new(1, spec.factory(), spec.client_shard(1)),
            spec,
        )
    }

    #[test]
    fn train_round_matches_local_execution() {
        let (mut w, spec) = runtime();
        let factory = spec.factory();
        let global = (factory)(3).state_vector();
        let cfg = spec.train_config();
        let reply = w.handle(Msg::RoundAssign {
            mode: RoundMode::Train,
            round: 2,
            seed: 11,
            cfg,
            global: global.clone(),
        });
        let Msg::Update {
            round,
            client_id,
            weight,
            state,
        } = reply
        else {
            panic!("expected Update, got {reply:?}");
        };
        assert_eq!((round, client_id, weight), (2, 1, 40));
        let s = client_seed(11, 1, 2);
        let mut net = (factory)(s);
        net.set_state_vector(&global);
        train_local_ce(&mut net, &spec.client_shard(1), &cfg, s);
        assert_eq!(state, net.state_vector());
    }

    #[test]
    fn distill_requires_assignment() {
        let (mut w, spec) = runtime();
        let global = (spec.factory())(3).state_vector();
        let reply = w.handle(Msg::RoundAssign {
            mode: RoundMode::Distill,
            round: 0,
            seed: 0,
            cfg: spec.train_config(),
            global,
        });
        assert!(matches!(
            reply,
            Msg::Err {
                code: err_code::NOT_UNLEARNING,
                ..
            }
        ));
    }

    #[test]
    fn unlearn_flow_runs_and_train_exits_it() {
        let (mut w, spec) = runtime();
        let teacher = (spec.factory())(3).state_vector();
        let job = UnlearnJob {
            local: GoldfishLocalConfig {
                epochs: 1,
                batch_size: 20,
                ..GoldfishLocalConfig::default()
            },
            hard: Some(HardLossSpec::CrossEntropy),
        };
        let ack = w.handle(Msg::UnlearnAssign {
            job,
            removed: vec![0, 3],
            teacher: teacher.clone(),
        });
        assert!(matches!(ack, Msg::Ack));
        let reply = w.handle(Msg::RoundAssign {
            mode: RoundMode::Distill,
            round: 0,
            seed: 5,
            cfg: spec.train_config(),
            global: teacher.clone(),
        });
        let Msg::UnlearnResult { weight, .. } = reply else {
            panic!("expected UnlearnResult, got {reply:?}");
        };
        assert_eq!(weight, 38); // 40 - 2 removed

        // A training assignment exits unlearning mode — and trains on
        // the post-deletion dataset (the removal is permanent).
        let reply = w.handle(Msg::RoundAssign {
            mode: RoundMode::Train,
            round: 1,
            seed: 5,
            cfg: spec.train_config(),
            global: teacher.clone(),
        });
        let Msg::Update { weight, .. } = reply else {
            panic!("expected Update, got {reply:?}");
        };
        assert_eq!(weight, 38);
        // …so a further distill round is a protocol error again.
        let reply = w.handle(Msg::RoundAssign {
            mode: RoundMode::Distill,
            round: 1,
            seed: 5,
            cfg: spec.train_config(),
            global: teacher,
        });
        assert!(matches!(reply, Msg::Err { .. }));
    }

    #[test]
    fn bad_requests_are_typed() {
        let (mut w, spec) = runtime();
        let reply = w.handle(Msg::RoundAssign {
            mode: RoundMode::Train,
            round: 0,
            seed: 0,
            cfg: spec.train_config(),
            global: vec![0.0; 3],
        });
        assert!(matches!(
            reply,
            Msg::Err {
                code: err_code::BAD_STATE_LEN,
                ..
            }
        ));
        let teacher = (spec.factory())(0).state_vector();
        let reply = w.handle(Msg::UnlearnAssign {
            job: UnlearnJob {
                local: GoldfishLocalConfig::default(),
                hard: Some(HardLossSpec::CrossEntropy),
            },
            removed: vec![10_000],
            teacher,
        });
        assert!(matches!(
            reply,
            Msg::Err {
                code: err_code::BAD_REQUEST,
                ..
            }
        ));
        let reply = w.handle(Msg::Hello {
            client_id: 0,
            state_len: 0,
            num_samples: 0,
        });
        assert!(matches!(reply, Msg::Err { .. }));
    }

    #[test]
    fn eval_reports_local_metrics() {
        let (mut w, spec) = runtime();
        let global = (spec.factory())(3).state_vector();
        let reply = w.handle(Msg::Eval {
            round: 4,
            accuracy: 0.0,
            mse: 0.0,
            global,
        });
        let Msg::Eval {
            round,
            accuracy,
            mse,
            global,
        } = reply
        else {
            panic!("expected Eval, got {reply:?}");
        };
        assert_eq!(round, 4);
        assert!((0.0..=1.0).contains(&accuracy));
        assert!(mse > 0.0);
        assert!(global.is_empty());
    }
}
