//! Crash-kill-restart: a coordinator killed mid-run and restarted from
//! its state directory resumes the **exact** round stream — recovered
//! globals are bitwise identical to an uninterrupted run's, no accepted
//! unlearning request is ever lost, and the audit chain comes out
//! byte-identical.
//!
//! The kills are injected with [`FaultyTransport`] (seeded,
//! deterministic), both mid-round and mid-drain, over loopback and over
//! real TCP with workers that reconnect and resume.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use goldfish_core::basic_model::GoldfishLocalConfig;
use goldfish_core::GoldfishUnlearning;
use goldfish_serve::audit;
use goldfish_serve::coordinator::{drain_seed, round_seed, Coordinator, CoordinatorConfig};
use goldfish_serve::demo::DemoSpec;
use goldfish_serve::durability::{audit_path, DurableStore};
use goldfish_serve::fault::{FaultPlan, FaultyTransport};
use goldfish_serve::queue::UnlearnRequest;
use goldfish_serve::tcp::{bind, TcpConfig, TcpTransport};
use goldfish_serve::transport::LoopbackTransport;
use goldfish_serve::wire::FrameLimits;
use goldfish_serve::worker::{serve_stream, WorkerRuntime};

const SEED: u64 = 7;
const ROUNDS: usize = 3;

fn spec() -> DemoSpec {
    DemoSpec {
        clients: 2,
        samples_per_client: 60,
        test_samples: 30,
        seed: 8,
    }
}

fn config(spec: &DemoSpec) -> CoordinatorConfig {
    CoordinatorConfig {
        train: spec.train_config(),
        method: GoldfishUnlearning::default().with_local(GoldfishLocalConfig {
            epochs: 1,
            batch_size: 20,
            lr: 0.05,
            momentum: 0.9,
            ..GoldfishLocalConfig::default()
        }),
        unlearn_rounds: 1,
        init_seed: 1,
        threads: Some(2),
        ..CoordinatorConfig::default()
    }
}

fn request() -> UnlearnRequest {
    UnlearnRequest::new(0, (0..6).collect())
}

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("goldfish-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn loopback_coordinator(
    spec: &DemoSpec,
    plan: FaultPlan,
) -> Coordinator<FaultyTransport<LoopbackTransport>> {
    let inner = LoopbackTransport::new(spec.factory(), spec.client_shards(), Some(2));
    Coordinator::new(
        spec.factory(),
        spec.test_set(),
        FaultyTransport::new(inner, plan),
        config(spec),
    )
}

/// The uninterrupted reference run (durability on, no faults): per-run
/// outputs every recovery scenario must reproduce bitwise.
struct Baseline {
    global: Vec<f32>,
    round_accuracies: Vec<f64>,
    unlearn_requests: Vec<Vec<UnlearnRequest>>,
    audit_bytes: Vec<u8>,
}

fn baseline(dir: &Path) -> Baseline {
    let spec = spec();
    let mut c = loopback_coordinator(&spec, FaultPlan::new());
    let (store, recovered) = DurableStore::open(dir).unwrap();
    assert!(!recovered.resumed);
    c.attach_durability(store, recovered).unwrap();
    c.submit_unlearn(request()).unwrap();
    let summary = c.run(ROUNDS, SEED).unwrap();
    Baseline {
        global: c.global_state().to_vec(),
        round_accuracies: summary.rounds.iter().map(|r| r.global_accuracy).collect(),
        unlearn_requests: summary
            .unlearns
            .iter()
            .map(|u| u.requests.clone())
            .collect(),
        audit_bytes: std::fs::read(audit_path(dir)).unwrap(),
    }
}

/// Bits, not approximate equality: the recovered stream must be the
/// same stream.
fn assert_global_bits(got: &[f32], want: &[f32]) {
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "global diverges at param {i}");
    }
}

#[test]
fn durability_does_not_perturb_the_run() {
    let dir = tmp_dir("noop");
    let base = baseline(&dir);
    // The same schedule with no durability at all.
    let spec = spec();
    let mut plain = loopback_coordinator(&spec, FaultPlan::new());
    plain.submit_unlearn(request()).unwrap();
    let summary = plain.run(ROUNDS, SEED).unwrap();
    assert_global_bits(plain.global_state(), &base.global);
    assert_eq!(
        summary
            .rounds
            .iter()
            .map(|r| r.global_accuracy)
            .collect::<Vec<_>>(),
        base.round_accuracies
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// One crash-kill-restart scenario over loopback: kill under `plan`,
/// recover into a fresh transport, finish the run, compare everything
/// bitwise against the uninterrupted baseline.
fn crash_and_recover(name: &str, plan: FaultPlan, expect_overdue_drain: bool) {
    let base_dir = tmp_dir(&format!("{name}-base"));
    let base = baseline(&base_dir);

    let dir = tmp_dir(name);
    let spec = spec();

    // --- the doomed run ---------------------------------------------------
    let mut doomed = loopback_coordinator(&spec, plan);
    let (store, recovered) = DurableStore::open(&dir).unwrap();
    doomed.attach_durability(store, recovered).unwrap();
    doomed.submit_unlearn(request()).unwrap();
    let err = doomed.run(ROUNDS, SEED).unwrap_err();
    assert!(
        err.to_string().contains("fault injection"),
        "expected an injected kill, got: {err}"
    );
    assert!(doomed.transport().killed());
    drop(doomed); // the crash: in-memory state is gone

    // --- recovery ---------------------------------------------------------
    let mut recovered_c = loopback_coordinator(&spec, FaultPlan::new());
    let (store, recovered) = DurableStore::open(&dir).unwrap();
    assert!(recovered.resumed);
    assert!(!recovered.fell_back);
    // No accepted request is ever lost: the submit is either already in
    // the audit chain (served) or still pending/replayed.
    let visible = recovered.pending.len() + recovered.replayed.len() + recovered.served.len();
    assert!(
        visible >= 1,
        "the accepted request vanished across the crash"
    );
    recovered_c.attach_durability(store, recovered).unwrap();
    assert_eq!(recovered_c.has_overdue_drain(), expect_overdue_drain);
    let resumed_summary = recovered_c.run(ROUNDS, SEED).unwrap();

    // --- bitwise comparison ----------------------------------------------
    assert_global_bits(recovered_c.global_state(), &base.global);
    // The resumed summary covers the tail of the stream; every entry it
    // has must match the baseline's corresponding slot exactly.
    let done_before = ROUNDS - resumed_summary.rounds.len();
    for (i, r) in resumed_summary.rounds.iter().enumerate() {
        assert_eq!(r.round, done_before + i);
        assert_eq!(r.global_accuracy, base.round_accuracies[done_before + i]);
    }
    let served: Vec<Vec<UnlearnRequest>> = resumed_summary
        .unlearns
        .iter()
        .map(|u| u.requests.clone())
        .collect();
    let base_tail: Vec<Vec<UnlearnRequest>> = base
        .unlearn_requests
        .iter()
        .skip(base.unlearn_requests.len() - served.len())
        .cloned()
        .collect();
    assert_eq!(served, base_tail);
    // The audit chain ends up byte-identical to the uninterrupted run's.
    assert_eq!(std::fs::read(audit_path(&dir)).unwrap(), base.audit_bytes);

    let _ = std::fs::remove_dir_all(&base_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_mid_run_between_rounds_recovers_bitwise() {
    // Ops: 0 = train r0, 1 = begin_unlearn, 2 = distill, 3 = train r1.
    // Kill before op 3: the drain committed, round 1 never ran.
    crash_and_recover("mid-run", FaultPlan::new().kill_before_at(3), false);
}

#[test]
fn kill_mid_drain_recovers_bitwise() {
    // Kill before op 2 (the distill round): the batch was staged and
    // shipped but never committed — recovery must re-drain it at the
    // original seed slot.
    crash_and_recover("mid-drain", FaultPlan::new().kill_before_at(2), true);
}

#[test]
fn kill_right_after_begin_unlearn_recovers_bitwise() {
    // Kill *after* op 1 completes on the inner transport: deletions are
    // applied worker-side, the coordinator dies before any distill
    // round. The re-drain re-ships the same batch (same serial).
    crash_and_recover("post-stage", FaultPlan::new().kill_after_at(1), true);
}

#[test]
fn tampered_audit_chain_is_detected() {
    let dir = tmp_dir("tamper");
    let _ = baseline(&dir);
    let path = audit_path(&dir);
    let clean = std::fs::read(&path).unwrap();
    assert!(audit::verify_file(&path).is_ok());
    // Flip one byte past the header — exactly what --verify-audit must
    // catch.
    let mut bytes = clean.clone();
    let at = bytes.len() - 9;
    bytes[at] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    assert!(audit::verify_file(&path).is_err());
    std::fs::write(&path, &clean).unwrap();
    assert!(audit::verify_file(&path).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The full networked scenario: the coordinator process "dies" mid-drain
/// (transport dropped, sockets gone), workers outlive it, reconnect with
/// resume tokens, and the restarted coordinator finishes the run —
/// bitwise identical to an uninterrupted loopback run, with the
/// re-shipped deletion batch deduplicated worker-side by its serial.
#[test]
fn tcp_crash_restart_with_worker_rejoin_resumes_bitwise() {
    let spec = DemoSpec {
        clients: 2,
        samples_per_client: 40,
        test_samples: 20,
        seed: 8,
    };
    let rounds = 2;
    let req = UnlearnRequest::new(0, (0..6).collect());

    // Uninterrupted loopback reference.
    let mut base = Coordinator::new(
        spec.factory(),
        spec.test_set(),
        LoopbackTransport::new(spec.factory(), spec.client_shards(), Some(2)),
        config(&spec),
    );
    base.submit_unlearn(req.clone()).unwrap();
    let base_summary = base.run(rounds, SEED).unwrap();
    let base_global = base.global_state().to_vec();

    let dir = tmp_dir("tcp");
    let (listener, addr) = bind("127.0.0.1:0").unwrap();
    let stop = Arc::new(AtomicBool::new(false));

    // Workers that outlive the coordinator: serve a session, and when
    // the connection dies, rejoin (Hello then carries the resume token).
    let workers: Vec<_> = (0..spec.clients)
        .map(|id| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut rt = WorkerRuntime::new(id, spec.factory(), spec.client_shard(id));
                let limits = FrameLimits::default();
                while !stop.load(Ordering::Relaxed) {
                    if let Ok(stream) = std::net::TcpStream::connect(&addr) {
                        let _ = serve_stream(stream, &mut rt, &limits);
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
                rt
            })
        })
        .collect();

    let state_len = (spec.factory())(0).state_len();
    let tcp_cfg = TcpConfig {
        read_timeout: Duration::from_secs(30),
        ..TcpConfig::default()
    };

    // Incarnation 1: dies right after shipping the deletion batch
    // (killed after begin_unlearn completes — workers have already
    // applied the deletion and acked, nothing is committed).
    {
        let tcp = TcpTransport::accept(&listener, spec.clients, state_len, tcp_cfg).unwrap();
        let faulty = FaultyTransport::new(tcp, FaultPlan::new().kill_after_at(1));
        let mut c1 = Coordinator::new(spec.factory(), spec.test_set(), faulty, config(&spec));
        let (store, recovered) = DurableStore::open(&dir).unwrap();
        c1.attach_durability(store, recovered).unwrap();
        c1.train_round(0, round_seed(SEED, 0)).unwrap();
        c1.submit_unlearn(req.clone()).unwrap();
        let err = c1.drain_unlearning(drain_seed(SEED, 0)).unwrap_err();
        assert!(err.to_string().contains("fault injection"));
        // c1 drops here: every worker connection closes abruptly.
    }

    // Incarnation 2: fresh process, same state dir, same listener port.
    // Workers rejoin through the ordinary accept handshake.
    let tcp = TcpTransport::accept(&listener, spec.clients, state_len, tcp_cfg).unwrap();
    let mut c2 = Coordinator::new(spec.factory(), spec.test_set(), tcp, config(&spec));
    let (store, recovered) = DurableStore::open(&dir).unwrap();
    assert!(recovered.resumed);
    assert_eq!(recovered.round_next, 1);
    assert_eq!(
        recovered.pending.len() + recovered.replayed.len(),
        1,
        "the accepted request must survive the crash"
    );
    c2.attach_durability(store, recovered).unwrap();
    assert!(c2.has_overdue_drain());
    let summary = c2.run(rounds, SEED).unwrap();

    // The resumed stream: the overdue drain (re-shipped at the same
    // serial, deduplicated worker-side) and round 1.
    assert_eq!(summary.unlearns.len(), 1);
    assert_eq!(
        summary.unlearns[0].requests,
        base_summary.unlearns[0].requests
    );
    assert_eq!(summary.rounds.len(), 1);
    assert_eq!(
        summary.rounds[0].global_accuracy,
        base_summary.rounds[1].global_accuracy
    );
    assert_global_bits(c2.global_state(), &base_global);
    assert!(audit::verify_file(&audit_path(&dir)).is_ok());

    stop.store(true, Ordering::Relaxed);
    drop(c2);
    drop(listener);
    for w in workers {
        let rt = w.join().unwrap();
        // Each worker reconnected at least once and carries a resume
        // token from its last answered round.
        assert!(rt.last_round().is_some());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A worker that answers a frame and then vanishes mid-frame must
/// surface as the typed `Disconnected`, not as a protocol error or a
/// clean shutdown (regression: mid-frame EOF used to be conflated with
/// the coordinator's shutdown signal).
#[test]
fn mid_frame_eof_is_a_typed_disconnect() {
    use goldfish_fed::transport::{RoundTransport, TrainAssign, TransportError};
    use goldfish_serve::wire::{encode_frame_into, read_frame, write_frame, Msg};
    use std::io::Write;

    let spec = spec();
    let state_len = (spec.factory())(0).state_len();
    let (listener, addr) = bind("127.0.0.1:0").unwrap();

    // A fake worker: completes the handshake, then answers the round
    // assignment with *half* an Update frame and dies.
    let half_frame = std::thread::spawn(move || {
        let mut stream = std::net::TcpStream::connect(&addr).unwrap();
        let limits = FrameLimits::default();
        let hello = Msg::Hello {
            client_id: 0,
            state_len: state_len as u64,
            num_samples: 40,
            resume: None,
        };
        write_frame(&mut stream, &hello, &limits).unwrap();
        let _ = read_frame(&mut stream, &limits).unwrap(); // Capabilities
        let _ = read_frame(&mut stream, &limits).unwrap(); // RoundAssign
        let mut frame = Vec::new();
        encode_frame_into(
            &Msg::Update {
                round: 0,
                client_id: 0,
                weight: 40,
                nonce: 0,
                state: vec![0.0; state_len],
            },
            &mut frame,
            &limits,
        )
        .unwrap();
        stream.write_all(&frame[..frame.len() / 2]).unwrap();
        stream.flush().unwrap();
        // Drop: the other half never arrives.
    });

    let tcp_cfg = TcpConfig {
        read_timeout: Duration::from_secs(10),
        ..TcpConfig::default()
    };
    let mut tcp = TcpTransport::accept(&listener, 1, state_len, tcp_cfg).unwrap();
    let cfg = spec.train_config();
    let global = vec![0.0f32; state_len];
    let results = tcp.train_round(&TrainAssign {
        round: 0,
        seed: 1,
        nonce: goldfish_fed::transport::round_nonce(1, 0),
        global: &global,
        cfg: &cfg,
    });
    assert_eq!(results.len(), 1);
    match &results[0] {
        Err(TransportError::Disconnected {
            client_id: 0,
            reason,
        }) => {
            assert!(
                reason.contains("mid-frame"),
                "disconnect reason should identify the torn frame, got: {reason}"
            );
        }
        other => panic!("expected a mid-frame Disconnected, got {other:?}"),
    }
    half_frame.join().unwrap();
}
