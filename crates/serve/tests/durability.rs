//! The corruption suite: every way a state directory can rot must
//! surface as a typed error or a clean fallback — never as a silently
//! wrong recovery.

use std::path::{Path, PathBuf};

use goldfish_core::basic_model::GoldfishLocalConfig;
use goldfish_core::GoldfishUnlearning;
use goldfish_serve::coordinator::{Coordinator, CoordinatorConfig};
use goldfish_serve::demo::DemoSpec;
use goldfish_serve::durability::{DurabilityError, DurableStore, CHECKPOINT_MAGIC};
use goldfish_serve::queue::UnlearnRequest;
use goldfish_serve::shard::{ShardPolicy, ShardTask};
use goldfish_serve::transport::LoopbackTransport;

fn spec() -> DemoSpec {
    DemoSpec {
        clients: 2,
        samples_per_client: 40,
        test_samples: 20,
        seed: 8,
    }
}

fn coordinator(spec: &DemoSpec) -> Coordinator<LoopbackTransport> {
    let transport = LoopbackTransport::new(spec.factory(), spec.client_shards(), Some(2));
    let cfg = CoordinatorConfig {
        train: spec.train_config(),
        method: GoldfishUnlearning::default().with_local(GoldfishLocalConfig {
            epochs: 1,
            batch_size: 20,
            lr: 0.05,
            momentum: 0.9,
            ..GoldfishLocalConfig::default()
        }),
        unlearn_rounds: 1,
        init_seed: 1,
        threads: Some(2),
        ..CoordinatorConfig::default()
    };
    Coordinator::new(spec.factory(), spec.test_set(), transport, cfg)
}

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("goldfish-durab-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Runs two committed rounds so the directory holds the maximum kept
/// checkpoint generations, then returns the final round cursor.
fn populate(dir: &Path) -> usize {
    let spec = spec();
    let mut c = coordinator(&spec);
    let (store, recovered) = DurableStore::open(dir).unwrap();
    c.attach_durability(store, recovered).unwrap();
    c.submit_unlearn(UnlearnRequest::new(0, (0..4).collect()))
        .unwrap();
    c.run(2, 7).unwrap();
    c.next_round()
}

fn checkpoints(dir: &Path) -> Vec<PathBuf> {
    let mut found: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "gfck"))
        .collect();
    // Name encodes the serial in zero-padded hex: lexicographic sort is
    // generation order, last = newest.
    found.sort();
    found
}

#[test]
fn truncated_newest_checkpoint_falls_back_one_generation() {
    let dir = tmp_dir("truncated");
    let rounds = populate(&dir);
    assert_eq!(rounds, 2);
    let files = checkpoints(&dir);
    assert!(files.len() >= 2, "expected two generations, got {files:?}");
    let newest = files.last().unwrap();
    let bytes = std::fs::read(newest).unwrap();
    std::fs::write(newest, &bytes[..bytes.len() / 2]).unwrap();

    let (_store, recovered) = DurableStore::open(&dir).unwrap();
    assert!(recovered.resumed);
    assert!(
        recovered.fell_back,
        "must recover from the previous generation"
    );
    assert!(
        recovered.round_next < rounds,
        "fallback state must predate the torn checkpoint"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checksum_falls_back_and_all_corrupt_fails_closed() {
    let dir = tmp_dir("checksum");
    populate(&dir);
    let files = checkpoints(&dir);
    assert!(files.len() >= 2);

    // Flip one byte in the newest body: checksum mismatch, fall back.
    let newest = files.last().unwrap();
    let mut bytes = std::fs::read(newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(newest, &bytes).unwrap();
    let (_s, recovered) = DurableStore::open(&dir).unwrap();
    assert!(recovered.resumed && recovered.fell_back);

    // Now corrupt every generation (at a fresh offset — the newest file
    // already has one flipped byte): recovery must refuse to guess.
    for f in &files {
        let mut b = std::fs::read(f).unwrap();
        let at = b.len() / 3;
        b[at] ^= 0x40;
        std::fs::write(f, &b).unwrap();
    }
    match DurableStore::open(&dir).map(|_| ()) {
        Err(DurabilityError::CheckpointChecksum { .. }) => {}
        other => panic!("expected CheckpointChecksum fail-closed, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_skew_and_bad_magic_are_typed() {
    let dir = tmp_dir("skew");
    populate(&dir);
    let files = checkpoints(&dir);
    let newest = files.last().unwrap().clone();
    let clean = std::fs::read(&newest).unwrap();

    // Patch the version field (bytes 4..8, checked before the
    // checksum): a future-format checkpoint is skew, not corruption.
    let mut skewed = clean.clone();
    skewed[4..8].copy_from_slice(&99u32.to_le_bytes());
    for f in &files {
        std::fs::write(f, &skewed).unwrap();
    }
    match DurableStore::open(&dir).map(|_| ()) {
        Err(DurabilityError::CheckpointVersionSkew { got: 99, .. }) => {}
        other => panic!("expected CheckpointVersionSkew, got {other:?}"),
    }

    // Wrong magic.
    let mut noise = clean.clone();
    noise[0..4].copy_from_slice(b"NOPE");
    assert_ne!(&noise[0..4], CHECKPOINT_MAGIC.as_slice());
    for f in &files {
        std::fs::write(f, &noise).unwrap();
    }
    match DurableStore::open(&dir).map(|_| ()) {
        Err(DurabilityError::CheckpointBadMagic { .. }) => {}
        other => panic!("expected CheckpointBadMagic, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_is_discarded_but_interior_corruption_fails_closed() {
    let dir = tmp_dir("wal");

    // Log two submits through the real coordinator path, noting the
    // WAL length after each so truncation points are exact.
    let wal = dir.join("queue.wal");
    let (clean, after_first) = {
        let spec = spec();
        let mut c = coordinator(&spec);
        let (store, recovered) = DurableStore::open(&dir).unwrap();
        c.attach_durability(store, recovered).unwrap();
        c.submit_unlearn(UnlearnRequest::new(0, vec![0, 1]))
            .unwrap();
        let after_first = std::fs::metadata(&wal).unwrap().len();
        c.submit_unlearn(UnlearnRequest::new(1, vec![2])).unwrap();
        (std::fs::read(&wal).unwrap(), after_first)
    };

    // Torn tail: the file ends inside the second record — that submit
    // was never acknowledged, so recovery silently drops it…
    std::fs::write(&wal, &clean[..clean.len() - 3]).unwrap();
    let (s, recovered) = DurableStore::open(&dir).unwrap();
    assert_eq!(recovered.replayed.len(), 1);
    assert_eq!(recovered.replayed[0].client_id, 0);
    drop(s);
    // …and truncates the file back to the last whole record so the
    // next append starts clean.
    assert_eq!(std::fs::metadata(&wal).unwrap().len(), after_first);

    // Interior corruption: a flipped byte in the *first* record is data
    // loss of an acknowledged submit — fail closed, typed.
    let mut bad = clean.clone();
    bad[12] ^= 0x01; // inside record 1's body
    std::fs::write(&wal, &bad).unwrap();
    match DurableStore::open(&dir).map(|_| ()) {
        Err(DurabilityError::WalCorrupt { .. }) => {}
        other => panic!("expected WalCorrupt, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_truncated_at_every_byte_offset_never_panics() {
    // The exhaustive form of the torn-tail property: for EVERY possible
    // crash point — the file cut at every byte offset from empty to
    // whole — recovery either replays exactly the acknowledged prefix
    // (the submits whose records are wholly inside the cut) or fails
    // closed with a typed header error. It never panics and never
    // invents or reorders a request.
    let dir = tmp_dir("every-offset");
    let wal = dir.join("queue.wal");

    // Three submits with distinct payload sizes so record boundaries
    // land at irregular offsets; no rounds, so recovery replays all.
    let reqs = vec![
        UnlearnRequest::new(0, vec![0, 1]),
        UnlearnRequest::new(1, vec![2, 3, 4, 5, 6]),
        UnlearnRequest::new(0, vec![7]),
    ];
    let mut boundaries = Vec::new(); // file length after each ack
    let clean = {
        let spec = spec();
        let mut c = coordinator(&spec);
        let (store, recovered) = DurableStore::open(&dir).unwrap();
        c.attach_durability(store, recovered).unwrap();
        for r in &reqs {
            c.submit_unlearn(r.clone()).unwrap();
            boundaries.push(std::fs::metadata(&wal).unwrap().len());
        }
        std::fs::read(&wal).unwrap()
    };
    assert_eq!(boundaries.last().copied(), Some(clean.len() as u64));

    for cut in 0..=clean.len() {
        std::fs::write(&wal, &clean[..cut]).unwrap();
        match DurableStore::open(&dir) {
            Ok((_s, recovered)) => {
                // Either the 8-byte WAL header survived the cut, or the
                // file was empty — a crash before the header write lost
                // no acknowledged submit, so a fresh start is correct.
                assert!(cut == 0 || cut >= 8, "cut at {cut} parsed a partial header");
                let acked = boundaries.iter().filter(|&&b| b <= cut as u64).count();
                assert_eq!(
                    recovered.replayed,
                    reqs[..acked],
                    "cut at {cut}: wrong replay prefix"
                );
                assert!(!recovered.resumed, "no checkpoint exists");
                // The torn tail was trimmed back to the last whole
                // record, so the next append starts clean.
                let healed = std::fs::metadata(&wal).unwrap().len();
                let expect = boundaries
                    .iter()
                    .filter(|&&b| b <= cut as u64)
                    .max()
                    .copied()
                    .unwrap_or(8);
                assert_eq!(healed, expect, "cut at {cut}: tail not trimmed");
            }
            Err(DurabilityError::WalHeader { .. }) => {
                // Only a partially-written header fails closed.
                assert!((1..8).contains(&cut), "cut at {cut} must parse");
            }
            Err(other) => panic!("cut at {cut}: unexpected error {other:?}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_wal_truncated_at_every_byte_offset_never_panics() {
    // The every-offset property again, but over kind-2 (shard-task)
    // records: a shard-mode submit logs one record per affected shard
    // in a single write+fsync, so a cut can land *inside* a multi-record
    // batch. Recovery must replay exactly the whole records inside the
    // cut — never a partial task — and trim the tail to the last whole
    // record boundary.
    let dir = tmp_dir("shard-every-offset");
    let wal = dir.join("queue.wal");

    // τ = 4: rows route to shard `row % 4`. The middle submit touches
    // two shards, producing a two-record batch whose interior boundary
    // no submit-level ack ever observed.
    let submits = vec![
        UnlearnRequest::new(0, vec![0, 4]),    // shard 0 only
        UnlearnRequest::new(1, vec![1, 2, 6]), // shards 1 and 2
        UnlearnRequest::new(0, vec![3]),       // shard 3 only
    ];
    let tasks = [
        ShardTask::new(0, 0, vec![0, 4]),
        ShardTask::new(1, 1, vec![1]),
        ShardTask::new(1, 2, vec![2, 6]),
        ShardTask::new(0, 3, vec![3]),
    ];
    let clean = {
        let spec = spec();
        let transport = LoopbackTransport::new(spec.factory(), spec.client_shards(), Some(2));
        let cfg = CoordinatorConfig {
            train: spec.train_config(),
            init_seed: 1,
            threads: Some(2),
            ..CoordinatorConfig::default()
        }
        .with_shards(ShardPolicy {
            tau: 4,
            group: 2,
            deadline_ms: 0,
        });
        let mut c = Coordinator::new(spec.factory(), spec.test_set(), transport, cfg);
        let (store, recovered) = DurableStore::open(&dir).unwrap();
        c.attach_durability(store, recovered).unwrap();
        for r in &submits {
            c.submit_unlearn(r.clone()).unwrap();
        }
        std::fs::read(&wal).unwrap()
    };

    // Reconstruct per-record boundaries from the length-prefix framing
    // (4-byte LE length, then body): boundaries[i] = file offset just
    // past record i.
    let mut boundaries = Vec::new();
    let mut off = 8usize; // WAL header
    while off < clean.len() {
        let len = u32::from_le_bytes(clean[off..off + 4].try_into().unwrap()) as usize;
        off += 4 + len;
        boundaries.push(off as u64);
    }
    assert_eq!(boundaries.len(), tasks.len(), "one record per shard task");
    assert_eq!(boundaries.last().copied(), Some(clean.len() as u64));

    for cut in 0..=clean.len() {
        std::fs::write(&wal, &clean[..cut]).unwrap();
        match DurableStore::open(&dir) {
            Ok((_s, recovered)) => {
                assert!(cut == 0 || cut >= 8, "cut at {cut} parsed a partial header");
                let whole = boundaries.iter().filter(|&&b| b <= cut as u64).count();
                assert_eq!(
                    recovered.replayed_shard,
                    tasks[..whole],
                    "cut at {cut}: wrong shard-task replay prefix"
                );
                assert!(
                    recovered.replayed.is_empty(),
                    "no whole-client records were ever logged"
                );
                assert!(!recovered.resumed, "no checkpoint exists");
                let healed = std::fs::metadata(&wal).unwrap().len();
                let expect = boundaries
                    .iter()
                    .filter(|&&b| b <= cut as u64)
                    .max()
                    .copied()
                    .unwrap_or(8);
                assert_eq!(healed, expect, "cut at {cut}: tail not trimmed");
            }
            Err(DurabilityError::WalHeader { .. }) => {
                assert!((1..8).contains(&cut), "cut at {cut} must parse");
            }
            Err(other) => panic!("cut at {cut}: unexpected error {other:?}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn v1_checkpoint_is_version_skew_not_corruption() {
    // CHECKPOINT_VERSION moved 1 → 2 when the shard section was added.
    // A v1 file must surface as typed skew (the version field is
    // checked before the checksum) — not be silently read without its
    // shard state, and not be misreported as corruption.
    let dir = tmp_dir("v1-skew");
    populate(&dir);
    let files = checkpoints(&dir);
    for f in &files {
        let mut bytes = std::fs::read(f).unwrap();
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        std::fs::write(f, &bytes).unwrap();
    }
    match DurableStore::open(&dir).map(|_| ()) {
        Err(DurabilityError::CheckpointVersionSkew { got: 1, .. }) => {}
        other => panic!("expected CheckpointVersionSkew for v1, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn submit_is_durable_before_acknowledgement() {
    let dir = tmp_dir("ack");
    let req = UnlearnRequest::new(1, vec![3, 4, 5]);
    {
        let spec = spec();
        let mut c = coordinator(&spec);
        let (store, recovered) = DurableStore::open(&dir).unwrap();
        c.attach_durability(store, recovered).unwrap();
        c.submit_unlearn(req.clone()).unwrap();
        // Crash immediately: no round, no drain, no checkpoint.
    }
    let (_s, recovered) = DurableStore::open(&dir).unwrap();
    assert!(!recovered.resumed, "no checkpoint was ever written");
    assert_eq!(recovered.replayed, vec![req]);
    let _ = std::fs::remove_dir_all(&dir);
}
