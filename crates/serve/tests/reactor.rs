//! Reactor-era regression gates (DESIGN.md §14).
//!
//! * The two thread-per-connection panic paths are gone, pinned by
//!   typed-behaviour tests: a listener torn down mid-run makes
//!   `admit_reconnects` admit zero (it used to unwrap a `None`
//!   listener), and a reply handler that panics becomes a typed
//!   per-client `Rejected(HandlerPanic)` failure — the worker is
//!   dropped, the coordinator finishes the round (it used to abort on a
//!   poisoned channel).
//! * Seeded cohort sampling over real TCP is bitwise identical to the
//!   sampled loopback run.
//! * The single-threaded worker fleet host serves a federation and
//!   winds down clean on `Shutdown`.

use goldfish_core::basic_model::GoldfishLocalConfig;
use goldfish_core::GoldfishUnlearning;
use goldfish_fed::transport::{RobustnessEvent, UpdateViolation};
use goldfish_serve::coordinator::{round_seed, Coordinator, CoordinatorConfig};
use goldfish_serve::demo::DemoSpec;
use goldfish_serve::fault::{ByzantineScript, FaultPlan, FaultyTransport};
use goldfish_serve::fleet::run_fleet;
use goldfish_serve::tcp::{bind, TcpConfig, TcpTransport};
use goldfish_serve::transport::{LoopbackTransport, ServeTransport};
use goldfish_serve::wire::FrameLimits;
use goldfish_serve::worker::{run_worker, WorkerRuntime};

const SEED: u64 = 42;

fn demo(clients: usize) -> DemoSpec {
    DemoSpec {
        clients,
        samples_per_client: 40,
        test_samples: 20,
        seed: 19,
    }
}

fn coordinator_config(spec: &DemoSpec) -> CoordinatorConfig {
    CoordinatorConfig {
        train: spec.train_config(),
        method: GoldfishUnlearning::default().with_local(GoldfishLocalConfig {
            epochs: 1,
            batch_size: 20,
            lr: 0.05,
            momentum: 0.9,
            ..GoldfishLocalConfig::default()
        }),
        unlearn_rounds: 1,
        init_seed: 1,
        threads: Some(2),
        ..CoordinatorConfig::default()
    }
}

/// Spawns `spec.clients` worker threads against an ephemeral listener
/// and returns the accepted transport plus the listener (for reconnect
/// wiring). Workers treat any disconnect as shutdown — some tests drop
/// them deliberately.
fn tcp_pair(
    spec: &DemoSpec,
) -> (
    TcpTransport,
    std::net::TcpListener,
    Vec<std::thread::JoinHandle<()>>,
) {
    let (listener, addr) = bind("127.0.0.1:0").unwrap();
    let mut workers = Vec::new();
    for id in 0..spec.clients {
        let spec = *spec;
        let addr = addr.clone();
        workers.push(std::thread::spawn(move || {
            let mut runtime = WorkerRuntime::new(id, spec.factory(), spec.client_shard(id));
            let _ = run_worker(&addr, &mut runtime, &FrameLimits::default());
        }));
    }
    let state_len = (spec.factory())(0).state_len();
    let transport =
        TcpTransport::accept(&listener, spec.clients, state_len, TcpConfig::default()).unwrap();
    (transport, listener, workers)
}

/// Regression: `admit_reconnects` on a transport whose listener was torn
/// down mid-run. The thread-per-connection layer unwrapped the listener
/// option here and panicked the coordinator; the reactor admits zero and
/// keeps serving.
#[test]
fn listener_teardown_mid_run_admits_zero_instead_of_panicking() {
    let spec = demo(2);
    let (mut transport, listener, workers) = tcp_pair(&spec);
    let global = (spec.factory())(1).state_vector();

    // Reconnect enabled, then the listener is torn down between rounds
    // (operator action / fd pressure / test harness reuse).
    transport.enable_reconnect(listener);
    assert!(transport.disable_reconnect().is_some());
    assert!(transport.disable_reconnect().is_none(), "second teardown");

    // The panic path: admit with no listener. Typed result, no unwrap.
    assert_eq!(transport.admit_reconnects(1, &global), 0);

    // The coordinator keeps serving full rounds afterwards.
    let mut c = Coordinator::new(
        spec.factory(),
        spec.test_set(),
        transport,
        coordinator_config(&spec),
    );
    let summary = c.train_round(0, round_seed(SEED, 0)).unwrap();
    assert_eq!(summary.client_sizes.len(), spec.clients);

    c.transport_mut().shutdown();
    drop(c);
    for w in workers {
        w.join().unwrap();
    }
}

/// Regression: a panic while the coordinator handles one client's reply
/// (scripted via `ByzantineScript::Panic`, unwinding out of the
/// aggregation sink exactly where a decode/fold bug would). The
/// thread-per-connection layer died on `rx.recv().expect(..)`; the
/// reactor contains it to a typed `Rejected(HandlerPanic)` for that
/// client, drops the connection, and finishes the round over the
/// survivors.
#[test]
fn reply_handler_panic_is_a_typed_per_client_failure() {
    let spec = demo(2);
    let (transport, _listener, workers) = tcp_pair(&spec);
    let transport = FaultyTransport::new(
        transport,
        FaultPlan::new().byzantine(1, ByzantineScript::Panic),
    );
    let mut c = Coordinator::new(
        spec.factory(),
        spec.test_set(),
        transport,
        coordinator_config(&spec),
    );

    // The round completes — over the survivor only.
    let summary = c.train_round(0, round_seed(SEED, 0)).unwrap();
    assert_eq!(summary.client_sizes, vec![spec.samples_per_client]);
    assert_eq!(c.transport().inner().live_clients(), vec![0]);

    // The panic surfaced as the typed violation, on the audit channel.
    assert!(
        c.robustness_log().iter().any(|e| matches!(
            e,
            RobustnessEvent::Violation {
                client_id: 1,
                violation: UpdateViolation::HandlerPanic,
                ..
            }
        )),
        "expected a HandlerPanic violation for client 1, got {:?}",
        c.robustness_log()
    );

    // Deterministic survivor round: equals a single-client loopback run.
    let mut lb = Coordinator::new(
        spec.factory(),
        spec.test_set(),
        LoopbackTransport::new(spec.factory(), vec![spec.client_shard(0)], Some(2)),
        coordinator_config(&spec),
    );
    lb.train_round(0, round_seed(SEED, 0)).unwrap();
    assert_eq!(c.global_state(), lb.global_state());

    c.transport_mut().shutdown();
    drop(c);
    for w in workers {
        w.join().unwrap();
    }
}

/// Seeded cohort sampling over real TCP sockets is bitwise identical to
/// the sampled loopback reference — same draws, same aggregates, round
/// after round.
#[test]
fn sampled_tcp_rounds_match_sampled_loopback_bitwise() {
    let spec = demo(6);
    let fraction = 0.5;
    let rounds = 2;

    fn run<T: ServeTransport>(mut c: Coordinator<T>, rounds: usize) -> Vec<f32> {
        for r in 0..rounds {
            let summary = c.train_round(r, round_seed(SEED, r)).unwrap();
            // ceil(0.5 · 6) = 3 members per round, never the full fleet.
            assert_eq!(summary.client_sizes.len(), 3);
        }
        let global = c.global_state().to_vec();
        c.transport_mut().shutdown();
        global
    }

    let lb = Coordinator::new(
        spec.factory(),
        spec.test_set(),
        LoopbackTransport::new(spec.factory(), spec.client_shards(), Some(2)),
        coordinator_config(&spec).with_cohort_fraction(fraction),
    );
    let want = run(lb, rounds);

    let (transport, _listener, workers) = tcp_pair(&spec);
    let tcp = Coordinator::new(
        spec.factory(),
        spec.test_set(),
        transport,
        coordinator_config(&spec).with_cohort_fraction(fraction),
    );
    let got = run(tcp, rounds);
    assert_eq!(got, want, "sampled TCP diverged from sampled loopback");

    for w in workers {
        w.join().unwrap();
    }
}

/// The single-threaded fleet host: eight worker runtimes on one thread
/// serve a sampled federation and all retire clean on `Shutdown`.
#[test]
fn fleet_host_serves_rounds_and_shuts_down_clean() {
    let spec = demo(8);
    let (listener, addr) = bind("127.0.0.1:0").unwrap();
    let fleet = std::thread::spawn(move || {
        let mut runtimes: Vec<WorkerRuntime> = (0..spec.clients)
            .map(|id| WorkerRuntime::new(id, spec.factory(), spec.client_shard(id)))
            .collect();
        run_fleet(&addr, &mut runtimes, &FrameLimits::default()).unwrap()
    });

    let state_len = (spec.factory())(0).state_len();
    let transport =
        TcpTransport::accept(&listener, spec.clients, state_len, TcpConfig::default()).unwrap();
    let mut c = Coordinator::new(
        spec.factory(),
        spec.test_set(),
        transport,
        coordinator_config(&spec).with_cohort_fraction(0.25),
    );
    for r in 0..2 {
        let summary = c.train_round(r, round_seed(SEED, r)).unwrap();
        assert_eq!(summary.client_sizes.len(), 2); // ceil(0.25 · 8)
    }
    c.transport_mut().shutdown();
    drop(c);

    let report = fleet.join().unwrap();
    assert_eq!(report.clean_shutdowns, spec.clients);
    assert_eq!(report.dropped, 0);
}
