//! The ISSUE-7 Byzantine-robustness suite (DESIGN.md §13).
//!
//! 1. **Zero-attacker identity**: every robust aggregation mode and the
//!    quorum path at 100% participation reproduce the plain streaming
//!    mean bitwise, at any thread count (fed's determinism proptests pin
//!    the arrival-order half of the claim at the accumulator level).
//! 2. **Typed duplicates**: a double-sent `Update` surfaces as the typed
//!    `DuplicateUpdate` verdict — never a panic, never silently folded
//!    twice — on both the loopback and the TCP transport.
//! 3. **Attack runs**: scripted Byzantine workers (scaled updates, stale
//!    nonces, replays) are struck and quarantined within the strike
//!    budget, the robust folds keep global drift bounded, and every
//!    verdict lands in the verified hash-chained audit log.

use goldfish_core::basic_model::GoldfishLocalConfig;
use goldfish_core::GoldfishUnlearning;
use goldfish_fed::aggregate::AggregationMode;
use goldfish_fed::transport::{RobustnessEvent, UpdateViolation};
use goldfish_serve::audit::{self, audit_kind};
use goldfish_serve::coordinator::{round_seed, Coordinator, CoordinatorConfig};
use goldfish_serve::demo::DemoSpec;
use goldfish_serve::durability::{audit_path, DurableStore};
use goldfish_serve::fault::{ByzantineScript, FaultPlan, FaultyTransport};
use goldfish_serve::queue::UnlearnRequest;
use goldfish_serve::tcp::{bind, TcpConfig, TcpTransport};
use goldfish_serve::transport::{LoopbackTransport, ServeTransport};
use goldfish_serve::wire::FrameLimits;
use goldfish_serve::worker::{run_worker, WorkerRuntime};

const SEED: u64 = 42;

fn demo(clients: usize) -> DemoSpec {
    DemoSpec {
        clients,
        samples_per_client: 24,
        test_samples: 20,
        seed: 19,
    }
}

fn config(spec: &DemoSpec) -> CoordinatorConfig {
    CoordinatorConfig {
        train: spec.train_config(),
        method: GoldfishUnlearning::default().with_local(GoldfishLocalConfig {
            epochs: 1,
            batch_size: 12,
            lr: 0.05,
            momentum: 0.9,
            ..GoldfishLocalConfig::default()
        }),
        unlearn_rounds: 1,
        init_seed: 1,
        threads: Some(2),
        ..CoordinatorConfig::default()
    }
}

fn coordinator(
    spec: &DemoSpec,
    cfg: CoordinatorConfig,
    plan: FaultPlan,
) -> Coordinator<FaultyTransport<LoopbackTransport>> {
    let transport = FaultyTransport::new(
        LoopbackTransport::new(spec.factory(), spec.client_shards(), Some(2)),
        plan,
    );
    Coordinator::new(spec.factory(), spec.test_set(), transport, cfg)
}

fn run_rounds<T: ServeTransport>(c: &mut Coordinator<T>, rounds: usize) {
    for r in 0..rounds {
        c.train_round_hot(r, round_seed(SEED, r)).unwrap();
    }
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn l2(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x as f64 - *y as f64).powi(2))
        .sum::<f64>()
        .sqrt()
}

#[test]
fn zero_attacker_robust_modes_match_mean_bitwise() {
    let spec = demo(5);
    let reference = {
        let mut c = coordinator(&spec, config(&spec), FaultPlan::new());
        run_rounds(&mut c, 3);
        bits(c.global_state())
    };
    // Identity modes, the full-participation quorum path, and every
    // thread count reproduce the reference exactly.
    let variants: Vec<(&str, CoordinatorConfig)> = vec![
        (
            "trimmed:0",
            config(&spec).with_aggregation(AggregationMode::TrimmedMean { trim: 0 }),
        ),
        (
            "normclip (untriggered)",
            config(&spec).with_aggregation(AggregationMode::NormClipped { limit: 1e9 }),
        ),
        (
            "quorum 0.6 at full participation",
            config(&spec).with_quorum(0.6),
        ),
        (
            "strike budget armed, nobody lying",
            config(&spec).with_max_strikes(2),
        ),
    ];
    for (label, cfg) in variants {
        for threads in [1usize, 4] {
            let mut cfg = cfg.clone();
            cfg.threads = Some(threads);
            let mut c = coordinator(&spec, cfg, FaultPlan::new());
            run_rounds(&mut c, 3);
            assert_eq!(
                bits(c.global_state()),
                reference,
                "{label} with {threads} thread(s) diverged from the plain mean"
            );
            assert!(c.robustness_log().is_empty(), "{label}: phantom verdicts");
            assert!(!c.last_round_outcome().degraded, "{label}: phantom quorum");
        }
    }
}

#[test]
fn duplicate_update_is_typed_on_loopback() {
    let spec = demo(4);
    let plan = FaultPlan::new().byzantine(2, ByzantineScript::Duplicate);
    let mut c = coordinator(&spec, config(&spec), plan);
    // The round completes — the first frame folds; the duplicate is the
    // typed verdict, not a poison pill.
    run_rounds(&mut c, 1);
    assert_eq!(
        c.robustness_log(),
        &[RobustnessEvent::Violation {
            client_id: 2,
            violation: UpdateViolation::Duplicate,
            strikes: 1,
        }]
    );
    // The clean cohort's aggregate is unaffected by the extra frame.
    let clean = {
        let mut c = coordinator(&spec, config(&spec), FaultPlan::new());
        run_rounds(&mut c, 1);
        bits(c.global_state())
    };
    assert_eq!(bits(c.global_state()), clean);
}

#[test]
fn duplicate_update_is_typed_on_tcp() {
    let spec = demo(2);
    let (listener, addr) = bind("127.0.0.1:0").unwrap();
    let workers: Vec<_> = (0..spec.clients)
        .map(|id| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let spec = demo(2);
                let mut rt = WorkerRuntime::new(id, spec.factory(), spec.client_shard(id));
                let _ = run_worker(&addr, &mut rt, &FrameLimits::default());
            })
        })
        .collect();
    let state_len = (spec.factory())(0).state_len();
    let tcp =
        TcpTransport::accept(&listener, spec.clients, state_len, TcpConfig::default()).unwrap();
    let transport = FaultyTransport::new(
        tcp,
        FaultPlan::new().byzantine(1, ByzantineScript::Duplicate),
    );
    let mut c = Coordinator::new(spec.factory(), spec.test_set(), transport, config(&spec));
    run_rounds(&mut c, 1);
    assert_eq!(
        c.robustness_log(),
        &[RobustnessEvent::Violation {
            client_id: 1,
            violation: UpdateViolation::Duplicate,
            strikes: 1,
        }]
    );
    // A duplicate is an admission verdict, not a connection fault: the
    // worker stays registered and the next round succeeds too.
    c.train_round_hot(1, round_seed(SEED, 1)).unwrap();
    c.transport_mut().shutdown();
    drop(c);
    for w in workers {
        w.join().unwrap();
    }
}

#[test]
fn scaled_attackers_are_quarantined_and_drift_stays_bounded() {
    // f = 2 attackers of n = 7 (f < n/3): client 0 ships 40x-scaled
    // updates, client 6 flips signs. Trim 2 discards both extremes per
    // coordinate; the delta-norm bound catches the scaler outright.
    let spec = demo(7);
    let attack = || {
        FaultPlan::new()
            .byzantine(0, ByzantineScript::Scale { factor: 40.0 })
            .byzantine(6, ByzantineScript::SignFlip)
    };
    let rounds = 4;

    // Clean reference: the same fleet, nobody lying, plain mean.
    let reference = {
        let mut c = coordinator(&spec, config(&spec), FaultPlan::new());
        run_rounds(&mut c, rounds);
        c.global_state().to_vec()
    };
    // Undefended: the attack lands with full weight.
    let drift_mean = {
        let mut c = coordinator(&spec, config(&spec), attack());
        run_rounds(&mut c, rounds);
        l2(c.global_state(), &reference)
    };
    for mode in [
        AggregationMode::TrimmedMean { trim: 2 },
        AggregationMode::Median,
    ] {
        let mut c = coordinator(&spec, config(&spec).with_aggregation(mode), attack());
        run_rounds(&mut c, rounds);
        let drift = l2(c.global_state(), &reference);
        // The documented bound (DESIGN.md §13): with trim ≥ f the fold
        // stays inside the honest updates' coordinate-wise range, so the
        // drift from the all-honest mean is a small fraction of what the
        // unprotected mean absorbs.
        assert!(
            drift < drift_mean / 10.0,
            "{mode}: drift {drift} vs undefended {drift_mean}"
        );
    }

    // Admission + strikes: the delta-norm bound rejects the scaler each
    // round; two strikes quarantine it (round 0 strike, round 1 strike +
    // eviction). The sign-flipper preserves norms and must NOT be
    // evicted by the norm check — that's the trimmed fold's job.
    let mut c = coordinator(
        &spec,
        config(&spec)
            .with_aggregation(AggregationMode::TrimmedMean { trim: 2 })
            .with_max_delta_norm(5.0)
            .with_max_strikes(2),
        attack(),
    );
    run_rounds(&mut c, rounds);
    assert!(c.is_quarantined(0), "scaler not quarantined");
    assert!(
        !c.is_quarantined(6),
        "norm-preserving attacker wrongly evicted"
    );
    assert_eq!(c.client_strikes(0), 2);
    assert_eq!(c.quarantined_clients(), vec![0]);
    let quarantine_round = c
        .robustness_log()
        .iter()
        .filter(|e| matches!(e, RobustnessEvent::Quarantined { client_id: 0, .. }))
        .count();
    assert_eq!(quarantine_round, 1, "exactly one eviction event");
    // The loopback transport honoured the eviction: the quarantined
    // client no longer computes or counts.
    assert_eq!(c.transport().inner().quarantined_clients(), vec![0]);
}

#[test]
fn stale_and_replayed_frames_strike_over_tcp_and_ban_sticks() {
    // A replaying worker over real sockets: round 0 passes through (no
    // older frame to replay yet), every later round re-ships the
    // previous round's state under its old nonce — a StaleNonce
    // violation each time. max_strikes = 2 evicts it at its second
    // strike; the TCP transport bans the id so it cannot rejoin.
    let spec = demo(3);
    let (listener, addr) = bind("127.0.0.1:0").unwrap();
    let workers: Vec<_> = (0..spec.clients)
        .map(|id| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let spec = demo(3);
                let mut rt = WorkerRuntime::new(id, spec.factory(), spec.client_shard(id));
                let _ = run_worker(&addr, &mut rt, &FrameLimits::default());
            })
        })
        .collect();
    let state_len = (spec.factory())(0).state_len();
    let tcp =
        TcpTransport::accept(&listener, spec.clients, state_len, TcpConfig::default()).unwrap();
    let transport =
        FaultyTransport::new(tcp, FaultPlan::new().byzantine(1, ByzantineScript::Replay));
    let mut c = Coordinator::new(
        spec.factory(),
        spec.test_set(),
        transport,
        config(&spec).with_max_strikes(2),
    );
    for r in 0..4 {
        c.train_round_hot(r, round_seed(SEED, r)).unwrap();
    }
    assert!(c.is_quarantined(1));
    let stale_strikes = c
        .robustness_log()
        .iter()
        .filter(|e| {
            matches!(
                e,
                RobustnessEvent::Violation {
                    client_id: 1,
                    violation: UpdateViolation::StaleNonce { .. },
                    ..
                }
            )
        })
        .count();
    assert_eq!(stale_strikes, 2, "one strike per offending round");
    // The ban outlives the session: the transport refuses the id.
    assert!(!c.transport().inner().live_clients().contains(&1));
    c.transport_mut().shutdown();
    drop(c);
    for w in workers {
        let _ = w.join();
    }
}

#[test]
fn quorum_round_finishes_degraded_and_is_recorded() {
    let spec = demo(4);
    // Client 3's reply is dropped at op 0 (the first streamed round).
    let plan = FaultPlan::new().drop_client_at(0, 3);
    let mut c = coordinator(&spec, config(&spec).with_quorum(0.5), plan);
    c.train_round_hot(0, round_seed(SEED, 0)).unwrap();
    let outcome = c.last_round_outcome();
    assert!(outcome.degraded, "round should have finished on quorum");
    assert_eq!((outcome.reported, outcome.cohort), (3, 4));
    // Degraded ≠ struck: a timeout is not a violation.
    assert!(c.robustness_log().is_empty());
    // The next (full) round recovers to a non-degraded outcome.
    c.train_round_hot(1, round_seed(SEED, 1)).unwrap();
    assert!(!c.last_round_outcome().degraded);
}

#[test]
fn quarantine_verdicts_land_in_the_verified_audit_chain() {
    let dir = std::env::temp_dir().join(format!("goldfish-robust-audit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let spec = demo(5);
    let plan = FaultPlan::new().byzantine(4, ByzantineScript::StaleRound);
    {
        let mut c = coordinator(
            &spec,
            config(&spec)
                .with_aggregation(AggregationMode::TrimmedMean { trim: 1 })
                .with_max_strikes(2),
            plan,
        );
        let (store, recovered) = DurableStore::open(&dir).unwrap();
        c.attach_durability(store, recovered).unwrap();
        c.submit_unlearn(UnlearnRequest::new(0, (0..4).collect()))
            .unwrap();
        c.run(3, SEED).unwrap();
        assert!(c.is_quarantined(4));
    }

    // The chain verifies end-to-end and holds all three entry kinds:
    // the served deletion, the stale-nonce violations, the eviction.
    let summary = audit::verify_file(&audit_path(&dir)).unwrap();
    let kinds: Vec<u8> = summary.entries.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&audit_kind::UNLEARN_SERVED));
    assert!(kinds.contains(&audit_kind::VIOLATION));
    assert!(kinds.contains(&audit_kind::QUARANTINE));
    let quarantine = summary
        .entries
        .iter()
        .find(|e| e.kind == audit_kind::QUARANTINE)
        .expect("quarantine entry");
    assert_eq!(quarantine.client_id, 4);
    assert_eq!(quarantine.detail, vec![2], "strike count at eviction");
    let violations: Vec<_> = summary
        .entries
        .iter()
        .filter(|e| e.kind == audit_kind::VIOLATION)
        .collect();
    assert_eq!(violations.len(), 2);
    assert!(violations.iter().all(|e| e.client_id == 4
        && e.detail[0] == UpdateViolation::StaleNonce { got: 0, want: 0 }.code()));

    // Recovery replays only the served deletion as a removal — the
    // robustness verdicts are evidence, not data mutations.
    let mut c2 = coordinator(&spec, config(&spec), FaultPlan::new());
    let (store, recovered) = DurableStore::open(&dir).unwrap();
    assert!(recovered.resumed);
    c2.attach_durability(store, recovered).unwrap();
    let sizes = c2.transport().client_sizes();
    assert_eq!(sizes[0], spec.samples_per_client - 4);
    assert!(sizes[1..].iter().all(|&n| n == spec.samples_per_client));

    let _ = std::fs::remove_dir_all(&dir);
}
