//! The serve-layer identity gates.
//!
//! 1. A loopback-backed `Coordinator` reproduces the library's own
//!    `Federation::train_rounds` / `GoldfishUnlearning::unlearn` bitwise
//!    (the in-process path *is* the `LoopbackTransport`).
//! 2. A real-TCP run (coordinator + worker threads over localhost
//!    sockets) reproduces the loopback run bitwise — a full federated
//!    round *and* a Goldfish unlearning request.
//! 3. Stragglers are dropped and the round re-runs over the survivors,
//!    deterministically.

use std::time::Duration;

use goldfish_core::basic_model::GoldfishLocalConfig;
use goldfish_core::method::{ClientSplit, UnlearnSetup};
use goldfish_core::{GoldfishUnlearning, UnlearningMethod};
use goldfish_fed::aggregate::FedAvg;
use goldfish_fed::federation::Federation;
use goldfish_serve::coordinator::{drain_seed, round_seed, Coordinator, CoordinatorConfig};
use goldfish_serve::demo::DemoSpec;
use goldfish_serve::queue::UnlearnRequest;
use goldfish_serve::tcp::{bind, TcpConfig, TcpTransport};
use goldfish_serve::transport::{LoopbackTransport, ServeTransport};
use goldfish_serve::wire::FrameLimits;
use goldfish_serve::worker::{run_worker, WorkerRuntime};

const SEED: u64 = 42;
const ROUNDS: usize = 2;
const REMOVED: usize = 8;

fn demo() -> DemoSpec {
    DemoSpec {
        clients: 2,
        samples_per_client: 60,
        test_samples: 30,
        seed: 19,
    }
}

fn method() -> GoldfishUnlearning {
    GoldfishUnlearning::default().with_local(GoldfishLocalConfig {
        epochs: 1,
        batch_size: 20,
        lr: 0.05,
        momentum: 0.9,
        ..GoldfishLocalConfig::default()
    })
}

fn coordinator_config(spec: &DemoSpec) -> CoordinatorConfig {
    CoordinatorConfig {
        train: spec.train_config(),
        method: method(),
        unlearn_rounds: 1,
        init_seed: 1,
        threads: Some(2),
        ..CoordinatorConfig::default()
    }
}

/// The canonical schedule: ROUNDS training rounds with one unlearning
/// request (client 0 forgets its first REMOVED samples) queued before
/// round 1 drains it.
fn run_schedule<T: ServeTransport>(mut c: Coordinator<T>) -> (Vec<f32>, Coordinator<T>) {
    c.submit_unlearn(UnlearnRequest::new(0, (0..REMOVED).collect()))
        .unwrap();
    let summary = c.run(ROUNDS, SEED).unwrap();
    assert_eq!(summary.rounds.len(), ROUNDS);
    assert_eq!(summary.unlearns.len(), 1);
    (c.global_state().to_vec(), c)
}

fn loopback_coordinator(spec: &DemoSpec) -> Coordinator<LoopbackTransport> {
    let transport = LoopbackTransport::new(spec.factory(), spec.client_shards(), Some(2));
    Coordinator::new(
        spec.factory(),
        spec.test_set(),
        transport,
        coordinator_config(spec),
    )
}

#[test]
fn loopback_unlearning_is_permanent() {
    // Once a deletion request is served, the removed samples leave the
    // client's dataset: later training rounds and local evals run on
    // the shrunk shard (mirrored by the worker daemon's state machine).
    let spec = demo();
    let (_, c) = run_schedule(loopback_coordinator(&spec));
    assert_eq!(
        c.transport().client_sizes(),
        vec![spec.samples_per_client - REMOVED, spec.samples_per_client]
    );
}

#[test]
fn loopback_train_round_matches_federation() {
    let spec = demo();
    // Library path.
    let mut fed = Federation::builder(spec.factory(), spec.test_set())
        .clients(spec.client_shards())
        .train_config(spec.train_config())
        .threads(2)
        .init_seed(1)
        .build();
    fed.train_rounds(ROUNDS, &FedAvg, SEED);

    // Serve path over loopback, no unlearning.
    let mut c = loopback_coordinator(&spec);
    for r in 0..ROUNDS {
        // round_seed matches Federation::train_rounds' derivation.
        c.train_round(r, round_seed(SEED, r)).unwrap();
    }
    assert_eq!(c.global_state(), fed.global_state(), "train loop diverged");
}

#[test]
fn loopback_unlearning_matches_library_method() {
    let spec = demo();
    // Serve path: one training round, then the request drains.
    let mut c = loopback_coordinator(&spec);
    c.submit_unlearn(UnlearnRequest::new(0, (0..REMOVED).collect()))
        .unwrap();
    c.train_round(0, round_seed(SEED, 0)).unwrap();
    let teacher = c.global_state().to_vec();
    let unlearn_seed = drain_seed(SEED, 0);
    c.drain_unlearning(unlearn_seed).unwrap().unwrap();

    // Library path: same teacher, same splits, same seed.
    let shards = spec.client_shards();
    let removed: Vec<usize> = (0..REMOVED).collect();
    let setup = UnlearnSetup {
        factory: spec.factory(),
        clients: vec![
            ClientSplit::with_removed(&shards[0], &removed),
            ClientSplit::intact(shards[1].clone()),
        ],
        test: spec.test_set(),
        original_global: teacher,
        rounds: 1,
        train: spec.train_config(),
    };
    let outcome = method().unlearn(&setup, unlearn_seed);
    assert_eq!(
        c.global_state(),
        outcome.global_state.as_slice(),
        "unlearning loop diverged"
    );
}

/// Spawns `spec.clients` worker threads against an ephemeral listener
/// and returns the accepted transport.
fn tcp_pair(spec: &DemoSpec) -> (TcpTransport, Vec<std::thread::JoinHandle<()>>) {
    let (listener, addr) = bind("127.0.0.1:0").unwrap();
    let mut workers = Vec::new();
    for id in 0..spec.clients {
        let spec = *spec;
        let addr = addr.clone();
        workers.push(std::thread::spawn(move || {
            let mut runtime = WorkerRuntime::new(id, spec.factory(), spec.client_shard(id));
            run_worker(&addr, &mut runtime, &FrameLimits::default()).unwrap();
        }));
    }
    let state_len = (spec.factory())(0).state_len();
    let transport =
        TcpTransport::accept(&listener, spec.clients, state_len, TcpConfig::default()).unwrap();
    (transport, workers)
}

#[test]
fn tcp_run_is_bitwise_identical_to_loopback() {
    let spec = demo();
    let (loopback_global, mut lb) = run_schedule(loopback_coordinator(&spec));

    let (transport, workers) = tcp_pair(&spec);
    let c = Coordinator::new(
        spec.factory(),
        spec.test_set(),
        transport,
        coordinator_config(&spec),
    );
    let (tcp_global, c) = run_schedule(c);
    assert_eq!(tcp_global, loopback_global, "TCP diverged from loopback");

    // The run moved real frames.
    let stats = c.transport().wire_stats();
    assert!(stats.bytes_sent > 0 && stats.bytes_received > 0);

    // Local evaluation flows over the Eval exchange and matches the
    // loopback coordinator that served the same schedule exactly (both
    // sides evaluate on the post-deletion shards).
    let mut c = c;
    let global = c.global_state().to_vec();
    let tcp_evals: Vec<_> = c
        .transport_mut()
        .local_eval(ROUNDS, &global)
        .into_iter()
        .map(|e| e.unwrap())
        .collect();
    let lb_evals: Vec<_> = lb
        .transport_mut()
        .local_eval(ROUNDS, &global)
        .into_iter()
        .map(|e| e.unwrap())
        .collect();
    assert_eq!(tcp_evals, lb_evals);

    c.transport_mut().shutdown(); // graceful goodbye: workers exit Ok
    drop(c);
    for w in workers {
        w.join().unwrap();
    }
}

#[test]
fn window_overflow_keeps_healthy_tcp_workers_connected() {
    // An UpdateWindowExceeded from the aggregation sink is the
    // coordinator's capacity policy, not the worker's fault: the round
    // errors, but no connection may be dropped (otherwise a tight
    // --window would silently evict healthy workers and re-round over a
    // shrunken fleet).
    use goldfish_fed::transport::{RoundTransport, TrainAssign, TransportError};

    let spec = demo();
    let (mut transport, workers) = tcp_pair(&spec);
    let global = (spec.factory())(1).state_vector();
    let cfg = spec.train_config();
    let assign = TrainAssign {
        round: 0,
        seed: 3,
        nonce: goldfish_fed::transport::round_nonce(3, 0),
        global: &global,
        cfg: &cfg,
    };
    let mut results = Vec::new();
    transport.train_round_streamed(
        &assign,
        &mut |u| {
            Err(TransportError::UpdateWindowExceeded {
                limit: 0,
                client_id: u.client_id,
            })
        },
        &mut results,
    );
    assert_eq!(results.len(), 2);
    assert!(results
        .iter()
        .all(|r| matches!(r, Err(TransportError::UpdateWindowExceeded { .. }))));
    // Both workers survive and the next (unconstrained) round succeeds.
    assert_eq!(transport.live_clients(), vec![0, 1]);
    let ok = transport.train_round(&assign);
    assert!(ok.iter().all(|r| r.is_ok()));

    transport.shutdown(); // graceful goodbye: workers exit Ok
    drop(transport);
    for w in workers {
        w.join().unwrap();
    }
}

#[test]
fn straggler_is_dropped_and_round_rerun_deterministically() {
    let spec = demo();
    let (listener, addr) = bind("127.0.0.1:0").unwrap();

    // Client 0: a well-behaved worker.
    let good = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut runtime = WorkerRuntime::new(0, spec.factory(), spec.client_shard(0));
            // The coordinator closes the connection at drop; treat any
            // outcome as shutdown.
            let _ = run_worker(&addr, &mut runtime, &FrameLimits::default());
        })
    };
    // Client 1: says Hello, then goes silent (a straggler).
    let silent = std::thread::spawn(move || {
        use goldfish_serve::wire::{read_frame, write_frame, Msg};
        let mut stream = std::net::TcpStream::connect(&addr).unwrap();
        let limits = FrameLimits::default();
        let hello = Msg::Hello {
            client_id: 1,
            state_len: (spec.factory())(0).state_len() as u64,
            num_samples: spec.samples_per_client as u64,
            resume: None,
        };
        write_frame(&mut stream, &hello, &limits).unwrap();
        let _ = read_frame(&mut stream, &limits).unwrap(); // Capabilities
                                                           // Swallow the round assignment and never answer.
        let _ = read_frame(&mut stream, &limits);
    });

    let state_len = (spec.factory())(0).state_len();
    let cfg = TcpConfig {
        read_timeout: Duration::from_millis(1500),
        ..TcpConfig::default()
    };
    let transport = TcpTransport::accept(&listener, spec.clients, state_len, cfg).unwrap();
    let mut c = Coordinator::new(
        spec.factory(),
        spec.test_set(),
        transport,
        coordinator_config(&spec),
    );
    let summary = c.train_round(0, round_seed(SEED, 0)).unwrap();
    // Only the survivor contributed.
    assert_eq!(summary.client_sizes, vec![spec.samples_per_client]);
    assert_eq!(c.transport().live_clients(), vec![0]);

    // Deterministic: the result equals a single-client loopback round
    // over the survivor's shard (FedAvg of one update is that update).
    let mut lb = Coordinator::new(
        spec.factory(),
        spec.test_set(),
        LoopbackTransport::new(spec.factory(), vec![spec.client_shard(0)], Some(2)),
        coordinator_config(&spec),
    );
    lb.train_round(0, round_seed(SEED, 0)).unwrap();
    assert_eq!(c.global_state(), lb.global_state());

    drop(c);
    good.join().unwrap();
    silent.join().unwrap();
}
