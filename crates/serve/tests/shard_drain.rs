//! Shard-isolated unlearning (DESIGN.md §16): the coordinator's shard
//! drain is pinned bitwise against the core shard primitives, a
//! scripted straggler's tasks commit degraded (parity reconstruction +
//! delegation) to the *same bits* as a healthy drain, deadline expiry
//! commits partial progress and re-enqueues the remainder, bounded
//! queues reject with the typed `QueueFull` in both modes, and a
//! coordinator killed mid-shard-drain recovers the exact stream from
//! its WAL.

use std::path::PathBuf;
use std::sync::Arc;

use goldfish_core::basic_model::GoldfishLocalConfig;
use goldfish_core::GoldfishUnlearning;
use goldfish_serve::audit::{self, audit_kind};
use goldfish_serve::coordinator::{
    drain_seed, round_seed, Coordinator, CoordinatorConfig, SubmitError,
};
use goldfish_serve::demo::DemoSpec;
use goldfish_serve::durability::{audit_path, DurableStore};
use goldfish_serve::fault::{ByzantineScript, FaultPlan, FaultyTransport};
use goldfish_serve::queue::UnlearnRequest;
use goldfish_serve::shard::{ShardMap, ShardPolicy};
use goldfish_serve::telemetry::ServeTelemetry;
use goldfish_serve::transport::{LoopbackTransport, ServeTransport};
use goldfish_telemetry::clock::Clock;
use goldfish_telemetry::events::Trace;

const SEED: u64 = 11;
const TAU: usize = 4;

fn spec() -> DemoSpec {
    DemoSpec {
        clients: 4,
        samples_per_client: 40,
        test_samples: 20,
        seed: 9,
    }
}

fn policy(deadline_ms: u64) -> ShardPolicy {
    ShardPolicy {
        tau: TAU,
        group: 2,
        deadline_ms,
    }
}

fn config(spec: &DemoSpec, deadline_ms: u64) -> CoordinatorConfig {
    CoordinatorConfig {
        train: spec.train_config(),
        method: GoldfishUnlearning::default().with_local(GoldfishLocalConfig {
            epochs: 1,
            batch_size: 20,
            lr: 0.05,
            momentum: 0.9,
            ..GoldfishLocalConfig::default()
        }),
        unlearn_rounds: 1,
        init_seed: 1,
        threads: Some(2),
        ..CoordinatorConfig::default()
    }
    .with_shards(policy(deadline_ms))
}

fn coordinator(
    spec: &DemoSpec,
    plan: FaultPlan,
    cfg: CoordinatorConfig,
) -> Coordinator<FaultyTransport<LoopbackTransport>> {
    let inner = LoopbackTransport::new(spec.factory(), spec.client_shards(), Some(2));
    Coordinator::new(
        spec.factory(),
        spec.test_set(),
        FaultyTransport::new(inner, plan),
        cfg,
    )
}

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("goldfish-shard-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn assert_bits(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{what} diverges at param {i}");
    }
}

/// The drain's retrain + fold, recomputed in the test from the core
/// primitives ([`ShardMap`] arithmetic + `retrain_shard`): one deletion
/// confined to one shard, checked bitwise against the coordinator.
#[test]
fn shard_drain_matches_core_primitives_bitwise() {
    let spec = spec();
    let mut c = coordinator(&spec, FaultPlan::new(), config(&spec, 0));
    c.train_round(0, round_seed(SEED, 0)).unwrap();
    let before_drain = c.global_state().to_vec();
    // Rows 0 and 4 both live in shard 0 of client 1 (row % τ).
    c.submit_unlearn(UnlearnRequest::new(1, vec![0, 4]))
        .unwrap();
    let summary = c.drain_shard_tasks(drain_seed(SEED, 0)).unwrap().unwrap();
    assert_eq!(summary.completed, vec![(1, 0)]);
    assert!(summary.degraded.is_empty());
    assert_eq!(summary.requeued, 0);

    // Oracle: replicate from the primitives. The shard map is
    // deterministic in (policy, registry sizes, init seed).
    let factory = spec.factory();
    let init = (factory)(1).state_vector();
    let lens = vec![spec.samples_per_client; spec.clients];
    let mut map = ShardMap::new(policy(0), &lens, &init);
    let keep = map.keep_rows(1, 0, &[0, 4]);
    let ckpt = map.checkpoint_for(1, 0);
    let task_seed = drain_seed(SEED, 0).wrapping_add(1u64 << 32).wrapping_add(1);
    let state = goldfish_core::optimization::retrain_shard(
        &factory,
        &spec.train_config(),
        &ckpt,
        &spec.client_shard(1).subset(&keep),
        task_seed,
    );
    let before = map.client_aggregate(1);
    map.apply_retrain(1, 0, state, &[0, 4]);
    let after = map.client_aggregate(1);
    let total: usize = (0..spec.clients).map(|c| map.remaining(c)).sum();
    let w = map.remaining(1) as f32 / total as f32;
    let mut expect = before_drain;
    for ((e, &a), &b) in expect.iter_mut().zip(after.iter()).zip(before.iter()) {
        *e += w * (a - b);
    }
    assert_bits(c.global_state(), &expect, "oracle");

    // Tombstones stick: re-submitting the same rows routes to nothing
    // (idempotent no-op), and the datasets themselves never shrank.
    c.submit_unlearn(UnlearnRequest::new(1, vec![0, 4]))
        .unwrap();
    assert!(c.shard_tasks().is_empty());
    assert_eq!(
        c.transport().client_sizes(),
        vec![spec.samples_per_client; spec.clients]
    );
}

/// Splitting one deletion across several submits merges per
/// (client, shard) in the queue and drains to the same bits as the
/// whole request submitted at once.
#[test]
fn split_submits_merge_and_drain_to_the_same_bits() {
    let spec = spec();
    let rows: Vec<usize> = vec![0, 1, 2, 5, 9];

    let mut whole = coordinator(&spec, FaultPlan::new(), config(&spec, 0));
    whole.train_round(0, round_seed(SEED, 0)).unwrap();
    whole
        .submit_unlearn(UnlearnRequest::new(2, rows.clone()))
        .unwrap();
    whole
        .drain_shard_tasks(drain_seed(SEED, 0))
        .unwrap()
        .unwrap();

    let mut split = coordinator(&spec, FaultPlan::new(), config(&spec, 0));
    split.train_round(0, round_seed(SEED, 0)).unwrap();
    for chunk in rows.chunks(2) {
        split
            .submit_unlearn(UnlearnRequest::new(2, chunk.to_vec()))
            .unwrap();
    }
    // Rows {0,1,2,5,9} touch shards {0,1,2}; rows 1, 5 and 9 all merged
    // into the shard-1 task.
    assert_eq!(split.shard_tasks().len(), 3);
    let summary = split
        .drain_shard_tasks(drain_seed(SEED, 0))
        .unwrap()
        .unwrap();
    assert_eq!(summary.completed.len(), 3);

    assert_bits(split.global_state(), whole.global_state(), "split vs whole");
}

/// A straggling owner past the deadline is bypassed: its shard states
/// reconstruct from XOR parity (bitwise exact) and a seeded healthy
/// group member retrains — the drain commits *identical bits* to the
/// healthy run, with the degraded verdict in the audit chain and the
/// reconstruction visible in the metric catalog.
#[test]
fn degraded_drain_commits_the_same_bits_as_a_healthy_one() {
    let spec = spec();
    let req = || UnlearnRequest::new(1, vec![0, 1, 6]);

    let mut healthy = coordinator(&spec, FaultPlan::new(), config(&spec, 0));
    healthy.train_round(0, round_seed(SEED, 0)).unwrap();
    healthy.submit_unlearn(req()).unwrap();
    let h = healthy
        .drain_shard_tasks(drain_seed(SEED, 0))
        .unwrap()
        .unwrap();
    assert!(h.degraded.is_empty());

    let dir = tmp_dir("degraded");
    let telemetry = Arc::new(ServeTelemetry::new(Clock::system(), Trace::disabled()));
    let plan = FaultPlan::new().byzantine(1, ByzantineScript::Straggle { ms: 500 });
    let mut lame = coordinator(
        &spec,
        plan,
        config(&spec, 400).with_telemetry(telemetry.clone()),
    );
    let (store, recovered) = DurableStore::open(&dir).unwrap();
    lame.attach_durability(store, recovered).unwrap();
    lame.train_round(0, round_seed(SEED, 0)).unwrap();
    lame.submit_unlearn(req()).unwrap();
    let d = lame
        .drain_shard_tasks(drain_seed(SEED, 0))
        .unwrap()
        .unwrap();

    // Owner 1's group is {0, 1}; the seeded delegate can only be 0.
    assert_eq!(d.completed.len(), h.completed.len());
    assert_eq!(d.degraded.len(), d.completed.len());
    assert!(d
        .degraded
        .iter()
        .all(|&(owner, _, delegate)| { owner == 1 && delegate == 0 }));
    assert_bits(lame.global_state(), healthy.global_state(), "degraded");
    assert_eq!(
        telemetry.shard_reconstructions_total.get(),
        d.degraded.len() as u64
    );
    assert_eq!(
        telemetry.shard_degraded_drains_total.get(),
        d.degraded.len() as u64
    );

    // The audit chain carries one DEGRADED_DRAIN verdict per bypassed
    // task, detail = [shard, delegate].
    let summary = audit::verify_file(&audit_path(&dir)).unwrap();
    let verdicts: Vec<_> = summary
        .entries
        .iter()
        .filter(|e| e.kind == audit_kind::DEGRADED_DRAIN)
        .collect();
    assert_eq!(verdicts.len(), d.degraded.len());
    for v in verdicts {
        assert_eq!(v.client_id, 1);
        assert_eq!(v.detail[1], 0, "delegate in the verdict detail");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A deadline too tight for the whole batch commits what fits and
/// re-enqueues the remainder at the *front*; the next drain finishes
/// it. Lateness below the bypass threshold is budgeted, not degraded.
#[test]
fn deadline_commits_partial_progress_and_requeues_the_rest() {
    let spec = spec();
    // Every executor is 400 ms late — under the 1000 ms bypass bar, so
    // owners run their own tasks, but only two fit the budget
    // (400 + 400 = 800; a third would reach 1200).
    let plan = FaultPlan::new().byzantine(3, ByzantineScript::Straggle { ms: 400 });
    let mut c = coordinator(&spec, plan, config(&spec, 1000));
    c.train_round(0, round_seed(SEED, 0)).unwrap();
    // Rows 0..4 of client 3: one task per shard, four tasks.
    c.submit_unlearn(UnlearnRequest::new(3, vec![0, 1, 2, 3]))
        .unwrap();
    assert_eq!(c.shard_tasks().len(), 4);

    let first = c.drain_shard_tasks(drain_seed(SEED, 0)).unwrap().unwrap();
    assert_eq!(first.completed.len(), 2);
    assert!(first.degraded.is_empty());
    assert_eq!(first.requeued, 2);
    assert_eq!(c.shard_tasks().len(), 2);

    let second = c.drain_shard_tasks(drain_seed(SEED, 1)).unwrap().unwrap();
    assert_eq!(second.completed.len(), 2);
    assert_eq!(second.requeued, 0);
    assert!(c.shard_tasks().is_empty());

    // All four shards are tombstoned: the same rows route to nothing.
    c.submit_unlearn(UnlearnRequest::new(3, vec![0, 1, 2, 3]))
        .unwrap();
    assert!(c.shard_tasks().is_empty());
}

/// `--max-queue-depth` rejects with the typed `QueueFull` in both
/// modes — but never rejects a merge into an already-pending entry.
#[test]
fn queue_full_is_typed_and_never_rejects_merges() {
    let spec = spec();
    // Shard mode: depth counts pending shard tasks.
    let mut c = coordinator(
        &spec,
        FaultPlan::new(),
        config(&spec, 0).with_max_queue_depth(1),
    );
    c.submit_unlearn(UnlearnRequest::new(0, vec![0])).unwrap();
    assert_eq!(c.shard_tasks().len(), 1);
    // Row 4 lands in the same (client 0, shard 0) pending task: merge.
    c.submit_unlearn(UnlearnRequest::new(0, vec![4])).unwrap();
    assert_eq!(c.shard_tasks().len(), 1);
    // Row 1 would be a fresh task for shard 1: over the limit.
    match c.submit_unlearn(UnlearnRequest::new(0, vec![1])) {
        Err(SubmitError::QueueFull { depth: 1, limit: 1 }) => {}
        other => panic!("expected QueueFull, got {other:?}"),
    }

    // Plain mode: depth counts pending whole-client requests.
    let plain_cfg = CoordinatorConfig {
        train: spec.train_config(),
        unlearn_rounds: 1,
        init_seed: 1,
        threads: Some(2),
        ..CoordinatorConfig::default()
    }
    .with_max_queue_depth(1);
    let mut p = coordinator(&spec, FaultPlan::new(), plain_cfg);
    p.submit_unlearn(UnlearnRequest::new(0, vec![0])).unwrap();
    match p.submit_unlearn(UnlearnRequest::new(1, vec![0])) {
        Err(SubmitError::QueueFull { depth: 1, limit: 1 }) => {}
        other => panic!("expected QueueFull, got {other:?}"),
    }
    // Client 0 already has a pending entry: its resubmit merges.
    p.submit_unlearn(UnlearnRequest::new(0, vec![1])).unwrap();
}

/// A coordinator killed mid-shard-drain (some retrains done, nothing
/// committed) restarts from its state directory and replays the whole
/// batch from the WAL — final global bitwise identical to an
/// uninterrupted run, datasets untouched, queue drained.
#[test]
fn kill_mid_shard_drain_recovers_bitwise() {
    let spec = spec();
    let rows: Vec<usize> = vec![0, 1, 2, 3];

    // Uninterrupted reference (durability on, for the audit bytes).
    let base_dir = tmp_dir("base");
    let mut base = coordinator(&spec, FaultPlan::new(), config(&spec, 0));
    let (store, recovered) = DurableStore::open(&base_dir).unwrap();
    base.attach_durability(store, recovered).unwrap();
    base.submit_unlearn(UnlearnRequest::new(0, rows.clone()))
        .unwrap();
    base.run(2, SEED).unwrap();
    let base_global = base.global_state().to_vec();
    let base_audit = std::fs::read(audit_path(&base_dir)).unwrap();

    // Ops on the transport: 0 = train r0, 1..=4 = the four shard
    // retrains. Kill before op 3: two tasks retrained in memory, the
    // drain never committed.
    let dir = tmp_dir("kill");
    let mut doomed = coordinator(&spec, FaultPlan::new().kill_before_at(3), config(&spec, 0));
    let (store, recovered) = DurableStore::open(&dir).unwrap();
    doomed.attach_durability(store, recovered).unwrap();
    doomed
        .submit_unlearn(UnlearnRequest::new(0, rows.clone()))
        .unwrap();
    let err = doomed.run(2, SEED).unwrap_err();
    assert!(err.to_string().contains("fault injection"), "{err}");
    drop(doomed);

    let mut rec = coordinator(&spec, FaultPlan::new(), config(&spec, 0));
    let (store, recovered) = DurableStore::open(&dir).unwrap();
    assert!(recovered.resumed);
    // The accepted deletion survived the crash: pre-checkpoint tasks
    // ride in the checkpoint's shard section, post-checkpoint ones
    // replay from the WAL.
    let persisted =
        recovered.replayed_shard.len() + recovered.shard.as_ref().map_or(0, |s| s.tasks.len());
    assert_eq!(persisted, 4);
    rec.attach_durability(store, recovered).unwrap();
    assert!(rec.has_overdue_drain());
    assert_eq!(rec.shard_tasks().len(), 4);
    rec.run(2, SEED).unwrap();

    assert_bits(rec.global_state(), &base_global, "recovered");
    assert_eq!(std::fs::read(audit_path(&dir)).unwrap(), base_audit);
    let _ = std::fs::remove_dir_all(&base_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A shard submit is durable before it is acknowledged: a coordinator
/// that dies right after `submit_unlearn` — before any checkpoint ever
/// commits — replays the routed tasks from the WAL on restart.
#[test]
fn shard_submit_is_durable_before_any_checkpoint() {
    let spec = spec();
    let dir = tmp_dir("wal-only");
    let mut first = coordinator(&spec, FaultPlan::new(), config(&spec, 0));
    let (store, recovered) = DurableStore::open(&dir).unwrap();
    first.attach_durability(store, recovered).unwrap();
    first
        .submit_unlearn(UnlearnRequest::new(0, vec![0, 1, 2, 3]))
        .unwrap();
    drop(first); // dies before any round or drain commits

    let mut rec = coordinator(&spec, FaultPlan::new(), config(&spec, 0));
    let (store, recovered) = DurableStore::open(&dir).unwrap();
    assert!(!recovered.resumed, "nothing was ever committed");
    assert_eq!(recovered.replayed_shard.len(), 4);
    rec.attach_durability(store, recovered).unwrap();
    assert_eq!(rec.shard_tasks().len(), 4);

    // The replayed run equals one that never crashed at all.
    let mut base = coordinator(&spec, FaultPlan::new(), config(&spec, 0));
    base.submit_unlearn(UnlearnRequest::new(0, vec![0, 1, 2, 3]))
        .unwrap();
    base.run(1, SEED).unwrap();
    rec.run(1, SEED).unwrap();
    assert_bits(rec.global_state(), base.global_state(), "wal-only");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash *between* a partial commit and the next drain resumes with
/// the re-queued remainder in the recovered checkpoint (the shard
/// section round-trips through GFCK v2) and finishes to the same bits
/// as a restart-free run.
#[test]
fn restart_after_partial_commit_resumes_the_requeued_remainder() {
    let spec = spec();
    let plan = || FaultPlan::new().byzantine(3, ByzantineScript::Straggle { ms: 400 });

    // Restart-free reference: two manual drains.
    let mut base = coordinator(&spec, plan(), config(&spec, 1000));
    base.train_round(0, round_seed(SEED, 0)).unwrap();
    base.submit_unlearn(UnlearnRequest::new(3, vec![0, 1, 2, 3]))
        .unwrap();
    base.drain_shard_tasks(drain_seed(SEED, 0))
        .unwrap()
        .unwrap();
    base.drain_shard_tasks(drain_seed(SEED, 1))
        .unwrap()
        .unwrap();

    // Durable run: partial drain commits (2 done, 2 re-queued), then
    // the process "dies" (dropped) before the second drain.
    let dir = tmp_dir("partial");
    let mut first = coordinator(&spec, plan(), config(&spec, 1000));
    let (store, recovered) = DurableStore::open(&dir).unwrap();
    first.attach_durability(store, recovered).unwrap();
    first.train_round(0, round_seed(SEED, 0)).unwrap();
    first
        .submit_unlearn(UnlearnRequest::new(3, vec![0, 1, 2, 3]))
        .unwrap();
    let partial = first
        .drain_shard_tasks(drain_seed(SEED, 0))
        .unwrap()
        .unwrap();
    assert_eq!(partial.requeued, 2);
    drop(first);

    let mut rec = coordinator(&spec, plan(), config(&spec, 1000));
    let (store, recovered) = DurableStore::open(&dir).unwrap();
    assert!(recovered.resumed);
    let snap = recovered.shard.as_ref().expect("shard section recovered");
    assert_eq!(snap.tasks.len(), 2, "re-queued remainder in the snapshot");
    rec.attach_durability(store, recovered).unwrap();
    assert_eq!(rec.shard_tasks().len(), 2);
    let second = rec.drain_shard_tasks(drain_seed(SEED, 1)).unwrap().unwrap();
    assert_eq!(second.completed.len(), 2);

    assert_bits(rec.global_state(), base.global_state(), "partial-resume");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_assign_round_trips_over_real_tcp() {
    // The protocol-v4 frames over an actual socket: a real
    // `WorkerRuntime` in `serve_stream` receives a `ShardAssign`,
    // retrains the shard checkpoint against the surviving rows, and the
    // `ShardResult` that comes back over the wire is bit-identical to
    // calling the core primitive directly. The handshake carries the
    // new shard-policy fields in `Capabilities`.
    use goldfish_serve::wire::{read_frame, write_frame, FrameLimits, Msg};
    use goldfish_serve::worker::{serve_stream, WorkerRuntime};
    use std::net::TcpListener;

    let spec = spec();
    let factory = spec.factory();
    let state_len = (factory)(0).state_len();
    let limits = FrameLimits::default();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let worker = std::thread::spawn(move || {
        let spec = DemoSpec {
            clients: 4,
            samples_per_client: 40,
            test_samples: 20,
            seed: 9,
        };
        let mut rt = WorkerRuntime::new(1, spec.factory(), spec.client_shard(1));
        let stream = std::net::TcpStream::connect(addr).unwrap();
        // The coordinator side hangs up after the result frame; the
        // resulting disconnect error is the expected session end here.
        let _ = serve_stream(stream, &mut rt, &FrameLimits::default());
        rt
    });

    let (mut sock, _) = listener.accept().unwrap();
    let (hello, _) = read_frame(&mut sock, &limits).unwrap();
    let Msg::Hello {
        client_id,
        state_len: announced,
        ..
    } = hello
    else {
        panic!("expected Hello, got {hello:?}");
    };
    assert_eq!((client_id, announced as usize), (1, state_len));
    write_frame(
        &mut sock,
        &Msg::Capabilities {
            max_payload: limits.max_payload as u64,
            state_len: state_len as u64,
            agg_mode: 0,
            agg_param: 0,
            shard_tau: TAU as u32,
            shard_group: 2,
        },
        &limits,
    )
    .unwrap();

    let checkpoint = (factory)(9).state_vector();
    let keep_rows: Vec<u64> = vec![0, 3, 7, 11];
    write_frame(
        &mut sock,
        &Msg::ShardAssign {
            owner: 1,
            shard: 2,
            tau: TAU as u32,
            seed: 77,
            cfg: spec.train_config(),
            keep_rows: keep_rows.clone(),
            checkpoint: checkpoint.clone(),
        },
        &limits,
    )
    .unwrap();
    let (reply, _) = read_frame(&mut sock, &limits).unwrap();
    let Msg::ShardResult {
        owner,
        shard,
        state,
    } = reply
    else {
        panic!("expected ShardResult, got {reply:?}");
    };
    assert_eq!((owner, shard), (1, 2));

    let idx: Vec<usize> = keep_rows.iter().map(|&i| i as usize).collect();
    let survived = spec.client_shard(1).subset(&idx);
    let expect = goldfish_core::optimization::retrain_shard(
        &factory,
        &spec.train_config(),
        &checkpoint,
        &survived,
        77,
    );
    assert_bits(&state, &expect, "tcp shard retrain");

    drop(sock);
    drop(listener);
    let rt = worker.join().unwrap();
    assert!(rt.frames_handled() >= 1, "worker handled the assignment");
}
