//! Observability gates (DESIGN.md §15).
//!
//! * Telemetry on/off is bitwise invisible: a fully instrumented
//!   loopback schedule (rounds + an unlearning drain) produces the
//!   exact global state of an uninstrumented twin.
//! * The admin endpoint serves a live coordinator mid-run, and every
//!   scraped family agrees with the legacy accessors (`drain_stats`,
//!   `wire_stats`) it subsumed.
//! * TCP byte accounting starts at the handshake: the counters are
//!   nonzero before any round, and attaching a coordinator's catalog
//!   carries the pre-attach counts across losslessly.

use std::sync::Arc;

use goldfish_core::basic_model::GoldfishLocalConfig;
use goldfish_core::GoldfishUnlearning;
use goldfish_serve::admin::{fetch, AdminServer};
use goldfish_serve::coordinator::{drain_seed, round_seed, Coordinator, CoordinatorConfig};
use goldfish_serve::demo::DemoSpec;
use goldfish_serve::queue::UnlearnRequest;
use goldfish_serve::tcp::{bind, TcpConfig, TcpTransport};
use goldfish_serve::telemetry::ServeTelemetry;
use goldfish_serve::transport::{LoopbackTransport, ServeTransport};
use goldfish_serve::wire::FrameLimits;
use goldfish_serve::worker::{run_worker, WorkerRuntime};
use goldfish_telemetry::clock::Clock;
use goldfish_telemetry::events::Trace;

const SEED: u64 = 42;

fn demo(clients: usize) -> DemoSpec {
    DemoSpec {
        clients,
        samples_per_client: 40,
        test_samples: 20,
        seed: 19,
    }
}

fn coordinator_config(spec: &DemoSpec) -> CoordinatorConfig {
    CoordinatorConfig {
        train: spec.train_config(),
        method: GoldfishUnlearning::default().with_local(GoldfishLocalConfig {
            epochs: 1,
            batch_size: 20,
            lr: 0.05,
            momentum: 0.9,
            ..GoldfishLocalConfig::default()
        }),
        unlearn_rounds: 1,
        init_seed: 1,
        threads: Some(2),
        ..CoordinatorConfig::default()
    }
}

fn instrumented() -> Arc<ServeTelemetry> {
    let clock = Clock::system();
    let trace = Trace::bounded(256, clock.clone());
    Arc::new(ServeTelemetry::new(clock, trace))
}

/// Spawns `spec.clients` worker threads against an ephemeral listener
/// and returns the accepted transport. Workers treat any disconnect as
/// shutdown.
fn tcp_pair(spec: &DemoSpec) -> (TcpTransport, Vec<std::thread::JoinHandle<()>>) {
    let (listener, addr) = bind("127.0.0.1:0").unwrap();
    let mut workers = Vec::new();
    for id in 0..spec.clients {
        let spec = *spec;
        let addr = addr.clone();
        workers.push(std::thread::spawn(move || {
            let mut runtime = WorkerRuntime::new(id, spec.factory(), spec.client_shard(id));
            let _ = run_worker(&addr, &mut runtime, &FrameLimits::default());
        }));
    }
    let state_len = (spec.factory())(0).state_len();
    let transport =
        TcpTransport::accept(&listener, spec.clients, state_len, TcpConfig::default()).unwrap();
    (transport, workers)
}

/// First sample value of `family` in a Prometheus text exposition
/// (unlabeled families only).
fn sample(text: &str, family: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{family} ")))
        .unwrap_or_else(|| panic!("family {family} missing from exposition:\n{text}"))
        .trim()
        .parse()
        .unwrap()
}

/// The full schedule — rounds, a queued deletion, the drain — is
/// bitwise identical whether or not telemetry records it.
#[test]
fn telemetry_on_and_off_are_bitwise_identical() {
    let spec = demo(3);
    let run = |telemetry: Option<Arc<ServeTelemetry>>| {
        let transport = LoopbackTransport::new(spec.factory(), spec.client_shards(), Some(2));
        let mut cfg = coordinator_config(&spec);
        cfg.telemetry = telemetry;
        let mut c = Coordinator::new(spec.factory(), spec.test_set(), transport, cfg);
        for r in 0..2 {
            c.train_round(r, round_seed(SEED, r)).unwrap();
        }
        c.submit_unlearn(UnlearnRequest::new(1, (0..8).collect()))
            .unwrap();
        let drained = c.drain_unlearning(drain_seed(SEED, 1)).unwrap().unwrap();
        assert_eq!(drained.requests.len(), 1);
        c.train_round(2, round_seed(SEED, 2)).unwrap();
        (c.global_state().to_vec(), c.global_accuracy())
    };

    let telemetry = instrumented();
    let (plain_state, plain_acc) = run(None);
    let (traced_state, traced_acc) = run(Some(Arc::clone(&telemetry)));

    assert_eq!(
        plain_state, traced_state,
        "telemetry perturbed the numerics"
    );
    assert_eq!(plain_acc, traced_acc);

    // …and the instrumented run actually recorded itself.
    assert_eq!(telemetry.round.rounds_total.get(), 3);
    assert_eq!(telemetry.unlearn_submitted_total.get(), 1);
    assert_eq!(telemetry.unlearn_requests_served_total.get(), 1);
    assert_eq!(telemetry.drain_batches_total.get(), 1);
    let mut jsonl = Vec::new();
    telemetry.trace.write_jsonl(&mut jsonl).unwrap();
    let jsonl = String::from_utf8(jsonl).unwrap();
    for tag in [
        "round_started",
        "round_committed",
        "unlearn_queued",
        "drain_started",
        "drain_committed",
    ] {
        assert!(jsonl.contains(tag), "missing {tag} in trace:\n{jsonl}");
    }
}

/// Scrapes a live TCP coordinator mid-run and checks the exposition
/// against the accessors the registry subsumed.
#[test]
fn admin_scrape_of_a_live_coordinator_matches_its_counters() {
    let spec = demo(2);
    let telemetry = instrumented();
    let (transport, workers) = tcp_pair(&spec);
    let mut cfg = coordinator_config(&spec);
    cfg.telemetry = Some(Arc::clone(&telemetry));
    let mut c = Coordinator::new(spec.factory(), spec.test_set(), transport, cfg);
    let server = AdminServer::bind("127.0.0.1:0", Arc::clone(&telemetry)).unwrap();
    let addr = server.local_addr();

    c.train_round(0, round_seed(SEED, 0)).unwrap();
    c.submit_unlearn(UnlearnRequest::new(0, (0..6).collect()))
        .unwrap();

    // Mid-run: one round committed, one request pending.
    let text = fetch(addr, "/metrics").unwrap();
    assert_eq!(sample(&text, "goldfish_rounds_total"), 1);
    assert_eq!(sample(&text, "goldfish_unlearn_queue_depth"), 1);
    assert_eq!(sample(&text, "goldfish_cohort_size"), spec.clients as u64);
    let ws = c.transport().wire_stats();
    assert_eq!(
        sample(&text, "goldfish_wire_sent_bytes_total"),
        ws.bytes_sent
    );
    assert_eq!(
        sample(&text, "goldfish_wire_received_bytes_total"),
        ws.bytes_received
    );

    let drained = c.drain_unlearning(drain_seed(SEED, 0)).unwrap().unwrap();
    assert_eq!(drained.requests.len(), 1);
    c.train_round(1, round_seed(SEED, 1)).unwrap();

    // Post-drain: the thin DrainStats read and the exposition are two
    // views of the same cells.
    let text = fetch(addr, "/metrics").unwrap();
    let stats = c.drain_stats();
    assert_eq!(
        sample(&text, "goldfish_unlearn_requests_served_total"),
        stats.requests_served as u64
    );
    assert_eq!(
        sample(&text, "goldfish_drain_batches_total"),
        stats.batches_served as u64
    );
    assert_eq!(
        sample(&text, "goldfish_drain_last_batch_requests"),
        stats.last_batch_requests as u64
    );
    assert_eq!(sample(&text, "goldfish_unlearn_queue_depth"), 0);
    assert_eq!(sample(&text, "goldfish_rounds_total"), 2);

    // The reactor spans observed real work over TCP.
    assert!(text.contains("goldfish_poll_wait_seconds_count"));
    assert!(telemetry.poll_wait_seconds.count() > 0);
    assert!(telemetry.frame_read_seconds.count() > 0);
    assert!(telemetry.broadcast_encode_seconds.count() > 0);

    // The JSON snapshot serves the same counters.
    let json = fetch(addr, "/json").unwrap();
    assert!(json.contains("\"goldfish_rounds_total\":2"));

    c.transport_mut().shutdown();
    drop(c);
    drop(server);
    for w in workers {
        w.join().unwrap();
    }
}

/// Satellite bugfix gate: handshake frames are counted the moment
/// `accept` returns — before any round — and attaching the shared
/// catalog carries those pre-attach bytes across.
#[test]
fn tcp_handshake_bytes_are_counted_before_any_round() {
    let spec = demo(2);
    let telemetry = instrumented();
    let (transport, workers) = tcp_pair(&spec);

    let hs = transport.wire_stats();
    assert!(
        hs.bytes_sent > 0 && hs.bytes_received > 0,
        "handshake bytes uncounted: {hs:?}"
    );

    let mut cfg = coordinator_config(&spec);
    cfg.telemetry = Some(Arc::clone(&telemetry));
    let mut c = Coordinator::new(spec.factory(), spec.test_set(), transport, cfg);

    // Attach moved the counts into the registry cells — nothing lost.
    assert_eq!(telemetry.wire_sent_bytes.get(), hs.bytes_sent);
    assert_eq!(telemetry.wire_received_bytes.get(), hs.bytes_received);
    assert_eq!(c.transport().wire_stats().bytes_sent, hs.bytes_sent);

    // A round strictly grows both directions.
    c.train_round(0, round_seed(SEED, 0)).unwrap();
    let after = c.transport().wire_stats();
    assert!(after.bytes_sent > hs.bytes_sent);
    assert!(after.bytes_received > hs.bytes_received);
    assert_eq!(telemetry.wire_sent_bytes.get(), after.bytes_sent);

    c.transport_mut().shutdown();
    // The Shutdown goodbye frames are themselves counted.
    assert!(c.transport().wire_stats().bytes_sent > after.bytes_sent);
    drop(c);
    for w in workers {
        w.join().unwrap();
    }
}
