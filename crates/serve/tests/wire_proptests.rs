//! Property tests of the wire layer: encode→decode identity for every
//! message kind, plus corrupt-input coverage (truncations at every
//! prefix, oversized length prefixes, bad version bytes) asserting
//! typed errors.
//!
//! Written against the offline proptest stand-in (ranges, tuples,
//! `Just`, `prop_map`/`prop_flat_map`, `collection::vec`), so variant
//! selection happens through an index field instead of `prop_oneof!`.

use goldfish_core::basic_model::GoldfishLocalConfig;
use goldfish_core::extension::AdaptiveTemperature;
use goldfish_core::loss::LossWeights;
use goldfish_core::transport::UnlearnJob;
use goldfish_fed::trainer::TrainConfig;
use goldfish_nn::loss::HardLossSpec;
use goldfish_serve::wire::{
    decode_frame, encode_frame, FrameLimits, Msg, RoundMode, WireError, PROTOCOL_VERSION,
};
use proptest::prelude::*;

fn arb_f32s() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-1e6f32..1e6, 0..64)
}

fn arb_cfg() -> impl Strategy<Value = TrainConfig> {
    (1usize..100, 1usize..500, 1e-6f32..1.0, 0.0f32..0.999).prop_map(
        |(local_epochs, batch_size, lr, momentum)| TrainConfig {
            local_epochs,
            batch_size,
            lr,
            momentum,
        },
    )
}

fn arb_hard() -> impl Strategy<Value = HardLossSpec> {
    (0u8..3, 0.0f32..8.0).prop_map(|(k, gamma)| match k {
        0 => HardLossSpec::CrossEntropy,
        1 => HardLossSpec::Focal { gamma },
        _ => HardLossSpec::Nll,
    })
}

fn opt(tag: u8, v: f32) -> Option<f32> {
    (tag == 1).then_some(v)
}

fn arb_job() -> impl Strategy<Value = UnlearnJob> {
    (
        arb_cfg(),
        (0.0f32..4.0, 0.0f32..4.0, 0.25f32..10.0),
        (0u8..2, 0.5f32..8.0, 0.5f32..4.0),
        (0u8..2, 0.01f32..2.0, 0u8..2, 0.5f32..10.0),
        arb_hard(),
    )
        .prop_map(
            |(cfg, (mu_c, mu_d, temperature), (at_tag, t0, alpha), opts, hard)| {
                let (early_tag, early, clip_tag, clip) = opts;
                UnlearnJob {
                    local: GoldfishLocalConfig {
                        epochs: cfg.local_epochs,
                        batch_size: cfg.batch_size,
                        lr: cfg.lr,
                        momentum: cfg.momentum,
                        weights: LossWeights {
                            mu_c,
                            mu_d,
                            temperature,
                        },
                        adaptive_temperature: (at_tag == 1)
                            .then_some(AdaptiveTemperature { t0, alpha }),
                        early_termination: opt(early_tag, early),
                        grad_clip: opt(clip_tag, clip),
                    },
                    hard: Some(hard),
                }
            },
        )
}

/// One strategy covering every message kind: an index field selects
/// the variant, the shared field pool fills it.
fn arb_msg() -> impl Strategy<Value = Msg> {
    (
        (0u8..12, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
        arb_cfg(),
        arb_job(),
        proptest::collection::vec(0u64..1_000_000, 0..32),
        arb_f32s(),
        (0.0f64..1.0, 0.0f64..100.0, 0u8..128, 0usize..40),
    )
        .prop_map(|(ids, cfg, job, removed, floats, extras)| {
            let (kind, a, b, c) = ids;
            let (accuracy, mse, ch, str_len) = extras;
            match kind {
                0 => Msg::Hello {
                    client_id: a,
                    state_len: b,
                    num_samples: c,
                    resume: (a % 2 == 0).then_some(b ^ c),
                },
                1 => Msg::Capabilities {
                    max_payload: a,
                    state_len: b,
                    agg_mode: (c % 4) as u8,
                    agg_param: a ^ b,
                    shard_tau: (a % 17) as u32,
                    shard_group: (b % 9) as u32,
                },
                2 => Msg::RoundAssign {
                    mode: if a % 2 == 0 {
                        RoundMode::Train
                    } else {
                        RoundMode::Distill
                    },
                    round: b,
                    seed: c,
                    nonce: a ^ b ^ c,
                    cfg,
                    global: floats,
                },
                3 => Msg::Update {
                    round: a,
                    client_id: b,
                    weight: c,
                    nonce: a ^ c,
                    state: floats,
                },
                4 => Msg::UnlearnAssign {
                    serial: a,
                    job,
                    removed,
                    teacher: floats,
                },
                5 => Msg::UnlearnResult {
                    round: a,
                    client_id: b,
                    weight: c,
                    nonce: b ^ c,
                    state: floats,
                },
                6 => Msg::Eval {
                    round: a,
                    accuracy,
                    mse,
                    global: floats,
                },
                7 => Msg::Err {
                    code: (a % (u16::MAX as u64 + 1)) as u16,
                    detail: String::from_utf8(vec![b'a' + (ch % 26); str_len]).unwrap(),
                },
                8 => Msg::Ack,
                9 => Msg::ShardAssign {
                    owner: a,
                    shard: (b % 64) as u32,
                    tau: (c % 64) as u32,
                    seed: a ^ b,
                    cfg,
                    keep_rows: removed,
                    checkpoint: floats,
                },
                10 => Msg::ShardResult {
                    owner: a,
                    shard: (c % 64) as u32,
                    state: floats,
                },
                _ => {
                    let mut digest = [0u8; 32];
                    for (i, byte) in digest.iter_mut().enumerate() {
                        *byte = (b.wrapping_add(i as u64) % 256) as u8;
                    }
                    Msg::Digest { round: a, digest }
                }
            }
        })
}

proptest! {
    #[test]
    fn encode_decode_identity(msg in arb_msg()) {
        let limits = FrameLimits::default();
        let frame = encode_frame(&msg, &limits).unwrap();
        let (back, used) = decode_frame(&frame, &limits).unwrap();
        prop_assert_eq!(used, frame.len());
        // Bit-exact: the identity gates rely on PartialEq over the f32
        // payloads (NaN-free by construction).
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn truncation_anywhere_is_typed(msg in arb_msg(), frac in 0.0f64..1.0) {
        let limits = FrameLimits::default();
        let frame = encode_frame(&msg, &limits).unwrap();
        let cut = ((frame.len() as f64) * frac) as usize;
        if cut < frame.len() {
            match decode_frame(&frame[..cut], &limits) {
                // Header and fixed fields surface as Truncated; cuts
                // inside a trailing f32 vector surface from the bulk
                // codec as Malformed. Either way: typed, no panic, no
                // partial value.
                Err(WireError::Truncated) | Err(WireError::Malformed(_)) => {}
                other => prop_assert!(false, "cut at {} gave {:?}", cut, other),
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected(msg in arb_msg(), extra in 1u32..1_000_000) {
        let limits = FrameLimits { max_payload: 4096 };
        let frame = encode_frame(&msg, &FrameLimits::default()).unwrap();
        let announced = (limits.max_payload as u32).saturating_add(extra);
        let mut framed = frame;
        framed[6..10].copy_from_slice(&announced.to_le_bytes());
        match decode_frame(&framed, &limits) {
            Err(WireError::FrameTooLarge { len, max }) => {
                prop_assert_eq!(len, announced as u64);
                prop_assert_eq!(max, limits.max_payload);
            }
            other => prop_assert!(false, "got {:?}", other),
        }
    }

    #[test]
    fn bad_version_byte_is_rejected(msg in arb_msg(), version in 0u8..255) {
        if version != PROTOCOL_VERSION {
            let limits = FrameLimits::default();
            let mut frame = encode_frame(&msg, &limits).unwrap();
            frame[4] = version;
            prop_assert_eq!(
                decode_frame(&frame, &limits),
                Err(WireError::UnsupportedVersion { got: version })
            );
        }
    }

    #[test]
    fn bad_magic_is_rejected(msg in arb_msg(), byte in 0usize..4) {
        let limits = FrameLimits::default();
        let mut frame = encode_frame(&msg, &limits).unwrap();
        frame[byte] ^= 0xFF;
        prop_assert!(matches!(
            decode_frame(&frame, &limits),
            Err(WireError::BadMagic { .. })
        ));
    }

    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(0u8..255, 0..256)) {
        let _ = decode_frame(&bytes, &FrameLimits::default());
    }
}
