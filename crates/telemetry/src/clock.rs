//! The injected time source every telemetry timestamp flows through.
//!
//! Production uses the monotonic wall clock; tests and the
//! fault-injection harness swap in a manually-advanced atomic so span
//! durations and trace timestamps are exactly reproducible. Reading the
//! clock never allocates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A nanosecond clock: monotonic-since-epoch in production, manually
/// advanced in tests.
#[derive(Debug, Clone)]
pub enum Clock {
    /// Monotonic time since the clock's construction.
    System {
        /// The instant `now_nanos` counts from.
        epoch: Instant,
    },
    /// A hand-advanced nanosecond counter (deterministic tests).
    Manual(Arc<AtomicU64>),
}

impl Clock {
    /// A wall clock whose epoch is "now".
    pub fn system() -> Clock {
        Clock::System {
            epoch: Instant::now(),
        }
    }

    /// A manual clock starting at zero; advance it through the returned
    /// handle with [`Clock::advance`] or by storing into the atomic.
    pub fn manual() -> Clock {
        Clock::Manual(Arc::new(AtomicU64::new(0)))
    }

    /// Nanoseconds since the clock's epoch. Never allocates.
    pub fn now_nanos(&self) -> u64 {
        match self {
            Clock::System { epoch } => {
                let d = epoch.elapsed();
                d.as_secs()
                    .saturating_mul(1_000_000_000)
                    .saturating_add(u64::from(d.subsec_nanos()))
            }
            Clock::Manual(t) => t.load(Ordering::Relaxed),
        }
    }

    /// Advances a manual clock by `nanos`; no-op on a system clock.
    pub fn advance(&self, nanos: u64) {
        if let Clock::Manual(t) = self {
            t.fetch_add(nanos, Ordering::Relaxed);
        }
    }
}

impl Default for Clock {
    fn default() -> Clock {
        Clock::system()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_deterministic() {
        let c = Clock::manual();
        assert_eq!(c.now_nanos(), 0);
        c.advance(1_500);
        assert_eq!(c.now_nanos(), 1_500);
        let c2 = c.clone();
        c2.advance(500);
        assert_eq!(c.now_nanos(), 2_000, "clones share the counter");
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = Clock::system();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
        c.advance(1); // no-op, must not panic
    }
}
