//! Structured event tracing: a bounded ring of typed round and
//! connection events, drainable as JSONL (`--trace-out`).
//!
//! Events are `Copy` with numeric-only payloads, so recording one is a
//! mutex lock plus a slot write into a preallocated ring — no
//! allocation on the steady-state path. When the ring is full the
//! oldest event is overwritten and a drop counter increments; the
//! JSONL drain reports the drop count so a truncated trace is never
//! mistaken for a complete one.

use std::sync::{Arc, Mutex};

use crate::clock::Clock;

/// What happened. Every payload is numeric so events stay `Copy` and
/// recording stays allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A training round began with this cohort size.
    RoundStarted {
        /// Round index.
        round: u64,
        /// Clients contacted this round.
        cohort: u64,
    },
    /// A training round committed.
    RoundCommitted {
        /// Round index.
        round: u64,
        /// Updates folded into the global.
        reported: u64,
        /// Clients contacted.
        cohort: u64,
        /// 1 when the round committed on a quorum (partial) fold.
        degraded: u64,
    },
    /// The round driver re-contacted survivors after drops/rejections.
    ReRound {
        /// Round index.
        round: u64,
        /// 1-based retry attempt within the round.
        attempt: u64,
    },
    /// A client's update was rejected by the admission layer.
    ClientRejected {
        /// Round index.
        round: u64,
        /// Client id.
        client: u64,
        /// The violation's stable numeric code (1 = non-finite, 2 =
        /// delta-norm, 3 = stale nonce, 4 = duplicate, 5 = handler
        /// panic).
        violation: u64,
        /// The client's strike count after this rejection.
        strikes: u64,
    },
    /// A client crossed the strike budget and was quarantined.
    Quarantined {
        /// Client id.
        client: u64,
        /// Strikes at eviction.
        strikes: u64,
    },
    /// An unlearning request entered the queue.
    UnlearnQueued {
        /// Requesting client id.
        client: u64,
        /// Samples requested for removal.
        removed: u64,
        /// Queue depth after the submit.
        depth: u64,
    },
    /// An unlearning drain began.
    DrainStarted {
        /// Requests staged into the batch.
        pending: u64,
    },
    /// An unlearning drain committed.
    DrainCommitted {
        /// Requests served by the batch.
        requests: u64,
        /// Distillation rounds the batch cost.
        rounds: u64,
    },
    /// Recovery replayed WAL entries into the queue at startup.
    RecoveryReplayed {
        /// Round the run resumes from.
        next_round: u64,
        /// WAL entries replayed.
        replayed: u64,
    },
    /// A shard retrain task entered the shard queue.
    ShardTaskQueued {
        /// Owning client id.
        client: u64,
        /// Shard index within the client.
        shard: u64,
        /// Shard-queue depth after the submit.
        depth: u64,
    },
    /// A shard drain fell back to the coded degraded path: the owner
    /// straggled past the deadline, the checkpoint was reconstructed
    /// from parity and a delegate retrained the shard.
    ShardDegraded {
        /// Straggling owner client id.
        client: u64,
        /// Shard index within the owner.
        shard: u64,
        /// Healthy group member that executed the retrain.
        delegate: u64,
    },
    /// A shard task was re-enqueued because the drain deadline expired
    /// before it could run; the batch committed partial progress.
    ShardRequeued {
        /// Owning client id.
        client: u64,
        /// Shard index within the client.
        shard: u64,
        /// Tasks still pending after the requeue.
        remaining: u64,
    },
}

impl EventKind {
    /// The event's JSONL `kind` tag.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::RoundStarted { .. } => "round_started",
            EventKind::RoundCommitted { .. } => "round_committed",
            EventKind::ReRound { .. } => "re_round",
            EventKind::ClientRejected { .. } => "client_rejected",
            EventKind::Quarantined { .. } => "quarantined",
            EventKind::UnlearnQueued { .. } => "unlearn_queued",
            EventKind::DrainStarted { .. } => "drain_started",
            EventKind::DrainCommitted { .. } => "drain_committed",
            EventKind::RecoveryReplayed { .. } => "recovery_replayed",
            EventKind::ShardTaskQueued { .. } => "shard_task_queued",
            EventKind::ShardDegraded { .. } => "shard_degraded",
            EventKind::ShardRequeued { .. } => "shard_requeued",
        }
    }

    /// The payload as `(field, value)` pairs, for the JSONL writer.
    fn fields(&self) -> [Option<(&'static str, u64)>; 4] {
        match *self {
            EventKind::RoundStarted { round, cohort } => {
                [Some(("round", round)), Some(("cohort", cohort)), None, None]
            }
            EventKind::RoundCommitted {
                round,
                reported,
                cohort,
                degraded,
            } => [
                Some(("round", round)),
                Some(("reported", reported)),
                Some(("cohort", cohort)),
                Some(("degraded", degraded)),
            ],
            EventKind::ReRound { round, attempt } => [
                Some(("round", round)),
                Some(("attempt", attempt)),
                None,
                None,
            ],
            EventKind::ClientRejected {
                round,
                client,
                violation,
                strikes,
            } => [
                Some(("round", round)),
                Some(("client", client)),
                Some(("violation", violation)),
                Some(("strikes", strikes)),
            ],
            EventKind::Quarantined { client, strikes } => [
                Some(("client", client)),
                Some(("strikes", strikes)),
                None,
                None,
            ],
            EventKind::UnlearnQueued {
                client,
                removed,
                depth,
            } => [
                Some(("client", client)),
                Some(("removed", removed)),
                Some(("depth", depth)),
                None,
            ],
            EventKind::DrainStarted { pending } => [Some(("pending", pending)), None, None, None],
            EventKind::DrainCommitted { requests, rounds } => [
                Some(("requests", requests)),
                Some(("rounds", rounds)),
                None,
                None,
            ],
            EventKind::RecoveryReplayed {
                next_round,
                replayed,
            } => [
                Some(("next_round", next_round)),
                Some(("replayed", replayed)),
                None,
                None,
            ],
            EventKind::ShardTaskQueued {
                client,
                shard,
                depth,
            } => [
                Some(("client", client)),
                Some(("shard", shard)),
                Some(("depth", depth)),
                None,
            ],
            EventKind::ShardDegraded {
                client,
                shard,
                delegate,
            } => [
                Some(("client", client)),
                Some(("shard", shard)),
                Some(("delegate", delegate)),
                None,
            ],
            EventKind::ShardRequeued {
                client,
                shard,
                remaining,
            } => [
                Some(("client", client)),
                Some(("shard", shard)),
                Some(("remaining", remaining)),
                None,
            ],
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Clock nanoseconds at record time.
    pub at_nanos: u64,
    /// Monotonic sequence number (survives ring overwrites, so gaps in
    /// a drained trace are visible).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The preallocated bounded ring.
#[derive(Debug)]
struct EventRing {
    buf: Vec<Event>,
    cap: usize,
    /// Index of the oldest event once the ring has wrapped.
    start: usize,
    next_seq: u64,
    dropped: u64,
}

impl EventRing {
    fn push(&mut self, at_nanos: u64, kind: EventKind) {
        let ev = Event {
            at_nanos,
            seq: self.next_seq,
            kind,
        };
        self.next_seq += 1;
        if self.buf.len() < self.cap {
            // Within preallocated capacity: no allocation.
            self.buf.push(ev);
        } else if self.cap > 0 {
            self.buf[self.start] = ev;
            self.start = (self.start + 1) % self.cap;
            self.dropped += 1;
        } else {
            self.dropped += 1;
        }
    }

    fn iter_in_order(&self) -> impl Iterator<Item = &Event> {
        self.buf[self.start..]
            .iter()
            .chain(self.buf[..self.start].iter())
    }
}

/// A cloneable recording handle. `Default` is disabled: recording into
/// it is a no-op branch, so uninstrumented paths cost nothing.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    ring: Option<Arc<Mutex<EventRing>>>,
    clock: Clock,
}

impl Trace {
    /// An enabled trace holding up to `capacity` events, stamped by
    /// `clock`. The ring is allocated once, here.
    pub fn bounded(capacity: usize, clock: Clock) -> Trace {
        Trace {
            ring: Some(Arc::new(Mutex::new(EventRing {
                buf: Vec::with_capacity(capacity),
                cap: capacity,
                start: 0,
                next_seq: 0,
                dropped: 0,
            }))),
            clock,
        }
    }

    /// A disabled trace (recording is a no-op).
    pub fn disabled() -> Trace {
        Trace::default()
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.ring.is_some()
    }

    /// Records `kind` stamped with the trace's clock. Steady-state
    /// cost: one mutex lock and a slot write — no allocation.
    pub fn record(&self, kind: EventKind) {
        if let Some(ring) = &self.ring {
            let at = self.clock.now_nanos();
            ring.lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(at, kind);
        }
    }

    /// Events recorded but overwritten before a drain.
    pub fn dropped(&self) -> u64 {
        self.ring
            .as_ref()
            .map(|r| r.lock().unwrap_or_else(|e| e.into_inner()).dropped)
            .unwrap_or(0)
    }

    /// Serializes the ring's contents (oldest first) as JSON Lines into
    /// `out`, leaving the ring intact. Returns the number of events
    /// written.
    pub fn write_jsonl(&self, out: &mut impl std::io::Write) -> std::io::Result<usize> {
        let Some(ring) = &self.ring else {
            return Ok(0);
        };
        let ring = ring.lock().unwrap_or_else(|e| e.into_inner());
        let mut n = 0;
        for ev in ring.iter_in_order() {
            write!(
                out,
                "{{\"seq\":{},\"at_nanos\":{},\"kind\":\"{}\"",
                ev.seq,
                ev.at_nanos,
                ev.kind.name()
            )?;
            for (k, v) in ev.kind.fields().iter().flatten() {
                write!(out, ",\"{k}\":{v}")?;
            }
            writeln!(out, "}}")?;
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let clock = Clock::manual();
        let t = Trace::bounded(2, clock.clone());
        for round in 0..5 {
            clock.advance(10);
            t.record(EventKind::RoundStarted { round, cohort: 4 });
        }
        assert_eq!(t.dropped(), 3);
        let mut buf = Vec::new();
        let n = t.write_jsonl(&mut buf).unwrap();
        assert_eq!(n, 2);
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"seq\":3") && lines[0].contains("\"round\":3"));
        assert!(lines[1].contains("\"seq\":4") && lines[1].contains("\"round\":4"));
        assert!(lines[0].contains("\"at_nanos\":40"));
    }

    #[test]
    fn disabled_trace_is_a_no_op() {
        let t = Trace::disabled();
        t.record(EventKind::DrainStarted { pending: 1 });
        assert!(!t.is_enabled());
        let mut buf = Vec::new();
        assert_eq!(t.write_jsonl(&mut buf).unwrap(), 0);
        assert!(buf.is_empty());
    }

    #[test]
    fn every_kind_serializes_its_fields() {
        let t = Trace::bounded(16, Clock::manual());
        t.record(EventKind::RoundCommitted {
            round: 1,
            reported: 3,
            cohort: 4,
            degraded: 0,
        });
        t.record(EventKind::ReRound {
            round: 1,
            attempt: 1,
        });
        t.record(EventKind::ClientRejected {
            round: 1,
            client: 2,
            violation: 3,
            strikes: 1,
        });
        t.record(EventKind::Quarantined {
            client: 2,
            strikes: 3,
        });
        t.record(EventKind::UnlearnQueued {
            client: 0,
            removed: 5,
            depth: 1,
        });
        t.record(EventKind::DrainCommitted {
            requests: 1,
            rounds: 2,
        });
        t.record(EventKind::RecoveryReplayed {
            next_round: 7,
            replayed: 2,
        });
        t.record(EventKind::ShardTaskQueued {
            client: 1,
            shard: 2,
            depth: 3,
        });
        t.record(EventKind::ShardDegraded {
            client: 1,
            shard: 2,
            delegate: 0,
        });
        t.record(EventKind::ShardRequeued {
            client: 1,
            shard: 2,
            remaining: 4,
        });
        let mut buf = Vec::new();
        assert_eq!(t.write_jsonl(&mut buf).unwrap(), 10);
        let text = String::from_utf8(buf).unwrap();
        for tag in [
            "round_committed",
            "re_round",
            "client_rejected",
            "quarantined",
            "unlearn_queued",
            "drain_committed",
            "recovery_replayed",
            "shard_task_queued",
            "shard_degraded",
            "shard_requeued",
        ] {
            assert!(text.contains(tag), "missing {tag} in {text}");
        }
        assert!(text.contains("\"degraded\":0"));
        assert!(text.contains("\"violation\":3"));
        assert!(text.contains("\"delegate\":0"));
        assert!(text.contains("\"remaining\":4"));
    }
}
