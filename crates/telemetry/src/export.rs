//! Renderers over a [`Registry`] snapshot: Prometheus text exposition
//! (`/metrics`), a JSON snapshot (`/json`), and the human-readable
//! table behind `goldfish-coordinator --status` (`/status`).
//!
//! All three allocate freely — they run on the admin endpoint or at
//! process exit, never on the round hot path.

use crate::registry::{Metric, Registry};

/// The base metric family name: everything before an embedded label
/// set (`foo_total{kind="x"}` → `foo_total`).
fn base(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Nanoseconds → seconds, as Prometheus convention wants.
fn secs(nanos: u64) -> f64 {
    nanos as f64 / 1e9
}

/// Renders the registry as Prometheus text exposition (version 0.0.4).
/// `# HELP`/`# TYPE` headers are emitted once per family even when the
/// family spans several labeled series.
pub fn prometheus_text(registry: &Registry) -> String {
    let metrics = registry.metrics();
    let mut out = String::new();
    let mut last_family = String::new();
    for m in &metrics {
        let fam = base(m.name());
        let fresh = fam != last_family;
        match m {
            Metric::Counter(name, help, c) => {
                if fresh {
                    out.push_str(&format!("# HELP {fam} {help}\n# TYPE {fam} counter\n"));
                }
                out.push_str(&format!("{name} {}\n", c.get()));
            }
            Metric::Gauge(name, help, g) => {
                if fresh {
                    out.push_str(&format!("# HELP {fam} {help}\n# TYPE {fam} gauge\n"));
                }
                out.push_str(&format!("{name} {}\n", g.get()));
            }
            Metric::Histogram(name, help, h) => {
                if fresh {
                    out.push_str(&format!("# HELP {fam} {help}\n# TYPE {fam} histogram\n"));
                }
                for (bound, cum) in h.cumulative_buckets() {
                    if bound == u64::MAX {
                        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cum}\n"));
                    } else {
                        out.push_str(&format!("{name}_bucket{{le=\"{}\"}} {cum}\n", secs(bound)));
                    }
                }
                out.push_str(&format!("{name}_sum {}\n", secs(h.sum_nanos())));
                out.push_str(&format!("{name}_count {}\n", h.count()));
            }
        }
        last_family = fam.to_string();
    }
    out
}

/// Minimal JSON string escaping for metric names (controlled ASCII, but
/// quotes and backslashes must still be safe).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the registry as one JSON object:
/// `{"uptime_seconds":…,"events_dropped":…,"counters":{…},"gauges":{…},"histograms":{…}}`.
pub fn json_snapshot(registry: &Registry, uptime_nanos: u64, events_dropped: u64) -> String {
    let metrics = registry.metrics();
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut hists = Vec::new();
    for m in &metrics {
        match m {
            Metric::Counter(name, _, c) => {
                counters.push(format!("\"{}\":{}", json_escape(name), c.get()));
            }
            Metric::Gauge(name, _, g) => {
                gauges.push(format!("\"{}\":{}", json_escape(name), g.get()));
            }
            Metric::Histogram(name, _, h) => {
                let buckets: Vec<String> = h
                    .cumulative_buckets()
                    .into_iter()
                    .map(|(bound, cum)| {
                        if bound == u64::MAX {
                            format!("[\"+Inf\",{cum}]")
                        } else {
                            format!("[{},{cum}]", secs(bound))
                        }
                    })
                    .collect();
                hists.push(format!(
                    "\"{}\":{{\"count\":{},\"sum_seconds\":{},\"buckets\":[{}]}}",
                    json_escape(name),
                    h.count(),
                    secs(h.sum_nanos()),
                    buckets.join(",")
                ));
            }
        }
    }
    format!(
        "{{\"uptime_seconds\":{},\"events_dropped\":{events_dropped},\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
        secs(uptime_nanos),
        counters.join(","),
        gauges.join(","),
        hists.join(",")
    )
}

/// Renders the registry as an aligned human-readable table — what
/// `goldfish-coordinator --status` prints.
pub fn status_table(registry: &Registry, uptime_nanos: u64) -> String {
    let metrics = registry.metrics();
    let mut rows: Vec<(String, String)> =
        vec![("uptime".to_string(), format!("{:.1}s", secs(uptime_nanos)))];
    for m in &metrics {
        match m {
            Metric::Counter(name, _, c) => rows.push((name.clone(), c.get().to_string())),
            Metric::Gauge(name, _, g) => rows.push((name.clone(), g.get().to_string())),
            Metric::Histogram(name, _, h) => {
                let count = h.count();
                let mean = if count == 0 {
                    0.0
                } else {
                    secs(h.sum_nanos()) / count as f64
                };
                rows.push((name.clone(), format!("count {count}, mean {:.6}s", mean)));
            }
        }
    }
    let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (name, value) in rows {
        out.push_str(&format!("{name:<width$}  {value}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Registry {
        let r = Registry::new();
        r.counter("goldfish_rounds_total", "rounds committed")
            .add(3);
        r.counter("goldfish_rejected_total{kind=\"non_finite\"}", "rejections")
            .add(1);
        r.counter("goldfish_rejected_total{kind=\"duplicate\"}", "rejections")
            .add(2);
        r.gauge("goldfish_queue_depth", "queue depth").set(5);
        let h = r.histogram_with_bounds("goldfish_round_seconds", "round latency", &[1_000_000]);
        h.observe_nanos(500_000);
        h.observe_nanos(2_000_000);
        r
    }

    #[test]
    fn prometheus_text_groups_families_and_renders_histograms() {
        let text = prometheus_text(&sample());
        // One HELP/TYPE per family even with two labeled series.
        assert_eq!(text.matches("# TYPE goldfish_rejected_total").count(), 1);
        assert!(text.contains("goldfish_rejected_total{kind=\"non_finite\"} 1"));
        assert!(text.contains("goldfish_rejected_total{kind=\"duplicate\"} 2"));
        assert!(text.contains("goldfish_rounds_total 3"));
        assert!(text.contains("goldfish_queue_depth 5"));
        assert!(text.contains("goldfish_round_seconds_bucket{le=\"0.001\"} 1"));
        assert!(text.contains("goldfish_round_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("goldfish_round_seconds_count 2"));
        assert!(text.contains("goldfish_round_seconds_sum 0.0025"));
    }

    #[test]
    fn json_snapshot_is_one_object() {
        let json = json_snapshot(&sample(), 1_500_000_000, 4);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"uptime_seconds\":1.5"));
        assert!(json.contains("\"events_dropped\":4"));
        assert!(json.contains("\"goldfish_rounds_total\":3"));
        assert!(json.contains("\"goldfish_queue_depth\":5"));
        assert!(json.contains("\"count\":2"));
        assert!(json.contains("[\"+Inf\",2]"));
    }

    #[test]
    fn status_table_aligns_and_summarizes() {
        let table = status_table(&sample(), 2_000_000_000);
        assert!(table.contains("uptime"));
        assert!(table.contains("2.0s"));
        assert!(table.contains("goldfish_rounds_total"));
        assert!(table.contains("count 2, mean"));
    }
}
