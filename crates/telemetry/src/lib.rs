//! `goldfish-telemetry` — the instrumentation spine (DESIGN.md §15).
//!
//! A deterministic observability layer shared by `goldfish-fed`,
//! `goldfish-serve` and the benches, built on three rules:
//!
//! 1. **Zero allocation after registration.** Every metric is
//!    preregistered at startup into a [`registry::Registry`]; the
//!    handles handed out ([`registry::Counter`], [`registry::Gauge`],
//!    [`registry::Histogram`]) are `Arc`-backed atomics whose update
//!    operations never touch the allocator, so the serve hot path keeps
//!    its `alloc_free_round` pin with metrics enabled.
//! 2. **Off the numeric path.** Instrumentation observes timings and
//!    counts; it never feeds a value back into training, aggregation or
//!    sampling. Bitwise identity between telemetry-on and telemetry-off
//!    runs is pinned by `crates/serve/tests/telemetry.rs`.
//! 3. **Injected time.** All timestamps come from a [`clock::Clock`]
//!    (wall clock by default, a manual atomic in tests), so traces and
//!    log lines are reproducible under fault injection.
//!
//! Modules:
//!
//! * [`clock`] — the injected time source,
//! * [`registry`] — counters / gauges / fixed-bucket histograms,
//! * [`events`] — the bounded ring of typed round/connection events,
//!   drained as JSONL (`--trace-out`),
//! * [`export`] — Prometheus text exposition, JSON snapshot, and the
//!   human-readable status table served by the admin endpoint,
//! * [`logger`] — the leveled, timestamped, `GOLDFISH_LOG`-filtered
//!   stderr logger behind the [`error!`]/[`warn!`]/[`info!`]/[`debug!`]
//!   macros.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod events;
pub mod export;
pub mod logger;
pub mod registry;
