//! The daemons' leveled stderr logger: timestamped from the telemetry
//! clock, filtered by the `GOLDFISH_LOG` environment variable
//! (`error`, `warn`, `info` (default), `debug`, `trace`, `off`).
//!
//! Result lines the CI pipeline greps (round summaries, quarantine
//! notices, audit verdicts) stay on stdout via plain `println!`; this
//! logger replaces the daemons' diagnostic `eprintln!`s. The level is
//! checked before any formatting happens, so a filtered-out call costs
//! one atomic load and no allocation.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::clock::Clock;

/// Log severity, ascending verbosity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-affecting problems.
    Error = 1,
    /// Degraded but continuing.
    Warn = 2,
    /// Lifecycle milestones (default).
    Info = 3,
    /// Per-round diagnostics.
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    /// Parses a `GOLDFISH_LOG` value; `None` disables logging entirely.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            "off" | "none" | "0" => None,
            _ => Some(Level::Info),
        }
    }
}

/// 0 = off; otherwise the numeric value of the max enabled [`Level`].
static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
static CLOCK: OnceLock<Clock> = OnceLock::new();

/// Installs the logger's clock and reads `GOLDFISH_LOG`. Idempotent:
/// the first caller's clock wins (the daemons call this once at
/// startup). Returns the effective max level, `None` when off.
pub fn init(clock: Clock) -> Option<Level> {
    let _ = CLOCK.set(clock);
    let level = match std::env::var("GOLDFISH_LOG") {
        Ok(v) => Level::parse(&v),
        Err(_) => Some(Level::Info),
    };
    MAX_LEVEL.store(level.map(|l| l as u8).unwrap_or(0), Ordering::Relaxed);
    level
}

/// Whether `level` would currently be emitted — the macros' guard, so
/// filtered calls never format.
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Overrides the max level programmatically (tests; `--quiet` flags).
pub fn set_max_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map(|l| l as u8).unwrap_or(0), Ordering::Relaxed);
}

/// Emits one line to stderr: `[   12.345s] LEVEL message`. Called by
/// the macros after the [`enabled`] guard passed.
pub fn log(level: Level, args: std::fmt::Arguments<'_>) {
    if !enabled(level) {
        return;
    }
    let nanos = CLOCK.get_or_init(Clock::system).now_nanos();
    eprintln!("[{:>9.3}s] {:5} {args}", nanos as f64 / 1e9, level.tag());
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        if $crate::logger::enabled($crate::logger::Level::Error) {
            $crate::logger::log($crate::logger::Level::Error, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::logger::enabled($crate::logger::Level::Warn) {
            $crate::logger::log($crate::logger::Level::Warn, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::logger::enabled($crate::logger::Level::Info) {
            $crate::logger::log($crate::logger::Level::Info, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::logger::enabled($crate::logger::Level::Debug) {
            $crate::logger::log($crate::logger::Level::Debug, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_and_filtering() {
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("off"), None);
        assert_eq!(Level::parse("garbage"), Some(Level::Info));

        set_max_level(Some(Level::Warn));
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_max_level(None);
        assert!(!enabled(Level::Error));
        // Restore the default for other tests in this binary.
        set_max_level(Some(Level::Info));
    }
}
