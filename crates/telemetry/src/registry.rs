//! The metrics registry: preregistered counters, gauges and
//! fixed-bucket histograms behind plain atomics.
//!
//! Registration (startup) allocates; updates never do. Handles are
//! cheap `Arc` clones, safe to stash in hot structs and move into
//! closures. Registering the same name twice returns the existing
//! handle, so subsystems that share a metric (e.g. the coordinator and
//! its transport) converge on one cell instead of shadowing each other.
//!
//! Label sets are baked into the registered name
//! (`goldfish_updates_rejected_total{kind="non_finite"}`): the exporter
//! groups `# HELP`/`# TYPE` lines by the base name before `{`, which
//! keeps the registry itself allocation- and hashing-free on the update
//! path while still producing well-formed Prometheus exposition.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default latency bucket upper bounds, in nanoseconds: 100 µs to 10 s
/// in roughly 1-2.5-5 steps — wide enough for everything from a frame
/// read to a drain pass.
pub const LATENCY_BOUNDS_NANOS: &[u64] = &[
    100_000,        // 100 µs
    250_000,        // 250 µs
    500_000,        // 500 µs
    1_000_000,      // 1 ms
    2_500_000,      // 2.5 ms
    5_000_000,      // 5 ms
    10_000_000,     // 10 ms
    25_000_000,     // 25 ms
    50_000_000,     // 50 ms
    100_000_000,    // 100 ms
    250_000_000,    // 250 ms
    500_000_000,    // 500 ms
    1_000_000_000,  // 1 s
    2_500_000_000,  // 2.5 s
    5_000_000_000,  // 5 s
    10_000_000_000, // 10 s
];

/// A monotonically increasing counter. Updates are relaxed atomic adds
/// — no lock, no allocation. `Default` is a *detached* counter: it
/// counts but is not exported; [`Counter::transfer_into`] moves its
/// total into a registered handle once a registry shows up (the TCP
/// transport counts handshake bytes before the coordinator exists).
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counting handle not attached to any registry.
    pub fn detached() -> Counter {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Moves this handle's accumulated total into `target` and rebinds
    /// `self` to `target`'s cell — how a detached counter joins a
    /// registry without losing pre-registration counts.
    pub fn transfer_into(&mut self, target: &Counter) {
        if Arc::ptr_eq(&self.0, &target.0) {
            return;
        }
        let carried = self.0.swap(0, Ordering::Relaxed);
        target.0.fetch_add(carried, Ordering::Relaxed);
        self.0 = Arc::clone(&target.0);
    }
}

impl Default for Counter {
    fn default() -> Counter {
        Counter::detached()
    }
}

/// A gauge: a settable signed value (queue depths, cohort sizes).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Gauge {
        Gauge(Arc::new(AtomicI64::new(0)))
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` exceeds the current value (peak
    /// tracking).
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge::detached()
    }
}

/// Shared storage of one histogram: fixed bounds chosen at
/// registration, one atomic per bucket. `observe` is a linear scan over
/// at most a few dozen bounds — no lock, no allocation.
#[derive(Debug)]
pub struct HistCore {
    /// Upper bounds in nanoseconds, ascending; an implicit `+Inf`
    /// bucket follows.
    bounds: Vec<u64>,
    /// Non-cumulative per-bucket hit counts; `buckets.len() ==
    /// bounds.len() + 1` (the last is `+Inf`).
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

/// A fixed-bucket latency histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistCore>);

impl Histogram {
    /// A histogram with the given bounds, not attached to any registry.
    pub fn detached(bounds_nanos: &[u64]) -> Histogram {
        let mut buckets = Vec::with_capacity(bounds_nanos.len() + 1);
        for _ in 0..=bounds_nanos.len() {
            buckets.push(AtomicU64::new(0));
        }
        Histogram(Arc::new(HistCore {
            bounds: bounds_nanos.to_vec(),
            buckets,
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }))
    }

    /// Records one observation of `nanos`.
    pub fn observe_nanos(&self, nanos: u64) {
        let core = &self.0;
        let idx = core
            .bounds
            .iter()
            .position(|&b| nanos <= b)
            .unwrap_or(core.bounds.len());
        core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations in nanoseconds.
    pub fn sum_nanos(&self) -> u64 {
        self.0.sum_nanos.load(Ordering::Relaxed)
    }

    /// `(upper_bound_nanos, cumulative_count)` per bound, ending with
    /// the `+Inf` bucket as `(u64::MAX, total)`. Allocates — exporter
    /// use only.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let core = &self.0;
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(core.bounds.len() + 1);
        for (i, &b) in core.bounds.iter().enumerate() {
            acc += core.buckets[i].load(Ordering::Relaxed);
            out.push((b, acc));
        }
        acc += core.buckets[core.bounds.len()].load(Ordering::Relaxed);
        out.push((u64::MAX, acc));
        out
    }
}

impl Default for Histogram {
    /// A detached histogram with the default latency bounds.
    fn default() -> Histogram {
        Histogram::detached(LATENCY_BOUNDS_NANOS)
    }
}

/// One registered metric, as the exporter sees it.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A counter's name, help text and handle.
    Counter(String, String, Counter),
    /// A gauge's name, help text and handle.
    Gauge(String, String, Gauge),
    /// A histogram's name, help text and handle.
    Histogram(String, String, Histogram),
}

impl Metric {
    /// The full registered name (labels included).
    pub fn name(&self) -> &str {
        match self {
            Metric::Counter(n, _, _) | Metric::Gauge(n, _, _) | Metric::Histogram(n, _, _) => n,
        }
    }
}

/// The registry: a startup-time name → handle table. Cloned handles
/// outlive it; the registry itself is only consulted at registration
/// and export.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Vec<Metric>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Metric>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers (or retrieves) the counter `name`.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let mut metrics = self.lock();
        for m in metrics.iter() {
            if let Metric::Counter(n, _, c) = m {
                if n == name {
                    return c.clone();
                }
            }
        }
        let c = Counter::detached();
        metrics.push(Metric::Counter(
            name.to_string(),
            help.to_string(),
            c.clone(),
        ));
        c
    }

    /// Registers (or retrieves) the gauge `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let mut metrics = self.lock();
        for m in metrics.iter() {
            if let Metric::Gauge(n, _, g) = m {
                if n == name {
                    return g.clone();
                }
            }
        }
        let g = Gauge::detached();
        metrics.push(Metric::Gauge(name.to_string(), help.to_string(), g.clone()));
        g
    }

    /// Registers (or retrieves) the histogram `name` with the default
    /// latency bounds.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with_bounds(name, help, LATENCY_BOUNDS_NANOS)
    }

    /// Registers (or retrieves) the histogram `name` with explicit
    /// bucket bounds (nanoseconds).
    pub fn histogram_with_bounds(&self, name: &str, help: &str, bounds: &[u64]) -> Histogram {
        let mut metrics = self.lock();
        for m in metrics.iter() {
            if let Metric::Histogram(n, _, h) = m {
                if n == name {
                    return h.clone();
                }
            }
        }
        let h = Histogram::detached(bounds);
        metrics.push(Metric::Histogram(
            name.to_string(),
            help.to_string(),
            h.clone(),
        ));
        h
    }

    /// A snapshot of every registered metric, in registration order.
    pub fn metrics(&self) -> Vec<Metric> {
        self.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_by_name() {
        let r = Registry::new();
        let a = r.counter("x_total", "a");
        let b = r.counter("x_total", "ignored");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4, "same name, same cell");
        assert_eq!(r.metrics().len(), 1);
    }

    #[test]
    fn counter_transfer_carries_pre_registration_counts() {
        let mut detached = Counter::detached();
        detached.add(7);
        let r = Registry::new();
        let reg = r.counter("bytes_total", "");
        reg.add(1);
        detached.transfer_into(&reg);
        assert_eq!(reg.get(), 8);
        detached.add(2); // now writes through to the registered cell
        assert_eq!(reg.get(), 10);
        // Transferring again is a no-op (same cell).
        let mut d2 = detached.clone();
        d2.transfer_into(&reg);
        assert_eq!(reg.get(), 10);
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf() {
        let h = Histogram::detached(&[10, 100]);
        h.observe_nanos(5);
        h.observe_nanos(50);
        h.observe_nanos(5_000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_nanos(), 5_055);
        assert_eq!(
            h.cumulative_buckets(),
            vec![(10, 1), (100, 2), (u64::MAX, 3)]
        );
    }

    #[test]
    fn gauge_set_max_tracks_peaks() {
        let g = Gauge::detached();
        g.set_max(3);
        g.set_max(1);
        assert_eq!(g.get(), 3);
        g.set(-2);
        g.add(1);
        assert_eq!(g.get(), -1);
    }
}
