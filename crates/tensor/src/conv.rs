//! Convolution and pooling kernels.
//!
//! Convolution is implemented as *batched* `im2col` + GEMM: the whole
//! minibatch is lowered into one `[c·kh·kw, n·oh·ow]` column matrix held
//! in a reusable [`ConvWorkspace`], so forward is a single call into
//! [`crate::engine`] per batch (instead of one allocation + matmul per
//! image) and backward is two batched GEMMs plus a `col2im` scatter.

use crate::engine;
use crate::Tensor;

/// Geometry of a 2-D convolution or pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Conv2dSpec {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a spec, validating the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the kernel is empty or the stride is zero.
    pub fn new(kh: usize, kw: usize, stride: usize, padding: usize) -> Self {
        assert!(kh > 0 && kw > 0, "kernel must be non-empty");
        assert!(stride > 0, "stride must be positive");
        Conv2dSpec {
            kh,
            kw,
            stride,
            padding,
        }
    }

    /// Output spatial size for an input of `h × w`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit into the padded input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        assert!(
            ph >= self.kh && pw >= self.kw,
            "kernel {}x{} larger than padded input {}x{}",
            self.kh,
            self.kw,
            ph,
            pw
        );
        (
            (ph - self.kh) / self.stride + 1,
            (pw - self.kw) / self.stride + 1,
        )
    }
}

/// Number of `f32` elements the blocked column matrix may occupy
/// (~384 KB): the minibatch is lowered in image blocks sized so the
/// column matrix, the staging matrix and the outputs stay cache-resident.
/// One-GEMM-per-whole-batch sounds attractive but streams multi-megabyte
/// intermediates through DRAM; block-wise batching keeps the GEMM batched
/// across images *and* the working set in cache.
const COL_BLOCK_ELEMS: usize = 96 * 1024;

/// Reusable scratch buffers for the im2col convolution lowering.
///
/// The lowering is batched over image blocks (see [`COL_BLOCK_ELEMS`]) —
/// one GEMM per block instead of one per image — and the buffers are
/// reused across blocks, steps and epochs: the conv hot path performs no
/// per-image allocations. A `Conv2d` layer owns one workspace; the free
/// functions below also accept an external one.
#[derive(Debug, Default, Clone)]
pub struct ConvWorkspace {
    /// Column matrix for the current block: `[c·kh·kw, blk·oh·ow]`.
    col: Vec<f32>,
    /// Filter-major staging matrix `[f, blk·oh·ow]` (forward GEMM output;
    /// backward gather of `grad_out`).
    fmat: Vec<f32>,
    /// Backward scratch: `∂L/∂col` for the current block.
    gcol: Vec<f32>,
    /// Backward scratch: per-block `∂L/∂W` before accumulation.
    gw_block: Vec<f32>,
}

impl ConvWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        ConvWorkspace::default()
    }
}

/// Images per lowering block for the given per-image column size.
fn block_images(ckk: usize, ohow: usize, n: usize) -> usize {
    (COL_BLOCK_ELEMS / (ckk * ohow).max(1)).clamp(1, n.max(1))
}

/// Lowers the image block `[blk, c, h, w]` into the column matrix
/// `[c·kh·kw, blk·oh·ow]` (column index `s·oh·ow + oy·ow + ox` with `s`
/// relative to the block), writing into `col` (resized and zero-filled —
/// zeros are the padding contribution).
#[allow(clippy::too_many_arguments)] // convolution geometry; crate-internal
fn im2col_block(
    input: &[f32],
    blk: usize,
    c: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    oh: usize,
    ow: usize,
    col: &mut Vec<f32>,
) {
    let krows = c * spec.kh * spec.kw;
    let cols = blk * oh * ow;
    col.clear();
    col.resize(krows * cols, 0.0);
    let pad = spec.padding as isize;
    for s in 0..blk {
        let img = &input[s * c * h * w..(s + 1) * c * h * w];
        for ch in 0..c {
            for ky in 0..spec.kh {
                for kx in 0..spec.kw {
                    let krow = (ch * spec.kh + ky) * spec.kw + kx;
                    let orow = &mut col[krow * cols + s * oh * ow..krow * cols + (s + 1) * oh * ow];
                    for oy in 0..oh {
                        let iy = (oy * spec.stride) as isize + ky as isize - pad;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for ox in 0..ow {
                            let ix = (ox * spec.stride) as isize + kx as isize - pad;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            orow[oy * ow + ox] = img[(ch * h + iy as usize) * w + ix as usize];
                        }
                    }
                }
            }
        }
    }
}

/// Inverse of [`im2col_block`]: scatters the block's column matrix back
/// onto images, **accumulating** overlapping contributions (as backprop
/// requires). `img_out` covers the same block and must be zeroed by the
/// caller.
#[allow(clippy::too_many_arguments)] // convolution geometry; crate-internal
fn col2im_block(
    col: &[f32],
    blk: usize,
    c: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    oh: usize,
    ow: usize,
    img_out: &mut [f32],
) {
    let cols = blk * oh * ow;
    let pad = spec.padding as isize;
    for s in 0..blk {
        let img = &mut img_out[s * c * h * w..(s + 1) * c * h * w];
        for ch in 0..c {
            for ky in 0..spec.kh {
                for kx in 0..spec.kw {
                    let krow = (ch * spec.kh + ky) * spec.kw + kx;
                    let crow = &col[krow * cols + s * oh * ow..krow * cols + (s + 1) * oh * ow];
                    for oy in 0..oh {
                        let iy = (oy * spec.stride) as isize + ky as isize - pad;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for ox in 0..ow {
                            let ix = (ox * spec.stride) as isize + kx as isize - pad;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            img[(ch * h + iy as usize) * w + ix as usize] += crow[oy * ow + ox];
                        }
                    }
                }
            }
        }
    }
}

/// Forward 2-D convolution over a reusable workspace.
///
/// * `input`: `[n, c, h, w]`
/// * `weight`: `[f, c, kh, kw]`
/// * `bias`: `[f]`
///
/// The minibatch is lowered block-wise (one GEMM per cache-sized image
/// block, zero per-image allocations). Returns `[n, f, oh, ow]`.
///
/// # Panics
///
/// Panics on rank or channel mismatches.
pub fn conv2d_forward_ws(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    spec: &Conv2dSpec,
    ws: &mut ConvWorkspace,
) -> Tensor {
    let mut out = Tensor::zeros(vec![0]);
    conv2d_forward_into(input, weight, bias, spec, ws, &mut out);
    out
}

/// [`conv2d_forward_ws`] writing into a caller-owned output tensor
/// (resized in place) — the allocation-free training-runtime entry point.
///
/// # Panics
///
/// Panics on rank or channel mismatches.
pub fn conv2d_forward_into(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    spec: &Conv2dSpec,
    ws: &mut ConvWorkspace,
    out: &mut Tensor,
) {
    let (n, c, h, w) = input.dims4();
    let (f, wc, kh, kw) = weight.dims4();
    assert_eq!(c, wc, "conv channel mismatch: input {c} vs weight {wc}");
    assert_eq!((kh, kw), (spec.kh, spec.kw), "weight does not match spec");
    assert_eq!(bias.len(), f, "bias length {} != filters {f}", bias.len());
    let (oh, ow) = spec.output_hw(h, w);
    let ckk = c * kh * kw;
    let ohow = oh * ow;
    let iv = input.as_slice();
    let bv = bias.as_slice();
    out.resize(&[n, f, oh, ow]);
    let ov = out.as_mut_slice();
    let step = block_images(ckk, ohow, n);
    let mut s0 = 0;
    while s0 < n {
        let blk = step.min(n - s0);
        let x = blk * ohow;
        im2col_block(
            &iv[s0 * c * h * w..(s0 + blk) * c * h * w],
            blk,
            c,
            h,
            w,
            spec,
            oh,
            ow,
            &mut ws.col,
        );
        // [f, ckk] · [ckk, blk·oh·ow] → [f, blk·oh·ow]; the row-major
        // `[f, c, kh, kw]` weight buffer *is* the `[f, ckk]` matrix.
        ws.fmat.clear();
        ws.fmat.resize(f * x, 0.0);
        engine::gemm(f, ckk, x, weight.as_slice(), &ws.col, &mut ws.fmat);
        // Scatter filter-major `[f, blk·oh·ow]` into batch-major
        // `[blk, f, oh·ow]`, adding the bias.
        for s in 0..blk {
            for fi in 0..f {
                let srcr = &ws.fmat[fi * x + s * ohow..fi * x + (s + 1) * ohow];
                let dst = &mut ov[((s0 + s) * f + fi) * ohow..((s0 + s) * f + fi + 1) * ohow];
                let bias_fi = bv[fi];
                for (o, &v) in dst.iter_mut().zip(srcr) {
                    *o = v + bias_fi;
                }
            }
        }
        s0 += blk;
    }
}

/// Backward 2-D convolution over a reusable workspace.
///
/// Given `grad_out = ∂L/∂output` of shape `[n, f, oh, ow]`, the original
/// `input` and the layer `weight`, returns
/// `(grad_input, grad_weight, grad_bias)`. Runs block-wise like the
/// forward pass, re-lowering each image block (recomputing im2col is far
/// cheaper than keeping — and streaming — a whole-batch column matrix):
/// `∂L/∂W += G · colᵀ`, `∂L/∂col = Wᵀ · G`, with `G` the filter-major
/// gather of the block's `grad_out`.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn conv2d_backward_ws(
    grad_out: &Tensor,
    input: &Tensor,
    weight: &Tensor,
    spec: &Conv2dSpec,
    ws: &mut ConvWorkspace,
) -> (Tensor, Tensor, Tensor) {
    let mut grad_in = Tensor::zeros(vec![0]);
    let mut grad_w = Tensor::zeros(vec![0]);
    let mut grad_b = Tensor::zeros(vec![0]);
    conv2d_backward_into(
        grad_out,
        input,
        weight,
        spec,
        ws,
        Some(&mut grad_in),
        &mut grad_w,
        &mut grad_b,
    );
    (grad_in, grad_w, grad_b)
}

/// [`conv2d_backward_ws`] writing into caller-owned gradient tensors
/// (each resized in place and overwritten) — the allocation-free
/// training-runtime entry point.
///
/// Pass `grad_in: None` to skip the `∂L/∂input` half entirely (the
/// `Wᵀ·G` GEMM and the `col2im` scatter): the parameter gradients do not
/// depend on it, so a network's *first* layer — whose input is the data
/// batch — backpropagates strictly cheaper this way with bitwise
/// identical `∂L/∂W` / `∂L/∂b`.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
#[allow(clippy::too_many_arguments)] // convolution geometry + outputs; crate-internal callers wrap it
pub fn conv2d_backward_into(
    grad_out: &Tensor,
    input: &Tensor,
    weight: &Tensor,
    spec: &Conv2dSpec,
    ws: &mut ConvWorkspace,
    mut grad_in: Option<&mut Tensor>,
    grad_w: &mut Tensor,
    grad_b: &mut Tensor,
) {
    let (n, c, h, w) = input.dims4();
    let (gn, f, oh, ow) = grad_out.dims4();
    assert_eq!(gn, n, "grad batch {gn} != input batch {n}");
    let ckk = c * spec.kh * spec.kw;
    let ohow = oh * ow;
    let iv = input.as_slice();
    let gv = grad_out.as_slice();
    grad_w.resize(&[f, c, spec.kh, spec.kw]);
    grad_w.zero_mut();
    let gwv = grad_w.as_mut_slice();
    // No zeroing: the per-block GEMM overwrites gw_block completely.
    ws.gw_block.resize(f * ckk, 0.0);
    grad_b.resize(&[f]);
    grad_b.zero_mut();
    let gbv = grad_b.as_mut_slice();
    if let Some(gi) = grad_in.as_deref_mut() {
        gi.resize(&[n, c, h, w]);
        gi.zero_mut();
    }
    let step = block_images(ckk, ohow, n);
    let mut s0 = 0;
    while s0 < n {
        let blk = step.min(n - s0);
        let x = blk * ohow;
        // Gather grad_out [blk, f, oh·ow] into filter-major G [f, blk·oh·ow].
        ws.fmat.clear();
        ws.fmat.resize(f * x, 0.0);
        for s in 0..blk {
            for fi in 0..f {
                let srcr = &gv[((s0 + s) * f + fi) * ohow..((s0 + s) * f + fi + 1) * ohow];
                ws.fmat[fi * x + s * ohow..fi * x + (s + 1) * ohow].copy_from_slice(srcr);
            }
        }
        // ∂L/∂b += row sums of G.
        for (gb, grow) in gbv.iter_mut().zip(ws.fmat.chunks_exact(x)) {
            *gb += grow.iter().sum::<f32>();
        }
        // Re-lower this block and accumulate ∂L/∂W += G · colᵀ.
        im2col_block(
            &iv[s0 * c * h * w..(s0 + blk) * c * h * w],
            blk,
            c,
            h,
            w,
            spec,
            oh,
            ow,
            &mut ws.col,
        );
        engine::gemm_a_bt(f, x, ckk, &ws.fmat, &ws.col, &mut ws.gw_block);
        for (acc, &v) in gwv.iter_mut().zip(ws.gw_block.iter()) {
            *acc += v;
        }
        // ∂L/∂col = Wᵀ · G ([ckk, f] · [f, x] → [ckk, x]), then scatter.
        if let Some(gi) = grad_in.as_deref_mut() {
            ws.gcol.clear();
            ws.gcol.resize(ckk * x, 0.0);
            engine::gemm_at_b(f, ckk, x, weight.as_slice(), &ws.fmat, &mut ws.gcol);
            col2im_block(
                &ws.gcol,
                blk,
                c,
                h,
                w,
                spec,
                oh,
                ow,
                &mut gi.as_mut_slice()[s0 * c * h * w..(s0 + blk) * c * h * w],
            );
        }
        s0 += blk;
    }
}

/// Forward 2-D convolution (standalone variant of
/// [`conv2d_forward_ws`] allocating a fresh workspace).
///
/// # Panics
///
/// Panics on rank or channel mismatches.
pub fn conv2d_forward(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &Conv2dSpec) -> Tensor {
    conv2d_forward_ws(input, weight, bias, spec, &mut ConvWorkspace::new())
}

/// Backward 2-D convolution (standalone variant of
/// [`conv2d_backward_ws`] allocating a fresh workspace).
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn conv2d_backward(
    grad_out: &Tensor,
    input: &Tensor,
    weight: &Tensor,
    spec: &Conv2dSpec,
) -> (Tensor, Tensor, Tensor) {
    conv2d_backward_ws(grad_out, input, weight, spec, &mut ConvWorkspace::new())
}

/// Forward max-pooling over `[n, c, h, w]`.
///
/// Returns the pooled tensor and the flat argmax index (into the input
/// buffer) of every output element, which [`maxpool2d_backward`] uses to
/// route gradients.
///
/// # Panics
///
/// Panics if the window does not fit.
pub fn maxpool2d_forward(input: &Tensor, spec: &Conv2dSpec) -> (Tensor, Vec<usize>) {
    let mut out = Tensor::zeros(vec![0]);
    let mut idx = Vec::new();
    maxpool2d_forward_into(input, spec, &mut out, &mut idx);
    (out, idx)
}

/// [`maxpool2d_forward`] writing into caller-owned buffers (resized in
/// place) — the allocation-free training-runtime entry point.
///
/// # Panics
///
/// Panics if the window does not fit.
pub fn maxpool2d_forward_into(
    input: &Tensor,
    spec: &Conv2dSpec,
    out: &mut Tensor,
    idx: &mut Vec<usize>,
) {
    let (n, c, h, w) = input.dims4();
    assert_eq!(spec.padding, 0, "maxpool does not support padding");
    let (oh, ow) = spec.output_hw(h, w);
    let iv = input.as_slice();
    out.resize(&[n, c, oh, ow]);
    let out = out.as_mut_slice();
    // No zeroing: the pooling loop writes every output and index slot.
    idx.resize(n * c * oh * ow, 0);
    for s in 0..n {
        for ch in 0..c {
            let base = (s * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = base;
                    for ky in 0..spec.kh {
                        for kx in 0..spec.kw {
                            let iy = oy * spec.stride + ky;
                            let ix = ox * spec.stride + kx;
                            let i = base + iy * w + ix;
                            if iv[i] > best {
                                best = iv[i];
                                best_i = i;
                            }
                        }
                    }
                    let o = ((s * c + ch) * oh + oy) * ow + ox;
                    out[o] = best;
                    idx[o] = best_i;
                }
            }
        }
    }
}

/// Backward max-pooling: routes each output gradient to the input element
/// that won the forward max.
pub fn maxpool2d_backward(
    grad_out: &Tensor,
    argmax: &[usize],
    input_shape: (usize, usize, usize, usize),
) -> Tensor {
    let mut grad_in = Tensor::zeros(vec![0]);
    maxpool2d_backward_into(grad_out, argmax, input_shape, &mut grad_in);
    grad_in
}

/// [`maxpool2d_backward`] writing into a caller-owned tensor (resized in
/// place and overwritten).
pub fn maxpool2d_backward_into(
    grad_out: &Tensor,
    argmax: &[usize],
    input_shape: (usize, usize, usize, usize),
    grad_in: &mut Tensor,
) {
    let (n, c, h, w) = input_shape;
    grad_in.resize(&[n, c, h, w]);
    grad_in.zero_mut();
    let gi = grad_in.as_mut_slice();
    for (g, &i) in grad_out.as_slice().iter().zip(argmax.iter()) {
        gi[i] += g;
    }
}

/// Global average pooling: `[n, c, h, w] → [n, c]`.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(vec![0]);
    global_avg_pool_into(input, &mut out);
    out
}

/// [`global_avg_pool`] writing into a caller-owned tensor (resized in
/// place and overwritten).
pub fn global_avg_pool_into(input: &Tensor, out: &mut Tensor) {
    let (n, c, h, w) = input.dims4();
    let iv = input.as_slice();
    out.resize(&[n, c]);
    let out = out.as_mut_slice();
    let hw = (h * w) as f32;
    for s in 0..n {
        for ch in 0..c {
            let base = (s * c + ch) * h * w;
            out[s * c + ch] = iv[base..base + h * w].iter().sum::<f32>() / hw;
        }
    }
}

/// Backward of [`global_avg_pool`]: spreads each channel gradient uniformly
/// over the spatial positions.
pub fn global_avg_pool_backward(
    grad_out: &Tensor,
    input_shape: (usize, usize, usize, usize),
) -> Tensor {
    let mut grad_in = Tensor::zeros(vec![0]);
    global_avg_pool_backward_into(grad_out, input_shape, &mut grad_in);
    grad_in
}

/// [`global_avg_pool_backward`] writing into a caller-owned tensor
/// (resized in place and overwritten).
pub fn global_avg_pool_backward_into(
    grad_out: &Tensor,
    input_shape: (usize, usize, usize, usize),
    grad_in: &mut Tensor,
) {
    let (n, c, h, w) = input_shape;
    let gv = grad_out.as_slice();
    let hw = (h * w) as f32;
    grad_in.resize(&[n, c, h, w]);
    let gi = grad_in.as_mut_slice();
    for s in 0..n {
        for ch in 0..c {
            let g = gv[s * c + ch] / hw;
            let base = (s * c + ch) * h * w;
            for v in &mut gi[base..base + h * w] {
                *v = g;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_geometry() {
        let spec = Conv2dSpec::new(3, 3, 1, 0);
        assert_eq!(spec.output_hw(5, 5), (3, 3));
        let spec = Conv2dSpec::new(3, 3, 1, 1);
        assert_eq!(spec.output_hw(5, 5), (5, 5));
        let spec = Conv2dSpec::new(2, 2, 2, 0);
        assert_eq!(spec.output_hw(4, 4), (2, 2));
    }

    #[test]
    fn conv_identity_kernel() {
        // A 1x1 kernel with weight 1 reproduces the input.
        let input = Tensor::from_vec(vec![1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let weight = Tensor::from_vec(vec![1, 1, 1, 1], vec![1.0]);
        let bias = Tensor::zeros(vec![1]);
        let spec = Conv2dSpec::new(1, 1, 1, 0);
        let out = conv2d_forward(&input, &weight, &bias, &spec);
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn conv_hand_computed() {
        // 3x3 input, 2x2 kernel of ones => sliding window sums.
        let input = Tensor::from_vec(vec![1, 1, 3, 3], vec![1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        let weight = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.; 4]);
        let bias = Tensor::from_vec(vec![1], vec![0.5]);
        let spec = Conv2dSpec::new(2, 2, 1, 0);
        let out = conv2d_forward(&input, &weight, &bias, &spec);
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.as_slice(), &[12.5, 16.5, 24.5, 28.5]);
    }

    #[test]
    fn conv_padding_zeroes_border() {
        let input = Tensor::from_vec(vec![1, 1, 1, 1], vec![2.0]);
        let weight = Tensor::from_vec(vec![1, 1, 3, 3], vec![1.; 9]);
        let bias = Tensor::zeros(vec![1]);
        let spec = Conv2dSpec::new(3, 3, 1, 1);
        let out = conv2d_forward(&input, &weight, &bias, &spec);
        // Every output position sees the single input pixel exactly once.
        assert_eq!(out.shape(), &[1, 1, 1, 1]);
        assert_eq!(out.as_slice(), &[2.0]);
    }

    #[test]
    fn conv_backward_matches_finite_difference() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let (n, c, h, w, f) = (2, 2, 4, 4, 3);
        let spec = Conv2dSpec::new(3, 3, 1, 1);
        let input = Tensor::from_vec(
            vec![n, c, h, w],
            (0..n * c * h * w)
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect(),
        );
        let weight = Tensor::from_vec(
            vec![f, c, 3, 3],
            (0..f * c * 9).map(|_| rng.gen_range(-0.5..0.5)).collect(),
        );
        let bias = Tensor::from_vec(vec![f], (0..f).map(|_| rng.gen_range(-0.1..0.1)).collect());

        // Scalar loss = sum of outputs, so dL/dout = ones.
        let out = conv2d_forward(&input, &weight, &bias, &spec);
        let gout = Tensor::filled(out.shape().to_vec(), 1.0);
        let (gin, gw, gb) = conv2d_backward(&gout, &input, &weight, &spec);

        let eps = 1e-2;
        // Check a few weight coordinates by central differences.
        for &wi in &[0usize, 5, 17, f * c * 9 - 1] {
            let mut wp = weight.clone();
            wp.as_mut_slice()[wi] += eps;
            let op = conv2d_forward(&input, &wp, &bias, &spec);
            let mut wm = weight.clone();
            wm.as_mut_slice()[wi] -= eps;
            let om = conv2d_forward(&input, &wm, &bias, &spec);
            let fd = (op.sum() - om.sum()) / (2.0 * eps);
            let an = gw.as_slice()[wi];
            assert!((fd - an).abs() < 2e-2, "weight[{wi}]: fd {fd} vs an {an}");
        }
        // Check input coordinates.
        for &ii in &[0usize, 13, n * c * h * w - 1] {
            let mut ip = input.clone();
            ip.as_mut_slice()[ii] += eps;
            let op = conv2d_forward(&ip, &weight, &bias, &spec);
            let mut im = input.clone();
            im.as_mut_slice()[ii] -= eps;
            let om = conv2d_forward(&im, &weight, &bias, &spec);
            let fd = (op.sum() - om.sum()) / (2.0 * eps);
            let an = gin.as_slice()[ii];
            assert!((fd - an).abs() < 2e-2, "input[{ii}]: fd {fd} vs an {an}");
        }
        // Bias gradient: each filter touches n*oh*ow outputs once.
        let (_, _, oh, ow) = out.dims4();
        for b in gb.as_slice() {
            assert!((b - (n * oh * ow) as f32).abs() < 1e-3);
        }
    }

    #[test]
    fn maxpool_forward_and_routing() {
        let input = Tensor::from_vec(
            vec![1, 1, 4, 4],
            vec![
                1., 2., 3., 4., //
                5., 6., 7., 8., //
                9., 10., 11., 12., //
                13., 14., 15., 16.,
            ],
        );
        let spec = Conv2dSpec::new(2, 2, 2, 0);
        let (out, idx) = maxpool2d_forward(&input, &spec);
        assert_eq!(out.as_slice(), &[6., 8., 14., 16.]);
        let gout = Tensor::from_vec(vec![1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let gin = maxpool2d_backward(&gout, &idx, (1, 1, 4, 4));
        assert_eq!(gin.at(5), 1.0);
        assert_eq!(gin.at(7), 2.0);
        assert_eq!(gin.at(13), 3.0);
        assert_eq!(gin.at(15), 4.0);
        assert_eq!(gin.sum(), 10.0);
    }

    #[test]
    fn global_avg_pool_roundtrip() {
        let input = Tensor::from_vec(vec![1, 2, 2, 2], vec![1., 2., 3., 4., 10., 20., 30., 40.]);
        let out = global_avg_pool(&input);
        assert_eq!(out.as_slice(), &[2.5, 25.0]);
        let gout = Tensor::from_vec(vec![1, 2], vec![4.0, 8.0]);
        let gin = global_avg_pool_backward(&gout, (1, 2, 2, 2));
        assert_eq!(gin.as_slice(), &[1., 1., 1., 1., 2., 2., 2., 2.]);
    }
}
