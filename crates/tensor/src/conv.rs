//! Convolution and pooling kernels.
//!
//! Convolution is implemented as `im2col` + matmul (the classic lowering),
//! which keeps the hot loop inside the already-tested [`crate::ops::matmul`]
//! and makes the backward pass a pair of matmuls plus a `col2im` scatter.

use crate::{ops, Tensor};

/// Geometry of a 2-D convolution or pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Conv2dSpec {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a spec, validating the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the kernel is empty or the stride is zero.
    pub fn new(kh: usize, kw: usize, stride: usize, padding: usize) -> Self {
        assert!(kh > 0 && kw > 0, "kernel must be non-empty");
        assert!(stride > 0, "stride must be positive");
        Conv2dSpec {
            kh,
            kw,
            stride,
            padding,
        }
    }

    /// Output spatial size for an input of `h × w`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit into the padded input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        assert!(
            ph >= self.kh && pw >= self.kw,
            "kernel {}x{} larger than padded input {}x{}",
            self.kh,
            self.kw,
            ph,
            pw
        );
        ((ph - self.kh) / self.stride + 1, (pw - self.kw) / self.stride + 1)
    }
}

/// Lowers one image `(c, h, w)` into a column matrix of shape
/// `[c*kh*kw, oh*ow]`.
fn im2col_single(
    img: &[f32],
    c: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    oh: usize,
    ow: usize,
) -> Tensor {
    let krows = c * spec.kh * spec.kw;
    let cols = oh * ow;
    let mut out = vec![0.0f32; krows * cols];
    let pad = spec.padding as isize;
    for ch in 0..c {
        for ky in 0..spec.kh {
            for kx in 0..spec.kw {
                let krow = (ch * spec.kh + ky) * spec.kw + kx;
                let orow = &mut out[krow * cols..(krow + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * spec.stride) as isize + ky as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * spec.stride) as isize + kx as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        orow[oy * ow + ox] = img[(ch * h + iy as usize) * w + ix as usize];
                    }
                }
            }
        }
    }
    Tensor::from_vec(vec![krows, cols], out)
}

/// Inverse of [`im2col_single`]: scatters the column matrix back onto an
/// image, **accumulating** overlapping contributions (as backprop requires).
#[allow(clippy::too_many_arguments)] // geometry parameters; private helper
fn col2im_single(
    col: &Tensor,
    c: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    oh: usize,
    ow: usize,
    img_out: &mut [f32],
) {
    let cols = oh * ow;
    let cv = col.as_slice();
    let pad = spec.padding as isize;
    for ch in 0..c {
        for ky in 0..spec.kh {
            for kx in 0..spec.kw {
                let krow = (ch * spec.kh + ky) * spec.kw + kx;
                let crow = &cv[krow * cols..(krow + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * spec.stride) as isize + ky as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * spec.stride) as isize + kx as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        img_out[(ch * h + iy as usize) * w + ix as usize] += crow[oy * ow + ox];
                    }
                }
            }
        }
    }
}

/// Forward 2-D convolution.
///
/// * `input`: `[n, c, h, w]`
/// * `weight`: `[f, c, kh, kw]`
/// * `bias`: `[f]`
///
/// Returns `([n, f, oh, ow], cached_columns)` where the cached column
/// matrices (one per sample) are needed by [`conv2d_backward`].
///
/// # Panics
///
/// Panics on rank or channel mismatches.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    spec: &Conv2dSpec,
) -> (Tensor, Vec<Tensor>) {
    let (n, c, h, w) = input.dims4();
    let (f, wc, kh, kw) = weight.dims4();
    assert_eq!(c, wc, "conv channel mismatch: input {c} vs weight {wc}");
    assert_eq!((kh, kw), (spec.kh, spec.kw), "weight does not match spec");
    assert_eq!(bias.len(), f, "bias length {} != filters {f}", bias.len());
    let (oh, ow) = spec.output_hw(h, w);
    let wmat = weight.clone().reshape(vec![f, c * kh * kw]);
    let mut out = vec![0.0f32; n * f * oh * ow];
    let mut cols = Vec::with_capacity(n);
    let iv = input.as_slice();
    let bv = bias.as_slice();
    for s in 0..n {
        let img = &iv[s * c * h * w..(s + 1) * c * h * w];
        let col = im2col_single(img, c, h, w, spec, oh, ow);
        let res = ops::matmul(&wmat, &col); // [f, oh*ow]
        let dst = &mut out[s * f * oh * ow..(s + 1) * f * oh * ow];
        for fi in 0..f {
            let src = &res.as_slice()[fi * oh * ow..(fi + 1) * oh * ow];
            let d = &mut dst[fi * oh * ow..(fi + 1) * oh * ow];
            for (o, &v) in d.iter_mut().zip(src.iter()) {
                *o = v + bv[fi];
            }
        }
        cols.push(col);
    }
    (Tensor::from_vec(vec![n, f, oh, ow], out), cols)
}

/// Backward 2-D convolution.
///
/// Given `grad_out = ∂L/∂output` of shape `[n, f, oh, ow]` and the cached
/// columns from the forward pass, returns
/// `(grad_input, grad_weight, grad_bias)`.
///
/// # Panics
///
/// Panics if `grad_out`'s shape is inconsistent with the cached geometry.
pub fn conv2d_backward(
    grad_out: &Tensor,
    cols: &[Tensor],
    input_shape: (usize, usize, usize, usize),
    weight: &Tensor,
    spec: &Conv2dSpec,
) -> (Tensor, Tensor, Tensor) {
    let (n, c, h, w) = input_shape;
    let (gn, f, oh, ow) = grad_out.dims4();
    assert_eq!(gn, n, "grad batch {gn} != input batch {n}");
    assert_eq!(cols.len(), n, "cached columns missing");
    let wmat = weight.clone().reshape(vec![f, c * spec.kh * spec.kw]);
    let mut grad_w = Tensor::zeros(vec![f, c * spec.kh * spec.kw]);
    let mut grad_b = Tensor::zeros(vec![f]);
    let mut grad_in = vec![0.0f32; n * c * h * w];
    let gv = grad_out.as_slice();
    for s in 0..n {
        let gmat = Tensor::from_vec(
            vec![f, oh * ow],
            gv[s * f * oh * ow..(s + 1) * f * oh * ow].to_vec(),
        );
        // ∂L/∂W += g · colᵀ
        let gw = ops::matmul_a_bt(&gmat, &cols[s]);
        grad_w.axpy(1.0, &gw);
        // ∂L/∂b += row sums of g
        for fi in 0..f {
            let row = &gmat.as_slice()[fi * oh * ow..(fi + 1) * oh * ow];
            grad_b.as_mut_slice()[fi] += row.iter().sum::<f32>();
        }
        // ∂L/∂col = Wᵀ · g, then scatter back to image space.
        let gcol = ops::matmul_at_b(&wmat, &gmat);
        col2im_single(
            &gcol,
            c,
            h,
            w,
            spec,
            oh,
            ow,
            &mut grad_in[s * c * h * w..(s + 1) * c * h * w],
        );
    }
    (
        Tensor::from_vec(vec![n, c, h, w], grad_in),
        grad_w.reshape(vec![f, c, spec.kh, spec.kw]),
        grad_b,
    )
}

/// Forward max-pooling over `[n, c, h, w]`.
///
/// Returns the pooled tensor and the flat argmax index (into the input
/// buffer) of every output element, which [`maxpool2d_backward`] uses to
/// route gradients.
///
/// # Panics
///
/// Panics if the window does not fit.
pub fn maxpool2d_forward(input: &Tensor, spec: &Conv2dSpec) -> (Tensor, Vec<usize>) {
    let (n, c, h, w) = input.dims4();
    assert_eq!(spec.padding, 0, "maxpool does not support padding");
    let (oh, ow) = spec.output_hw(h, w);
    let iv = input.as_slice();
    let mut out = vec![0.0f32; n * c * oh * ow];
    let mut idx = vec![0usize; n * c * oh * ow];
    for s in 0..n {
        for ch in 0..c {
            let base = (s * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = base;
                    for ky in 0..spec.kh {
                        for kx in 0..spec.kw {
                            let iy = oy * spec.stride + ky;
                            let ix = ox * spec.stride + kx;
                            let i = base + iy * w + ix;
                            if iv[i] > best {
                                best = iv[i];
                                best_i = i;
                            }
                        }
                    }
                    let o = ((s * c + ch) * oh + oy) * ow + ox;
                    out[o] = best;
                    idx[o] = best_i;
                }
            }
        }
    }
    (Tensor::from_vec(vec![n, c, oh, ow], out), idx)
}

/// Backward max-pooling: routes each output gradient to the input element
/// that won the forward max.
pub fn maxpool2d_backward(
    grad_out: &Tensor,
    argmax: &[usize],
    input_shape: (usize, usize, usize, usize),
) -> Tensor {
    let (n, c, h, w) = input_shape;
    let mut grad_in = vec![0.0f32; n * c * h * w];
    for (g, &i) in grad_out.as_slice().iter().zip(argmax.iter()) {
        grad_in[i] += g;
    }
    Tensor::from_vec(vec![n, c, h, w], grad_in)
}

/// Global average pooling: `[n, c, h, w] → [n, c]`.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    let (n, c, h, w) = input.dims4();
    let iv = input.as_slice();
    let mut out = vec![0.0f32; n * c];
    let hw = (h * w) as f32;
    for s in 0..n {
        for ch in 0..c {
            let base = (s * c + ch) * h * w;
            out[s * c + ch] = iv[base..base + h * w].iter().sum::<f32>() / hw;
        }
    }
    Tensor::from_vec(vec![n, c], out)
}

/// Backward of [`global_avg_pool`]: spreads each channel gradient uniformly
/// over the spatial positions.
pub fn global_avg_pool_backward(
    grad_out: &Tensor,
    input_shape: (usize, usize, usize, usize),
) -> Tensor {
    let (n, c, h, w) = input_shape;
    let gv = grad_out.as_slice();
    let hw = (h * w) as f32;
    let mut grad_in = vec![0.0f32; n * c * h * w];
    for s in 0..n {
        for ch in 0..c {
            let g = gv[s * c + ch] / hw;
            let base = (s * c + ch) * h * w;
            for v in &mut grad_in[base..base + h * w] {
                *v = g;
            }
        }
    }
    Tensor::from_vec(vec![n, c, h, w], grad_in)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_geometry() {
        let spec = Conv2dSpec::new(3, 3, 1, 0);
        assert_eq!(spec.output_hw(5, 5), (3, 3));
        let spec = Conv2dSpec::new(3, 3, 1, 1);
        assert_eq!(spec.output_hw(5, 5), (5, 5));
        let spec = Conv2dSpec::new(2, 2, 2, 0);
        assert_eq!(spec.output_hw(4, 4), (2, 2));
    }

    #[test]
    fn conv_identity_kernel() {
        // A 1x1 kernel with weight 1 reproduces the input.
        let input = Tensor::from_vec(vec![1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let weight = Tensor::from_vec(vec![1, 1, 1, 1], vec![1.0]);
        let bias = Tensor::zeros(vec![1]);
        let spec = Conv2dSpec::new(1, 1, 1, 0);
        let (out, _) = conv2d_forward(&input, &weight, &bias, &spec);
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn conv_hand_computed() {
        // 3x3 input, 2x2 kernel of ones => sliding window sums.
        let input = Tensor::from_vec(
            vec![1, 1, 3, 3],
            vec![1., 2., 3., 4., 5., 6., 7., 8., 9.],
        );
        let weight = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.; 4]);
        let bias = Tensor::from_vec(vec![1], vec![0.5]);
        let spec = Conv2dSpec::new(2, 2, 1, 0);
        let (out, _) = conv2d_forward(&input, &weight, &bias, &spec);
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.as_slice(), &[12.5, 16.5, 24.5, 28.5]);
    }

    #[test]
    fn conv_padding_zeroes_border() {
        let input = Tensor::from_vec(vec![1, 1, 1, 1], vec![2.0]);
        let weight = Tensor::from_vec(vec![1, 1, 3, 3], vec![1.; 9]);
        let bias = Tensor::zeros(vec![1]);
        let spec = Conv2dSpec::new(3, 3, 1, 1);
        let (out, _) = conv2d_forward(&input, &weight, &bias, &spec);
        // Every output position sees the single input pixel exactly once.
        assert_eq!(out.shape(), &[1, 1, 1, 1]);
        assert_eq!(out.as_slice(), &[2.0]);
    }

    #[test]
    fn conv_backward_matches_finite_difference() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let (n, c, h, w, f) = (2, 2, 4, 4, 3);
        let spec = Conv2dSpec::new(3, 3, 1, 1);
        let input = Tensor::from_vec(
            vec![n, c, h, w],
            (0..n * c * h * w).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        );
        let weight = Tensor::from_vec(
            vec![f, c, 3, 3],
            (0..f * c * 9).map(|_| rng.gen_range(-0.5..0.5)).collect(),
        );
        let bias = Tensor::from_vec(vec![f], (0..f).map(|_| rng.gen_range(-0.1..0.1)).collect());

        // Scalar loss = sum of outputs, so dL/dout = ones.
        let (out, cols) = conv2d_forward(&input, &weight, &bias, &spec);
        let gout = Tensor::filled(out.shape().to_vec(), 1.0);
        let (gin, gw, gb) = conv2d_backward(&gout, &cols, (n, c, h, w), &weight, &spec);

        let eps = 1e-2;
        // Check a few weight coordinates by central differences.
        for &wi in &[0usize, 5, 17, f * c * 9 - 1] {
            let mut wp = weight.clone();
            wp.as_mut_slice()[wi] += eps;
            let (op, _) = conv2d_forward(&input, &wp, &bias, &spec);
            let mut wm = weight.clone();
            wm.as_mut_slice()[wi] -= eps;
            let (om, _) = conv2d_forward(&input, &wm, &bias, &spec);
            let fd = (op.sum() - om.sum()) / (2.0 * eps);
            let an = gw.as_slice()[wi];
            assert!((fd - an).abs() < 2e-2, "weight[{wi}]: fd {fd} vs an {an}");
        }
        // Check input coordinates.
        for &ii in &[0usize, 13, n * c * h * w - 1] {
            let mut ip = input.clone();
            ip.as_mut_slice()[ii] += eps;
            let (op, _) = conv2d_forward(&ip, &weight, &bias, &spec);
            let mut im = input.clone();
            im.as_mut_slice()[ii] -= eps;
            let (om, _) = conv2d_forward(&im, &weight, &bias, &spec);
            let fd = (op.sum() - om.sum()) / (2.0 * eps);
            let an = gin.as_slice()[ii];
            assert!((fd - an).abs() < 2e-2, "input[{ii}]: fd {fd} vs an {an}");
        }
        // Bias gradient: each filter touches n*oh*ow outputs once.
        let (_, _, oh, ow) = out.dims4();
        for b in gb.as_slice() {
            assert!((b - (n * oh * ow) as f32).abs() < 1e-3);
        }
    }

    #[test]
    fn maxpool_forward_and_routing() {
        let input = Tensor::from_vec(
            vec![1, 1, 4, 4],
            vec![
                1., 2., 3., 4., //
                5., 6., 7., 8., //
                9., 10., 11., 12., //
                13., 14., 15., 16.,
            ],
        );
        let spec = Conv2dSpec::new(2, 2, 2, 0);
        let (out, idx) = maxpool2d_forward(&input, &spec);
        assert_eq!(out.as_slice(), &[6., 8., 14., 16.]);
        let gout = Tensor::from_vec(vec![1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let gin = maxpool2d_backward(&gout, &idx, (1, 1, 4, 4));
        assert_eq!(gin.at(5), 1.0);
        assert_eq!(gin.at(7), 2.0);
        assert_eq!(gin.at(13), 3.0);
        assert_eq!(gin.at(15), 4.0);
        assert_eq!(gin.sum(), 10.0);
    }

    #[test]
    fn global_avg_pool_roundtrip() {
        let input = Tensor::from_vec(vec![1, 2, 2, 2], vec![1., 2., 3., 4., 10., 20., 30., 40.]);
        let out = global_avg_pool(&input);
        assert_eq!(out.as_slice(), &[2.5, 25.0]);
        let gout = Tensor::from_vec(vec![1, 2], vec![4.0, 8.0]);
        let gin = global_avg_pool_backward(&gout, (1, 2, 2, 2));
        assert_eq!(gin.as_slice(), &[1., 1., 1., 1., 2., 2., 2., 2.]);
    }
}
