//! The blocked, parallel matrix-multiply engine.
//!
//! This module owns the flops of the whole stack: dense layers, the
//! im2col-lowered convolutions and every backward pass funnel into the
//! three GEMM orientations here (`A·B`, `Aᵀ·B`, `A·Bᵀ`), operating on raw
//! row-major `f32` slices so callers (e.g. batched conv) can avoid
//! intermediate `Tensor` allocations.
//!
//! # Dispatch
//!
//! Each entry point picks between two implementations by problem size
//! (`m·k·n` multiply-accumulates):
//!
//! * **small** (< [`SMALL_FLOPS`]): a straightforward loop in the same
//!   per-element accumulation order as [`crate::ops::reference`], so small
//!   results are *bitwise identical* to the reference oracle (several unit
//!   tests across the workspace rely on exact equality at toy sizes);
//! * **large**: a register-tiled kernel computing [`MR`]`×`[`NR`] output
//!   tiles whose accumulators stay in vector registers across the entire
//!   reduction — one store per output element instead of a load+store per
//!   reduction step, each `B` load reused across [`MR`] rows, and (with
//!   the per-element `== 0.0` branch of the old implementation removed)
//!   fixed-width inner loops that LLVM fully vectorizes. At or above
//!   [`PAR_FLOPS`], output rows are split into contiguous ranges processed
//!   in parallel on the current rayon pool.
//!
//! Floating-point note: the tiled path accumulates each output element in
//! ascending-`p` order — the reference association — but uses hardware
//! fused multiply-add where available (one rounding per step instead of
//! two), so large-path results can differ from the reference by normal
//! `k · ε` accumulation rounding (the equivalence proptests pin it under
//! `1e-4` for workspace-scale values). Results never depend on the thread
//! count: row ranges are disjoint and each output element is accumulated
//! in a fixed order.

use std::cell::Cell;
use std::ops::Range;

/// Below this many multiply-accumulates the reference-order loop wins
/// (tile bookkeeping costs more than it saves) and bitwise compatibility
/// with the oracle is preserved.
pub const SMALL_FLOPS: usize = 16 * 1024;

/// At or above this many multiply-accumulates the row range is split
/// across the rayon pool (when it has more than one thread).
pub const PAR_FLOPS: usize = 1 << 21;

/// Minimum reduction depth for B-panel packing to amortize; shallower
/// reductions read B in place.
pub const KPACK: usize = 64;

/// Register-tile height (output rows per tile) of the `A·B` / `Aᵀ·B`
/// kernels. Sized with [`NR`] so an `MR×NR` accumulator block fits the
/// vector register file of the compiled-for ISA (see `.cargo/config.toml`,
/// which enables the build machine's full ISA): oversized tiles spill to
/// the stack every iteration and run far slower than the naive loop.
#[cfg(target_feature = "avx512f")]
pub const MR: usize = 6;
/// Register-tile height (output rows per tile); 256-bit-vector variant.
#[cfg(all(target_feature = "avx", not(target_feature = "avx512f")))]
pub const MR: usize = 6;
/// Register-tile height (output rows per tile); 128-bit-vector variant.
#[cfg(not(target_feature = "avx"))]
pub const MR: usize = 2;

/// Register-tile width (output columns per tile): accumulators for an
/// `MR×NR` tile stay in vector registers across the whole reduction.
#[cfg(target_feature = "avx512f")]
pub const NR: usize = 32;
/// Register-tile width (output columns per tile); 256-bit-vector variant.
#[cfg(all(target_feature = "avx", not(target_feature = "avx512f")))]
pub const NR: usize = 16;
/// Register-tile width (output columns per tile); 128-bit-vector variant.
#[cfg(not(target_feature = "avx"))]
pub const NR: usize = 8;

/// `*acc += x * v`, fused into a single FMA when the target has hardware
/// FMA (one rounding step, double the port throughput of mul+add — rustc
/// never fuses plain `a += b * c` itself because that would change
/// rounding). Without hardware FMA, `mul_add` would lower to a libm call,
/// so fall back to the plain expression.
#[inline(always)]
fn fma_acc(acc: &mut f32, x: f32, v: f32) {
    #[cfg(target_feature = "fma")]
    {
        *acc = x.mul_add(v, *acc);
    }
    #[cfg(not(target_feature = "fma"))]
    {
        *acc += x * v;
    }
}

fn flops(m: usize, k: usize, n: usize) -> usize {
    m.saturating_mul(k).saturating_mul(n)
}

thread_local! {
    /// Per-thread scratch for the packed `B` panel of the tiled kernel.
    static PANEL_SCRATCH: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
    /// Per-thread scratch for the transposed `A` block of `Aᵀ·B`.
    static AT_SCRATCH: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
    /// Per-thread scratch for the materialised `Bᵀ` of `A·Bᵀ`.
    static BT_SCRATCH: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
    /// Per-thread scratch for the zero-padded `B` panel of the
    /// narrow-output kernel.
    static NARROW_B: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
    /// Per-thread scratch for the padded output of the narrow-output
    /// kernel.
    static NARROW_OUT: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
}

/// Runs `f` on a per-thread scratch vector resized to `len`.
///
/// The vector is *taken* out of the thread-local cell for the duration of
/// `f` (so an unexpected reentrant use would fall back to a fresh
/// allocation instead of panicking) and put back afterwards, buffer
/// capacity intact. This is what makes the training hot path
/// allocation-free after warm-up: GEMM pack scratch is reused across
/// every step on each thread instead of being reallocated per call.
/// Newly exposed elements are zeroed; all three pack sites overwrite
/// their scratch completely before reading it.
fn with_scratch<R>(
    cell: &'static std::thread::LocalKey<Cell<Vec<f32>>>,
    len: usize,
    f: impl FnOnce(&mut [f32]) -> R,
) -> R {
    let mut v = cell.with(Cell::take);
    v.resize(len, 0.0);
    let out = f(&mut v[..len]);
    cell.with(|c| c.set(v));
    out
}

/// Splits `out` into per-task row ranges and runs `kernel` over them on
/// the current pool. `kernel(rows, chunk)` must fill `chunk` (the output
/// rows `rows`) completely.
fn parallel_rows<F>(m: usize, n: usize, out: &mut [f32], kernel: F)
where
    F: Fn(Range<usize>, &mut [f32]) + Sync,
{
    let threads = rayon::current_num_threads();
    // Aim for a few tasks per thread so uneven row costs balance out.
    let rows_per = m.div_ceil(threads * 2).max(1);
    let kernel = &kernel;
    rayon::scope(|s| {
        for (ci, chunk) in out.chunks_mut(rows_per * n).enumerate() {
            let r0 = ci * rows_per;
            s.spawn(move |_| kernel(r0..r0 + chunk.len() / n, chunk));
        }
    });
}

// ---------------------------------------------------------------------------
// out = A · B
// ---------------------------------------------------------------------------

/// `out = A · B` with `A: [m, k]`, `B: [k, n]`, `out: [m, n]` (overwritten).
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm: A length");
    assert_eq!(b.len(), k * n, "gemm: B length");
    assert_eq!(out.len(), m * n, "gemm: out length");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    let work = flops(m, k, n);
    if work < SMALL_FLOPS {
        out.fill(0.0);
        gemm_rows_small(0..m, k, n, a, b, out);
    } else if n < NR {
        // Narrow outputs have no full register strip; run the tiled
        // kernel over a zero-padded panel instead.
        gemm_narrow_tiled(m, k, n, a, b, out);
    } else if work >= PAR_FLOPS && rayon::current_num_threads() > 1 {
        parallel_rows(m, n, out, |rows, chunk| {
            gemm_rows_tiled(rows, k, n, a, b, chunk);
        });
    } else {
        gemm_rows_tiled(0..m, k, n, a, b, out);
    }
}

/// Register-tiled kernel for **narrow outputs** (`n <` [`NR`]): zero-pads
/// `B` to one full `NR`-column panel, runs the tiled kernel over it and
/// copies the `n` real columns back out.
///
/// Narrow outputs — classifier heads, thin dense layers — previously fell
/// back to the reference-order loop, whose `n`-wide inner loop neither
/// tiles nor vectorizes well; on the training hot path the head GEMM
/// cost more than the 6×-larger hidden-layer GEMM. The padding columns
/// are dead lanes (zeros in, discarded out); each real element still
/// accumulates in the tiled kernel's ascending-`p` FMA order, so this is
/// a large-path kernel like any other: deterministic at every thread
/// count, equivalent to the oracle within accumulation rounding.
fn gemm_narrow_tiled(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert!(n < NR && n > 0);
    with_scratch(&NARROW_B, k * NR, |bp| {
        for (dst, src) in bp.chunks_exact_mut(NR).zip(b.chunks_exact(n)) {
            dst[..n].copy_from_slice(src);
            dst[n..].fill(0.0);
        }
        with_scratch(&NARROW_OUT, m * NR, |op| {
            gemm_rows_tiled(0..m, k, NR, a, bp, op);
            for (orow, prow) in out.chunks_exact_mut(n).zip(op.chunks_exact(NR)) {
                orow.copy_from_slice(&prow[..n]);
            }
        });
    });
}

/// Reference-order accumulation (`i`/`p`/`j`) for output rows `rows`.
fn gemm_rows_small(rows: Range<usize>, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    for (orow, i) in out.chunks_exact_mut(n).zip(rows) {
        let arow = &a[i * k..(i + 1) * k];
        for (p, &apk) in arow.iter().enumerate() {
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bpn) in orow.iter_mut().zip(brow.iter()) {
                *o += apk * bpn;
            }
        }
    }
}

/// Register-tiled kernel for output rows `rows`.
///
/// The output is processed in [`MR`]-row × [`NR`]-column register tiles:
/// each tile's accumulators live in registers across the *entire* `k`
/// reduction (one store per output element instead of a load+store per
/// reduction step) and every packed `B` load is reused across [`MR`]
/// rows. The loop nest is strip-major: each `NR`-column panel of `B` is
/// packed contiguously once ([`pack_panel`]) and then swept by every row
/// group, so the hot loop reads two dense streams with no strided access
/// and no per-step bounds checks. Per output element the accumulation
/// visits `p` in ascending order one term at a time — the same
/// association as the reference oracle.
fn gemm_rows_tiled(rows: Range<usize>, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    // Packing a B panel pays off only when it is swept many times (deep
    // reductions). For short reductions (e.g. conv lowerings with tiny
    // c·kh·kw) the pack would cost as much as the tile compute, so read B
    // in place instead.
    let pack = k >= KPACK;
    with_scratch(&PANEL_SCRATCH, if pack { k * NR } else { 0 }, |bpack| {
        gemm_rows_tiled_with(rows, k, n, a, b, out, pack, bpack);
    });
}

/// Body of [`gemm_rows_tiled`] over caller-provided panel scratch.
#[allow(clippy::too_many_arguments)] // GEMM geometry + scratch; crate-internal
fn gemm_rows_tiled_with(
    rows: Range<usize>,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    pack: bool,
    bpack: &mut [f32],
) {
    let mut j0 = 0;
    while j0 + NR <= n {
        if pack {
            pack_panel(bpack, b, n, j0);
        }
        let mut orows = out.chunks_exact_mut(MR * n);
        let mut i = rows.start;
        for ogroup in orows.by_ref() {
            let arows = &a[i * k..(i + MR) * k];
            if pack {
                tile_group::<MR>(ogroup, arows, bpack, k, n, j0);
            } else {
                tile_group_direct::<MR>(ogroup, arows, b, k, n, j0);
            }
            i += MR;
        }
        for orow in orows.into_remainder().chunks_exact_mut(n) {
            let arow = &a[i * k..(i + 1) * k];
            if pack {
                tile_group::<1>(orow, arow, bpack, k, n, j0);
            } else {
                tile_group_direct::<1>(orow, arow, b, k, n, j0);
            }
            i += 1;
        }
        j0 += NR;
    }
    if j0 < n {
        for (r, orow) in out.chunks_exact_mut(n).enumerate() {
            let tail = &mut orow[j0..];
            tail.fill(0.0);
            edge_cols(
                tail,
                &a[(rows.start + r) * k..(rows.start + r + 1) * k],
                b,
                n,
                j0,
            );
        }
    }
}

/// Variant of [`tile_group`] reading the `B` panel in place (unpacked):
/// used for short reductions where packing cannot amortize.
fn tile_group_direct<const R: usize>(
    ogroup: &mut [f32],
    a_rows: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    j0: usize,
) {
    let a: [&[f32]; R] = std::array::from_fn(|r| &a_rows[r * k..(r + 1) * k]);
    let mut acc = [[0.0f32; NR]; R];
    for (p, brow) in b.chunks_exact(n).take(k).enumerate() {
        let bseg: &[f32; NR] = brow[j0..].first_chunk().expect("strip width");
        for (accr, arow) in acc.iter_mut().zip(a) {
            let x = arow[p];
            for (av, &bv) in accr.iter_mut().zip(bseg) {
                fma_acc(av, x, bv);
            }
        }
    }
    for (orow, accr) in ogroup.chunks_exact_mut(n).zip(acc) {
        orow[j0..j0 + NR].copy_from_slice(&accr);
    }
}

/// Packs the `NR`-wide column panel of `B` starting at column `j0` into
/// `k` contiguous rows.
fn pack_panel(bpack: &mut [f32], b: &[f32], n: usize, j0: usize) {
    for (prow, brow) in bpack.chunks_exact_mut(NR).zip(b.chunks_exact(n)) {
        prow.copy_from_slice(&brow[j0..j0 + NR]);
    }
}

/// Computes the `R×NR` tile at rows `ogroup` (R concatenated output
/// rows), columns `j0..j0+NR`, from the `R` concatenated A rows and the
/// packed B panel.
///
/// Note the A scalars are deliberately loaded one `arow[p]` at a time
/// from `R` separate row slices: funnelling them through a contiguous
/// `[f32; R]` (packed-A layouts) makes LLVM lower the tile to
/// insert/extract shuffles instead of broadcasts and runs ~15× slower.
fn tile_group<const R: usize>(
    ogroup: &mut [f32],
    a_rows: &[f32],
    bpack: &[f32],
    k: usize,
    n: usize,
    j0: usize,
) {
    let a: [&[f32]; R] = std::array::from_fn(|r| &a_rows[r * k..(r + 1) * k]);
    let mut acc = [[0.0f32; NR]; R];
    for (p, bseg) in bpack.chunks_exact(NR).take(k).enumerate() {
        let bseg: &[f32; NR] = bseg.try_into().expect("panel width");
        for (accr, arow) in acc.iter_mut().zip(a) {
            let x = arow[p];
            for (av, &bv) in accr.iter_mut().zip(bseg) {
                fma_acc(av, x, bv);
            }
        }
    }
    for (orow, accr) in ogroup.chunks_exact_mut(n).zip(acc) {
        orow[j0..j0 + NR].copy_from_slice(&accr);
    }
}

/// Reference-order fallback for the `n % NR` trailing columns of one row:
/// `o_tail += arow · B[:, j0..]` where `o_tail` starts at column `j0`.
fn edge_cols(o_tail: &mut [f32], arow: &[f32], b: &[f32], n: usize, j0: usize) {
    for (p, &x) in arow.iter().enumerate() {
        let btail = &b[p * n + j0..(p + 1) * n];
        for (o, &v) in o_tail.iter_mut().zip(btail) {
            *o += x * v;
        }
    }
}

// ---------------------------------------------------------------------------
// out = Aᵀ · B
// ---------------------------------------------------------------------------

/// `out = Aᵀ · B` with `A: [k, m]`, `B: [k, n]`, `out: [m, n]`
/// (overwritten), without materialising the transpose.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn gemm_at_b(k: usize, m: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), k * m, "gemm_at_b: A length");
    assert_eq!(b.len(), k * n, "gemm_at_b: B length");
    assert_eq!(out.len(), m * n, "gemm_at_b: out length");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    let work = flops(m, k, n);
    if work < SMALL_FLOPS {
        out.fill(0.0);
        at_b_rows_small(0..m, k, m, n, a, b, out);
    } else if n < NR {
        // Narrow outputs: transpose A into row-major scratch once, then
        // run the padded-panel narrow kernel.
        with_scratch(&AT_SCRATCH, m * k, |packed| {
            for (c, prow) in packed.chunks_exact_mut(k).enumerate() {
                for (p, dst) in prow.iter_mut().enumerate() {
                    *dst = a[p * m + c];
                }
            }
            gemm_narrow_tiled(m, k, n, packed, b, out);
        });
    } else if work >= PAR_FLOPS && rayon::current_num_threads() > 1 {
        parallel_rows(m, n, out, |rows, chunk| {
            at_b_rows_tiled(rows, k, m, n, a, b, chunk);
        });
    } else {
        at_b_rows_tiled(0..m, k, m, n, a, b, out);
    }
}

/// Reference-order accumulation for `Aᵀ·B` restricted to output rows
/// `rows`. For one output row the reference (`p` outer) and this (`i`
/// outer, `p` inner) visit `p` in the same ascending order per element, so
/// results are bitwise identical to the oracle.
fn at_b_rows_small(
    rows: Range<usize>,
    k: usize,
    m: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    for (orow, i) in out.chunks_exact_mut(n).zip(rows) {
        for p in 0..k {
            let api = a[p * m + i];
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bpn) in orow.iter_mut().zip(brow.iter()) {
                *o += api * bpn;
            }
        }
    }
}

/// Register-tiled `Aᵀ·B` for output rows `rows`.
///
/// Each group of [`MR`] output rows corresponds to [`MR`] *columns* of
/// `A`; those are packed (transposed) into a contiguous row-major scratch
/// block first, after which the shared [`tile_rows`] kernel runs
/// unchanged. The pack touches `A` once per group (`m·k` elements total —
/// noise next to the `m·k·n` reduction) and keeps the hot loop free of
/// strided loads, which LLVM otherwise lowers catastrophically at wider
/// tile shapes.
fn at_b_rows_tiled(
    rows: Range<usize>,
    k: usize,
    m: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    // Transpose this row range's column block of A into row-major form,
    // then run the shared row-major kernel. m·k moves, noise next to the
    // m·k·n reduction.
    with_scratch(&AT_SCRATCH, rows.len() * k, |packed| {
        for (c, prow) in packed.chunks_exact_mut(k).enumerate() {
            for (p, dst) in prow.iter_mut().enumerate() {
                *dst = a[p * m + rows.start + c];
            }
        }
        // The packed block holds exactly these rows, so index it from 0.
        gemm_rows_tiled(0..rows.len(), k, n, packed, b, out);
    });
}

// ---------------------------------------------------------------------------
// out = A · Bᵀ
// ---------------------------------------------------------------------------

/// `out = A · Bᵀ` with `A: [m, k]`, `B: [n, k]`, `out: [m, n]`
/// (overwritten), without materialising the transpose on the small path.
///
/// The large path materialises `Bᵀ` once into scratch (`n·k` moves, noise
/// next to the `m·k·n` reduction) and reuses the packed-panel tiled
/// kernel, which beats any dot-product formulation by a wide margin: row
/// dot products carry a serial FMA dependency chain, while the tiled
/// kernel keeps [`MR`]`·`[`NR`] independent accumulators in flight.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn gemm_a_bt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_a_bt: A length");
    assert_eq!(b.len(), n * k, "gemm_a_bt: B length");
    assert_eq!(out.len(), m * n, "gemm_a_bt: out length");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    let work = flops(m, k, n);
    if work < SMALL_FLOPS {
        a_bt_rows_small(0..m, k, n, a, b, out);
        return;
    }
    with_scratch(&BT_SCRATCH, k * n, |bt| {
        for (j, brow) in b.chunks_exact(k).enumerate() {
            for (p, &v) in brow.iter().enumerate() {
                bt[p * n + j] = v;
            }
        }
        if n < NR {
            // Narrow outputs (e.g. classifier heads, conv ∂W with small
            // c·kh·kw): padded-panel tiled kernel over the transposed B.
            gemm_narrow_tiled(m, k, n, a, bt, out);
        } else if work >= PAR_FLOPS && rayon::current_num_threads() > 1 {
            let bt = &*bt;
            parallel_rows(m, n, out, |rows, chunk| {
                gemm_rows_tiled(rows, k, n, a, bt, chunk);
            });
        } else {
            gemm_rows_tiled(0..m, k, n, a, bt, out);
        }
    });
}

/// Reference-order dot products for output rows `rows`.
fn a_bt_rows_small(rows: Range<usize>, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    for (orow, i) in out.chunks_exact_mut(n).zip(rows) {
        let arow = &a[i * k..(i + 1) * k];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow.iter()) {
                acc += x * y;
            }
            *o = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, scale: f32) -> Vec<f32> {
        (0..n).map(|i| ((i % 17) as f32 - 8.0) * scale).collect()
    }

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    out[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        out
    }

    fn assert_close(got: &[f32], want: &[f32]) {
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            assert!((g - w).abs() < 1e-3, "{g} vs {w}");
        }
    }

    #[test]
    fn gemm_matches_naive_across_sizes() {
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (5, 7, 3), (17, 33, 9), (64, 64, 64)] {
            let a = seq(m * k, 0.25);
            let b = seq(k * n, 0.5);
            let mut out = vec![f32::NAN; m * n];
            gemm(m, k, n, &a, &b, &mut out);
            assert_close(&out, &naive(m, k, n, &a, &b));
        }
    }

    #[test]
    fn at_b_matches_transposed_naive() {
        for &(k, m, n) in &[(3, 2, 4), (16, 5, 9), (48, 33, 20)] {
            let a = seq(k * m, 0.25);
            let b = seq(k * n, 0.5);
            // A^T as an explicit matrix, then plain gemm.
            let mut at = vec![0.0f32; m * k];
            for p in 0..k {
                for i in 0..m {
                    at[i * k + p] = a[p * m + i];
                }
            }
            let mut out = vec![f32::NAN; m * n];
            gemm_at_b(k, m, n, &a, &b, &mut out);
            assert_close(&out, &naive(m, k, n, &at, &b));
        }
    }

    #[test]
    fn a_bt_matches_transposed_naive() {
        for &(m, k, n) in &[(2, 3, 4), (7, 16, 5), (21, 40, 33)] {
            let a = seq(m * k, 0.25);
            let b = seq(n * k, 0.5);
            let mut bt = vec![0.0f32; k * n];
            for j in 0..n {
                for p in 0..k {
                    bt[p * n + j] = b[j * k + p];
                }
            }
            let mut out = vec![f32::NAN; m * n];
            gemm_a_bt(m, k, n, &a, &b, &mut out);
            assert_close(&out, &naive(m, k, n, &a, &bt));
        }
    }

    #[test]
    fn large_path_engages_and_agrees() {
        // 40×40×40 = 64000 flops: above SMALL_FLOPS, exercises the tiled
        // kernel including odd-row/odd-k remainders at 41.
        for &d in &[40usize, 41] {
            let a = seq(d * d, 0.1);
            let b = seq(d * d, 0.2);
            let mut out = vec![f32::NAN; d * d];
            gemm(d, d, d, &a, &b, &mut out);
            assert_close(&out, &naive(d, d, d, &a, &b));
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let d = 160; // above PAR_FLOPS
        let a = seq(d * d, 0.01);
        let b = seq(d * d, 0.02);
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                let mut out = vec![0.0f32; d * d];
                gemm(d, d, d, &a, &b, &mut out);
                let mut out2 = vec![0.0f32; d * d];
                gemm_at_b(d, d, d, &a, &b, &mut out2);
                let mut out3 = vec![0.0f32; d * d];
                gemm_a_bt(d, d, d, &a, &b, &mut out3);
                (out, out2, out3)
            })
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(7));
    }
}
