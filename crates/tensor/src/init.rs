//! Weight initialisation schemes over a caller-provided seeded RNG.
//!
//! Everything in the Goldfish reproduction is deterministic given a seed;
//! initialisers therefore never construct their own RNG.

use rand::Rng;

use crate::Tensor;

/// Kaiming-He uniform initialisation for layers followed by ReLU:
/// `U(-b, b)` with `b = sqrt(6 / fan_in)`.
///
/// # Panics
///
/// Panics if `fan_in` is zero.
pub fn kaiming_uniform<R: Rng + ?Sized>(rng: &mut R, shape: Vec<usize>, fan_in: usize) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let bound = (6.0 / fan_in as f32).sqrt();
    uniform(rng, shape, -bound, bound)
}

/// Xavier-Glorot uniform initialisation:
/// `U(-b, b)` with `b = sqrt(6 / (fan_in + fan_out))`.
///
/// # Panics
///
/// Panics if both fans are zero.
pub fn xavier_uniform<R: Rng + ?Sized>(
    rng: &mut R,
    shape: Vec<usize>,
    fan_in: usize,
    fan_out: usize,
) -> Tensor {
    assert!(fan_in + fan_out > 0, "fans must not both be zero");
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, shape, -bound, bound)
}

/// Uniform initialisation over `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, shape: Vec<usize>, lo: f32, hi: f32) -> Tensor {
    assert!(lo < hi, "empty range [{lo}, {hi})");
    let n: usize = shape.iter().product();
    Tensor::from_vec(shape, (0..n).map(|_| rng.gen_range(lo..hi)).collect())
}

/// Gaussian initialisation with the given mean and standard deviation,
/// sampled via Box–Muller (avoids a distribution-crate dependency).
///
/// # Panics
///
/// Panics if `std` is negative.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, shape: Vec<usize>, mean: f32, std: f32) -> Tensor {
    assert!(std >= 0.0, "std must be non-negative");
    let n: usize = shape.iter().product();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(mean + std * r * theta.cos());
        if data.len() < n {
            data.push(mean + std * r * theta.sin());
        }
    }
    Tensor::from_vec(shape, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn kaiming_within_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = kaiming_uniform(&mut rng, vec![100, 50], 50);
        let bound = (6.0f32 / 50.0).sqrt();
        assert!(t.as_slice().iter().all(|&v| v > -bound && v < bound));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let ta = xavier_uniform(&mut a, vec![10, 10], 10, 10);
        let tb = xavier_uniform(&mut b, vec![10, 10], 10, 10);
        assert_eq!(ta, tb);
    }

    #[test]
    fn normal_moments_roughly_match() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = normal(&mut rng, vec![20_000], 1.0, 2.0);
        let mean = t.mean();
        let var =
            t.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / (t.len() as f32 - 1.0);
        assert!((mean - 1.0).abs() < 0.08, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = normal(&mut rng, vec![8], 5.0, 0.0);
        assert!(t.as_slice().iter().all(|&v| v == 5.0));
    }
}
