//! Minimal ND tensor library (f32) powering the Goldfish federated-unlearning
//! reproduction.
//!
//! This crate is the numeric substrate for [`goldfish-nn`] and everything
//! above it. It deliberately implements only what the paper's models need,
//! but implements those pieces completely:
//!
//! * an owned, row-major, `f32` [`Tensor`] with shape tracking,
//! * elementwise and scalar arithmetic, AXPY-style updates,
//! * blocked matrix multiplication (plus transposed variants used by
//!   backpropagation),
//! * `im2col`/`col2im` based 2-D convolution and max-pooling kernels,
//! * numerically-stable softmax / log-softmax **with distillation
//!   temperature** (Eqs 3–4 of the paper),
//! * weight initialisation schemes (Kaiming / Xavier) over a seeded RNG,
//! * compact binary serialization of parameter vectors.
//!
//! # Example
//!
//! ```
//! use goldfish_tensor::{Tensor, ops};
//!
//! let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
//! let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
//! let c = ops::matmul(&a, &b);
//! assert_eq!(c.shape(), &[2, 2]);
//! assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conv;
pub mod engine;
pub mod init;
pub mod ops;
pub mod serialize;
mod tensor;

pub use tensor::Tensor;

/// Errors returned by fallible tensor operations (serialization,
/// validated construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided buffer length does not match the product of the shape.
    ShapeDataMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// A serialized blob was truncated or malformed.
    MalformedBytes(String),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { expected, actual } => write!(
                f,
                "shape implies {expected} elements but buffer holds {actual}"
            ),
            TensorError::MalformedBytes(msg) => write!(f, "malformed tensor bytes: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}
