//! Dense linear algebra and probabilistic transforms.
//!
//! The matmul family comes in the three orientations backpropagation needs
//! (`A·B`, `Aᵀ·B`, `A·Bᵀ`); softmax / log-softmax accept a *distillation
//! temperature* `T` implementing Eqs 3–4 of the Goldfish paper.
//!
//! The matmuls are thin wrappers over [`crate::engine`], which dispatches
//! by problem size between a reference-order loop (small operands; bitwise
//! identical to [`reference`]) and a register-tiled, rayon-parallel kernel
//! (large operands). The original naive implementations live on in
//! [`reference`] as the testing oracle, and [`matmul_sparse`] keeps the
//! old skip-zero-rows behaviour for explicitly sparse operands.

use crate::{engine, Tensor};

/// Matrix product `A · B` for 2-D tensors.
///
/// Dispatches by size between the reference-order loop and the blocked
/// parallel kernel (see [`crate::engine`]).
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use goldfish_tensor::{ops, Tensor};
/// let a = Tensor::from_vec(vec![1, 2], vec![1., 2.]);
/// let b = Tensor::from_vec(vec![2, 1], vec![3., 4.]);
/// assert_eq!(ops::matmul(&a, &b).as_slice(), &[11.]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.dims2();
    let (k2, n) = b.dims2();
    assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    engine::gemm(m, k, n, a.as_slice(), b.as_slice(), &mut out);
    Tensor::from_vec(vec![m, n], out)
}

/// Matrix product `Aᵀ · B` without materialising the transpose.
///
/// # Panics
///
/// Panics if the row counts of `A` and `B` disagree.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = a.dims2();
    let (k2, n) = b.dims2();
    assert_eq!(k, k2, "matmul_at_b leading dims: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    engine::gemm_at_b(k, m, n, a.as_slice(), b.as_slice(), &mut out);
    Tensor::from_vec(vec![m, n], out)
}

/// Matrix product `A · Bᵀ` without materialising the transpose.
///
/// # Panics
///
/// Panics if the column counts of `A` and `B` disagree.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.dims2();
    let (n, k2) = b.dims2();
    assert_eq!(k, k2, "matmul_a_bt trailing dims: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    engine::gemm_a_bt(m, k, n, a.as_slice(), b.as_slice(), &mut out);
    Tensor::from_vec(vec![m, n], out)
}

/// Matrix product `A · B` that skips zero elements of `A`.
///
/// This is the old dense-path behaviour, preserved as an explicit entry
/// point: the per-element `== 0.0` branch pessimizes dense operands (it
/// blocks vectorization of the inner loop), but wins when `A` is known to
/// be mostly zeros — e.g. one-hot label matrices or heavily pruned
/// weights. Accumulation order matches [`matmul`]'s small path, so for
/// operands without `NaN`/`∞` the results are identical.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
pub fn matmul_sparse(a: &Tensor, b: &Tensor) -> Tensor {
    reference::matmul(a, b)
}

pub mod reference {
    //! The original naive kernels, kept verbatim as the equivalence oracle
    //! for [`crate::engine`] (and as the sparse-aware implementation
    //! behind [`super::matmul_sparse`]). Property tests assert the engine
    //! agrees with these within accumulation tolerance; do not "optimize"
    //! them.

    use crate::Tensor;

    /// Reference `A · B`: ikj loop order, skipping zero `A` elements.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.dims2();
        let (k2, n) = b.dims2();
        assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        let av = a.as_slice();
        let bv = b.as_slice();
        for i in 0..m {
            let arow = &av[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (p, &apk) in arow.iter().enumerate() {
                if apk == 0.0 {
                    continue;
                }
                let brow = &bv[p * n..(p + 1) * n];
                for (o, &bpn) in orow.iter_mut().zip(brow.iter()) {
                    *o += apk * bpn;
                }
            }
        }
        Tensor::from_vec(vec![m, n], out)
    }

    /// Reference `Aᵀ · B` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if the row counts of `A` and `B` disagree.
    pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
        let (k, m) = a.dims2();
        let (k2, n) = b.dims2();
        assert_eq!(k, k2, "matmul_at_b leading dims: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        let av = a.as_slice();
        let bv = b.as_slice();
        for p in 0..k {
            let arow = &av[p * m..(p + 1) * m];
            let brow = &bv[p * n..(p + 1) * n];
            for (i, &api) in arow.iter().enumerate() {
                if api == 0.0 {
                    continue;
                }
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bpn) in orow.iter_mut().zip(brow.iter()) {
                    *o += api * bpn;
                }
            }
        }
        Tensor::from_vec(vec![m, n], out)
    }

    /// Reference `A · Bᵀ` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if the column counts of `A` and `B` disagree.
    pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.dims2();
        let (n, k2) = b.dims2();
        assert_eq!(k, k2, "matmul_a_bt trailing dims: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        let av = a.as_slice();
        let bv = b.as_slice();
        for i in 0..m {
            let arow = &av[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &bv[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&x, &y) in arow.iter().zip(brow.iter()) {
                    acc += x * y;
                }
                *o = acc;
            }
        }
        Tensor::from_vec(vec![m, n], out)
    }
}

/// Explicit 2-D transpose.
pub fn transpose(a: &Tensor) -> Tensor {
    let (m, n) = a.dims2();
    let av = a.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = av[i * n + j];
        }
    }
    Tensor::from_vec(vec![n, m], out)
}

/// Row-wise softmax with distillation temperature `t` (Eq 3/4 of the paper):
/// `softmax(z / t)` computed stably by subtracting the row max.
///
/// `t = 1` is the ordinary softmax; `t > 1` smooths the distribution
/// (soft labels), `t ≤ 1` sharpens towards hard labels.
///
/// # Panics
///
/// Panics if `t <= 0`.
pub fn softmax_t(logits: &Tensor, t: f32) -> Tensor {
    let mut out = Tensor::zeros(vec![0]);
    softmax_t_into(logits, t, &mut out);
    out
}

/// [`softmax_t`] writing into a caller-owned tensor (resized in place,
/// previous contents discarded) — the buffer-reusing form distillation
/// training calls every step. Values are bitwise identical to the
/// allocating form; after warm-up no heap allocation happens.
///
/// # Panics
///
/// Panics if `t <= 0`.
pub fn softmax_t_into(logits: &Tensor, t: f32, out: &mut Tensor) {
    assert!(t > 0.0, "temperature must be positive, got {t}");
    let (rows, cols) = logits.dims2();
    let lv = logits.as_slice();
    out.resize(&[rows, cols]);
    let ov = out.as_mut_slice();
    for r in 0..rows {
        let row = &lv[r * cols..(r + 1) * cols];
        let orow = &mut ov[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        // Exponentiate in a standalone elementwise pass (no loop-carried
        // accumulator, so the compiler can vectorize the exp), then sum
        // in the same ascending order the fused loop used — values are
        // bit-for-bit what the single-pass form produced.
        for (o, &z) in orow.iter_mut().zip(row.iter()) {
            *o = ((z - max) / t).exp();
        }
        let denom: f32 = orow.iter().sum();
        for o in orow.iter_mut() {
            *o /= denom;
        }
    }
}

/// Ordinary row-wise softmax (`softmax_t` at temperature 1).
pub fn softmax(logits: &Tensor) -> Tensor {
    softmax_t(logits, 1.0)
}

/// Row-wise log-softmax with temperature `t`, computed stably via the
/// log-sum-exp trick.
///
/// # Panics
///
/// Panics if `t <= 0`.
pub fn log_softmax_t(logits: &Tensor, t: f32) -> Tensor {
    let mut out = Tensor::zeros(vec![0]);
    log_softmax_t_into(logits, t, &mut out);
    out
}

/// [`log_softmax_t`] writing into a caller-owned tensor (resized in
/// place, previous contents discarded) — the buffer-reusing form the
/// fused distillation loss calls every step. Values are bitwise
/// identical to the allocating form; after warm-up no heap allocation
/// happens.
///
/// # Panics
///
/// Panics if `t <= 0`.
pub fn log_softmax_t_into(logits: &Tensor, t: f32, out: &mut Tensor) {
    assert!(t > 0.0, "temperature must be positive, got {t}");
    let (rows, cols) = logits.dims2();
    let lv = logits.as_slice();
    out.resize(&[rows, cols]);
    let ov = out.as_mut_slice();
    for r in 0..rows {
        let row = &lv[r * cols..(r + 1) * cols];
        let orow = &mut ov[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        // Stage the exponentials in the output row first: the standalone
        // elementwise pass vectorizes, and summing the staged values in
        // ascending order reproduces the fused `map(exp).sum()` bitwise.
        for (o, &z) in orow.iter_mut().zip(row.iter()) {
            *o = ((z - max) / t).exp();
        }
        let lse = orow.iter().sum::<f32>().ln();
        for (o, &z) in orow.iter_mut().zip(row.iter()) {
            *o = (z - max) / t - lse;
        }
    }
}

/// Index of the maximum entry of each row of the 2-D view.
pub fn argmax_rows(t: &Tensor) -> Vec<usize> {
    let (rows, cols) = t.dims2();
    let tv = t.as_slice();
    (0..rows)
        .map(|r| {
            let row = &tv[r * cols..(r + 1) * cols];
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

/// Sum over rows: reduces an `[N, D]` tensor to `[D]`. Used for bias
/// gradients.
pub fn sum_rows(t: &Tensor) -> Tensor {
    let (rows, cols) = t.dims2();
    let tv = t.as_slice();
    let mut out = vec![0.0f32; cols];
    for r in 0..rows {
        for (o, &v) in out.iter_mut().zip(tv[r * cols..(r + 1) * cols].iter()) {
            *o += v;
        }
    }
    Tensor::from_vec(vec![cols], out)
}

/// Population variance of each row of the 2-D view.
///
/// This is `D(·)` of the paper's confusion loss (Eq 2): the dispersion of a
/// predicted probability vector.
pub fn row_variance(t: &Tensor) -> Vec<f32> {
    let (rows, cols) = t.dims2();
    let tv = t.as_slice();
    (0..rows)
        .map(|r| {
            let row = &tv[r * cols..(r + 1) * cols];
            let mean = row.iter().sum::<f32>() / cols as f32;
            row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f32, b: f32, eps: f32) {
        assert!((a - b).abs() < eps, "{a} !≈ {b}");
    }

    #[test]
    fn matmul_hand_example() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]);
        let id = Tensor::from_vec(vec![2, 2], vec![1., 0., 0., 1.]);
        assert_eq!(matmul(&a, &id).as_slice(), a.as_slice());
        assert_eq!(matmul(&id, &a).as_slice(), a.as_slice());
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = Tensor::from_vec(vec![3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![3, 4], (0..12).map(|v| v as f32).collect());
        let via_t = matmul(&transpose(&a), &b);
        let direct = matmul_at_b(&a, &b);
        assert_eq!(via_t.as_slice(), direct.as_slice());
        assert_eq!(direct.shape(), &[2, 4]);
    }

    #[test]
    fn matmul_a_bt_agrees() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![4, 3], (0..12).map(|v| v as f32).collect());
        let direct = matmul_a_bt(&a, &b);
        let via_t = matmul(&a, &transpose(&b));
        assert_eq!(direct.as_slice(), via_t.as_slice());
        assert_eq!(direct.shape(), &[2, 4]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., -1., 0., 1.]);
        let p = softmax(&t);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert_close(s, 1.0, 1e-6);
        }
    }

    #[test]
    fn softmax_temperature_smooths() {
        let t = Tensor::from_vec(vec![1, 3], vec![1., 2., 3.]);
        let sharp = softmax_t(&t, 0.5);
        let smooth = softmax_t(&t, 5.0);
        // Higher temperature → flatter distribution → lower max prob.
        let max_sharp = sharp.as_slice().iter().cloned().fold(0.0f32, f32::max);
        let max_smooth = smooth.as_slice().iter().cloned().fold(0.0f32, f32::max);
        assert!(max_sharp > max_smooth);
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let t = Tensor::from_vec(vec![1, 3], vec![1000., 1001., 1002.]);
        let p = softmax(&t);
        assert!(p.all_finite());
        assert_close(p.as_slice().iter().sum::<f32>(), 1.0, 1e-6);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let t = Tensor::from_vec(vec![2, 4], vec![0.3, -1.2, 2.0, 0.7, 1.1, 0.0, -0.5, 0.2]);
        let lp = log_softmax_t(&t, 3.0);
        let p = softmax_t(&t, 3.0);
        for (l, v) in lp.as_slice().iter().zip(p.as_slice()) {
            assert_close(*l, v.ln(), 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn softmax_rejects_nonpositive_temperature() {
        let _ = softmax_t(&Tensor::zeros(vec![1, 2]), 0.0);
    }

    #[test]
    fn argmax_rows_picks_max() {
        let t = Tensor::from_vec(vec![2, 3], vec![0.1, 0.9, 0.0, 0.5, 0.2, 0.3]);
        assert_eq!(argmax_rows(&t), vec![1, 0]);
    }

    #[test]
    fn sum_rows_reduces() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 10., 20., 30.]);
        assert_eq!(sum_rows(&t).as_slice(), &[11., 22., 33.]);
    }

    #[test]
    fn row_variance_uniform_is_zero() {
        let t = Tensor::from_vec(vec![1, 4], vec![0.25; 4]);
        assert_close(row_variance(&t)[0], 0.0, 1e-9);
    }

    #[test]
    fn row_variance_onehot() {
        // one-hot over 4 classes: mean 0.25, var = (0.75^2 + 3*0.25^2)/4
        let t = Tensor::from_vec(vec![1, 4], vec![1., 0., 0., 0.]);
        assert_close(row_variance(&t)[0], (0.5625 + 3.0 * 0.0625) / 4.0, 1e-6);
    }
}
