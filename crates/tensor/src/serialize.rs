//! Compact binary framing for tensors and parameter vectors.
//!
//! Federated clients upload their parameter vectors every round; this module
//! gives the simulation a realistic wire format (and lets the benchmarks
//! measure serialization cost). The layout is:
//!
//! ```text
//! u32 rank | u64 dims[rank] | f32 data[prod(dims)]     (little endian)
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{Tensor, TensorError};

/// Serializes a tensor into a freshly allocated byte buffer.
pub fn to_bytes(t: &Tensor) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + 8 * t.rank() + 4 * t.len());
    buf.put_u32_le(t.rank() as u32);
    for &d in t.shape() {
        buf.put_u64_le(d as u64);
    }
    for &v in t.as_slice() {
        buf.put_f32_le(v);
    }
    buf.freeze()
}

/// Deserializes a tensor produced by [`to_bytes`].
///
/// # Errors
///
/// Returns [`TensorError::MalformedBytes`] when the buffer is truncated or
/// the header is inconsistent.
pub fn from_bytes(mut bytes: Bytes) -> Result<Tensor, TensorError> {
    if bytes.remaining() < 4 {
        return Err(TensorError::MalformedBytes("missing rank header".into()));
    }
    let rank = bytes.get_u32_le() as usize;
    if rank == 0 || rank > 8 {
        return Err(TensorError::MalformedBytes(format!(
            "implausible rank {rank}"
        )));
    }
    if bytes.remaining() < 8 * rank {
        return Err(TensorError::MalformedBytes("truncated shape".into()));
    }
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(bytes.get_u64_le() as usize);
    }
    let n: usize = shape.iter().product();
    if bytes.remaining() < 4 * n {
        return Err(TensorError::MalformedBytes(format!(
            "data truncated: need {} floats, have {} bytes",
            n,
            bytes.remaining()
        )));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(bytes.get_f32_le());
    }
    Tensor::try_from_vec(shape, data)
}

/// Serializes a flat parameter vector (no shape) — the payload a federated
/// client uploads.
pub fn params_to_bytes(params: &[f32]) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + 4 * params.len());
    buf.put_u64_le(params.len() as u64);
    for &v in params {
        buf.put_f32_le(v);
    }
    buf.freeze()
}

/// Deserializes a parameter vector produced by [`params_to_bytes`].
///
/// # Errors
///
/// Returns [`TensorError::MalformedBytes`] on truncation.
pub fn params_from_bytes(mut bytes: Bytes) -> Result<Vec<f32>, TensorError> {
    if bytes.remaining() < 8 {
        return Err(TensorError::MalformedBytes("missing length header".into()));
    }
    let n = bytes.get_u64_le() as usize;
    if bytes.remaining() < 4 * n {
        return Err(TensorError::MalformedBytes(format!(
            "param payload truncated: need {n} floats"
        )));
    }
    Ok((0..n).map(|_| bytes.get_f32_le()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_roundtrip() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., -2., 3.5, 0., 5., -6.25]);
        let b = to_bytes(&t);
        let back = from_bytes(b).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn rejects_truncated() {
        let t = Tensor::from_vec(vec![4], vec![1., 2., 3., 4.]);
        let b = to_bytes(&t);
        let cut = b.slice(0..b.len() - 3);
        assert!(matches!(
            from_bytes(cut),
            Err(TensorError::MalformedBytes(_))
        ));
    }

    #[test]
    fn rejects_empty() {
        assert!(from_bytes(Bytes::new()).is_err());
    }

    #[test]
    fn rejects_silly_rank() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(99);
        assert!(from_bytes(buf.freeze()).is_err());
    }

    #[test]
    fn params_roundtrip() {
        let p = vec![0.5f32, -1.5, 2.25];
        let b = params_to_bytes(&p);
        assert_eq!(params_from_bytes(b).unwrap(), p);
    }

    #[test]
    fn params_rejects_truncation() {
        let p = vec![1.0f32; 10];
        let b = params_to_bytes(&p);
        let cut = b.slice(0..b.len() - 1);
        assert!(params_from_bytes(cut).is_err());
    }
}
