//! Compact binary framing for tensors and parameter vectors.
//!
//! Federated clients upload their parameter vectors every round; this module
//! gives the simulation a realistic wire format (and lets the benchmarks
//! measure serialization cost). The layout is:
//!
//! ```text
//! u32 rank | u64 dims[rank] | f32 data[prod(dims)]     (little endian)
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{Tensor, TensorError};

/// Floats converted per staging batch by the bulk f32 payload helpers.
///
/// The old wire code pushed floats through `put_f32_le`/`get_f32_le` one
/// element at a time — a call, a bounds check and a 4-byte append per
/// float. The helpers below instead run the `f32 ↔ little-endian bytes`
/// conversion over fixed-size batches on the stack and move each batch
/// with a single bulk copy; on little-endian targets the conversion loop
/// compiles down to a straight block copy, so serializing a parameter
/// vector is effectively one memcpy per batch.
const F32_BATCH: usize = 1024;

/// Appends `data` to `buf` as little-endian `f32`s via stack-batched bulk
/// copies.
fn put_f32s_le(buf: &mut BytesMut, data: &[f32]) {
    let mut raw = [0u8; 4 * F32_BATCH];
    for batch in data.chunks(F32_BATCH) {
        let used = &mut raw[..4 * batch.len()];
        for (dst, &v) in used.chunks_exact_mut(4).zip(batch) {
            dst.copy_from_slice(&v.to_le_bytes());
        }
        buf.put_slice(used);
    }
}

/// Reads `n` little-endian `f32`s from `bytes` via stack-batched bulk
/// copies. The caller has already verified `bytes.remaining() >= 4 * n`.
fn get_f32s_le(bytes: &mut Bytes, n: usize) -> Vec<f32> {
    let mut data = Vec::with_capacity(n);
    let mut raw = [0u8; 4 * F32_BATCH];
    let mut left = n;
    while left > 0 {
        let take = left.min(F32_BATCH);
        let used = &mut raw[..4 * take];
        bytes.copy_to_slice(used);
        data.extend(
            used.chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk"))),
        );
        left -= take;
    }
    data
}

/// Serializes a tensor into a freshly allocated byte buffer.
pub fn to_bytes(t: &Tensor) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + 8 * t.rank() + 4 * t.len());
    buf.put_u32_le(t.rank() as u32);
    for &d in t.shape() {
        buf.put_u64_le(d as u64);
    }
    put_f32s_le(&mut buf, t.as_slice());
    buf.freeze()
}

/// Deserializes a tensor produced by [`to_bytes`].
///
/// # Errors
///
/// Returns [`TensorError::MalformedBytes`] when the buffer is truncated or
/// the header is inconsistent.
pub fn from_bytes(mut bytes: Bytes) -> Result<Tensor, TensorError> {
    if bytes.remaining() < 4 {
        return Err(TensorError::MalformedBytes("missing rank header".into()));
    }
    let rank = bytes.get_u32_le() as usize;
    if rank == 0 || rank > 8 {
        return Err(TensorError::MalformedBytes(format!(
            "implausible rank {rank}"
        )));
    }
    if bytes.remaining() < 8 * rank {
        return Err(TensorError::MalformedBytes("truncated shape".into()));
    }
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(bytes.get_u64_le() as usize);
    }
    // A hostile shape can overflow `prod(dims)` (and `4 * n`); reject via
    // checked arithmetic instead of trusting the header.
    let n: usize = match shape.iter().try_fold(1usize, |a, &d| a.checked_mul(d)) {
        Some(n) => n,
        None => {
            return Err(TensorError::MalformedBytes(format!(
                "implausible shape {shape:?} (element count overflows)"
            )))
        }
    };
    if (bytes.remaining() / 4) < n {
        return Err(TensorError::MalformedBytes(format!(
            "data truncated: need {} floats, have {} bytes",
            n,
            bytes.remaining()
        )));
    }
    let data = get_f32s_le(&mut bytes, n);
    Tensor::try_from_vec(shape, data)
}

/// Serializes a flat parameter vector (no shape) — the payload a federated
/// client uploads.
pub fn params_to_bytes(params: &[f32]) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + 4 * params.len());
    buf.put_u64_le(params.len() as u64);
    put_f32s_le(&mut buf, params);
    buf.freeze()
}

/// Deserializes a parameter vector produced by [`params_to_bytes`].
///
/// # Errors
///
/// Returns [`TensorError::MalformedBytes`] on truncation.
pub fn params_from_bytes(mut bytes: Bytes) -> Result<Vec<f32>, TensorError> {
    if bytes.remaining() < 8 {
        return Err(TensorError::MalformedBytes("missing length header".into()));
    }
    let n = bytes.get_u64_le();
    // `remaining / 4 >= n` is the overflow-safe form of
    // `remaining >= 4 * n` — a hostile length prefix (u64::MAX) must be
    // rejected here, not fed to an allocator or a multiply.
    if ((bytes.remaining() / 4) as u64) < n {
        return Err(TensorError::MalformedBytes(format!(
            "param payload truncated: need {n} floats, have {} bytes",
            bytes.remaining()
        )));
    }
    Ok(get_f32s_le(&mut bytes, n as usize))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_roundtrip() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., -2., 3.5, 0., 5., -6.25]);
        let b = to_bytes(&t);
        let back = from_bytes(b).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn rejects_truncated() {
        let t = Tensor::from_vec(vec![4], vec![1., 2., 3., 4.]);
        let b = to_bytes(&t);
        let cut = b.slice(0..b.len() - 3);
        assert!(matches!(
            from_bytes(cut),
            Err(TensorError::MalformedBytes(_))
        ));
    }

    #[test]
    fn rejects_empty() {
        assert!(from_bytes(Bytes::new()).is_err());
    }

    #[test]
    fn rejects_silly_rank() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(99);
        assert!(from_bytes(buf.freeze()).is_err());
    }

    #[test]
    fn bulk_writer_matches_per_element_wire_format() {
        // The bulk f32 batching must be a pure speedup: byte-for-byte the
        // same frames the old per-element `put_f32_le` loop produced.
        let values: Vec<f32> = (0..2500).map(|i| (i as f32 * 0.37).sin() * 1e3).collect();
        let t = Tensor::from_vec(vec![50, 50], values.clone());
        let mut legacy = BytesMut::new();
        legacy.put_u32_le(2);
        legacy.put_u64_le(50);
        legacy.put_u64_le(50);
        for &v in &values {
            legacy.put_f32_le(v);
        }
        assert_eq!(to_bytes(&t), legacy.freeze());

        let mut legacy_params = BytesMut::new();
        legacy_params.put_u64_le(values.len() as u64);
        for &v in &values {
            legacy_params.put_f32_le(v);
        }
        assert_eq!(params_to_bytes(&values), legacy_params.freeze());
    }

    #[test]
    fn bulk_reader_handles_non_batch_multiples() {
        // 1500 floats straddles the 1024-float staging batch.
        let p: Vec<f32> = (0..1500).map(|i| i as f32 - 750.0).collect();
        let b = params_to_bytes(&p);
        assert_eq!(params_from_bytes(b).unwrap(), p);
    }

    #[test]
    fn params_roundtrip() {
        let p = vec![0.5f32, -1.5, 2.25];
        let b = params_to_bytes(&p);
        assert_eq!(params_from_bytes(b).unwrap(), p);
    }

    #[test]
    fn params_rejects_truncation() {
        let p = vec![1.0f32; 10];
        let b = params_to_bytes(&p);
        let cut = b.slice(0..b.len() - 1);
        assert!(params_from_bytes(cut).is_err());
    }
}
