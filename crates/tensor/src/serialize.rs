//! Compact binary framing for tensors and parameter vectors.
//!
//! Federated clients upload their parameter vectors every round; this module
//! gives the simulation a realistic wire format (and lets the benchmarks
//! measure serialization cost). The layout is:
//!
//! ```text
//! u32 rank | u64 dims[rank] | f32 data[prod(dims)]     (little endian)
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{Tensor, TensorError};

/// Floats converted per staging batch by the bulk f32 payload helpers.
///
/// The old wire code pushed floats through `put_f32_le`/`get_f32_le` one
/// element at a time — a call, a bounds check and a 4-byte append per
/// float. The helpers below instead run the `f32 ↔ little-endian bytes`
/// conversion over fixed-size batches on the stack and move each batch
/// with a single bulk copy; on little-endian targets the conversion loop
/// compiles down to a straight block copy, so serializing a parameter
/// vector is effectively one memcpy per batch.
const F32_BATCH: usize = 1024;

/// Appends `data` to `buf` as little-endian `f32`s via stack-batched bulk
/// copies.
fn put_f32s_le(buf: &mut BytesMut, data: &[f32]) {
    let mut raw = [0u8; 4 * F32_BATCH];
    for batch in data.chunks(F32_BATCH) {
        let used = &mut raw[..4 * batch.len()];
        for (dst, &v) in used.chunks_exact_mut(4).zip(batch) {
            dst.copy_from_slice(&v.to_le_bytes());
        }
        buf.put_slice(used);
    }
}

/// Appends `data` to a plain `Vec<u8>` as little-endian `f32`s — the same
/// bytes [`put_f32s_le`] produces, for callers that stage frames in
/// reusable `Vec<u8>` buffers (the serve wire layer).
fn put_f32s_le_vec(buf: &mut Vec<u8>, data: &[f32]) {
    let mut raw = [0u8; 4 * F32_BATCH];
    for batch in data.chunks(F32_BATCH) {
        let used = &mut raw[..4 * batch.len()];
        for (dst, &v) in used.chunks_exact_mut(4).zip(batch) {
            dst.copy_from_slice(&v.to_le_bytes());
        }
        buf.extend_from_slice(used);
    }
}

/// Decodes `out.len()` little-endian `f32`s from the front of `src`
/// straight into `out` — no staging buffer, no intermediate collect. On
/// little-endian targets the loop compiles to a straight block copy.
/// The caller has already verified `src.len() >= 4 * out.len()`.
fn f32s_from_le(src: &[u8], out: &mut [f32]) {
    for (o, c) in out.iter_mut().zip(src.chunks_exact(4)) {
        *o = f32::from_le_bytes(c.try_into().expect("4-byte chunk"));
    }
}

/// Reads `n` little-endian `f32`s from `bytes`, decoding directly into the
/// returned vector. The caller has already verified
/// `bytes.remaining() >= 4 * n`.
fn get_f32s_le(bytes: &mut Bytes, n: usize) -> Vec<f32> {
    let mut data = vec![0.0f32; n];
    f32s_from_le(bytes.as_ref(), &mut data);
    bytes.advance(4 * n);
    data
}

/// Serializes a tensor into a freshly allocated byte buffer.
pub fn to_bytes(t: &Tensor) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + 8 * t.rank() + 4 * t.len());
    buf.put_u32_le(t.rank() as u32);
    for &d in t.shape() {
        buf.put_u64_le(d as u64);
    }
    put_f32s_le(&mut buf, t.as_slice());
    buf.freeze()
}

/// Deserializes a tensor produced by [`to_bytes`].
///
/// # Errors
///
/// Returns [`TensorError::MalformedBytes`] when the buffer is truncated or
/// the header is inconsistent.
pub fn from_bytes(mut bytes: Bytes) -> Result<Tensor, TensorError> {
    if bytes.remaining() < 4 {
        return Err(TensorError::MalformedBytes("missing rank header".into()));
    }
    let rank = bytes.get_u32_le() as usize;
    if rank == 0 || rank > 8 {
        return Err(TensorError::MalformedBytes(format!(
            "implausible rank {rank}"
        )));
    }
    if bytes.remaining() < 8 * rank {
        return Err(TensorError::MalformedBytes("truncated shape".into()));
    }
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(bytes.get_u64_le() as usize);
    }
    // A hostile shape can overflow `prod(dims)` (and `4 * n`); reject via
    // checked arithmetic instead of trusting the header.
    let n: usize = match shape.iter().try_fold(1usize, |a, &d| a.checked_mul(d)) {
        Some(n) => n,
        None => {
            return Err(TensorError::MalformedBytes(format!(
                "implausible shape {shape:?} (element count overflows)"
            )))
        }
    };
    if (bytes.remaining() / 4) < n {
        return Err(TensorError::MalformedBytes(format!(
            "data truncated: need {} floats, have {} bytes",
            n,
            bytes.remaining()
        )));
    }
    let data = get_f32s_le(&mut bytes, n);
    Tensor::try_from_vec(shape, data)
}

/// Serializes a flat parameter vector (no shape) — the payload a federated
/// client uploads.
pub fn params_to_bytes(params: &[f32]) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + 4 * params.len());
    buf.put_u64_le(params.len() as u64);
    put_f32s_le(&mut buf, params);
    buf.freeze()
}

/// Encoded size of a parameter vector of `n` floats (for pre-sizing frame
/// buffers).
pub fn params_wire_len(n: usize) -> usize {
    8 + 4 * n
}

/// Appends the [`params_to_bytes`] encoding of `params` to `out` —
/// byte-for-byte the same payload, written into a caller-owned buffer so
/// a steady-state encode loop never allocates once `out`'s capacity is
/// warm.
pub fn params_write_into(out: &mut Vec<u8>, params: &[f32]) {
    out.extend_from_slice(&(params.len() as u64).to_le_bytes());
    put_f32s_le_vec(out, params);
}

/// Deserializes a parameter vector produced by [`params_to_bytes`].
///
/// # Errors
///
/// Returns [`TensorError::MalformedBytes`] on truncation.
pub fn params_from_bytes(mut bytes: Bytes) -> Result<Vec<f32>, TensorError> {
    if bytes.remaining() < 8 {
        return Err(TensorError::MalformedBytes("missing length header".into()));
    }
    let n = bytes.get_u64_le();
    // `remaining / 4 >= n` is the overflow-safe form of
    // `remaining >= 4 * n` — a hostile length prefix (u64::MAX) must be
    // rejected here, not fed to an allocator or a multiply.
    if ((bytes.remaining() / 4) as u64) < n {
        return Err(TensorError::MalformedBytes(format!(
            "param payload truncated: need {n} floats, have {} bytes",
            bytes.remaining()
        )));
    }
    Ok(get_f32s_le(&mut bytes, n as usize))
}

/// Announced float count of a [`params_to_bytes`] payload starting at the
/// front of `bytes`, after the same hostile-length validation
/// [`params_from_bytes`] performs.
///
/// # Errors
///
/// Returns [`TensorError::MalformedBytes`] on truncation or a length
/// prefix the buffer cannot back.
pub fn params_peek_len(bytes: &[u8]) -> Result<usize, TensorError> {
    if bytes.len() < 8 {
        return Err(TensorError::MalformedBytes("missing length header".into()));
    }
    let n = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
    if (((bytes.len() - 8) / 4) as u64) < n {
        return Err(TensorError::MalformedBytes(format!(
            "param payload truncated: need {n} floats, have {} bytes",
            bytes.len() - 8
        )));
    }
    Ok(n as usize)
}

/// Decodes a [`params_to_bytes`] payload straight into a caller-provided
/// slice — no intermediate collect, no allocation. Returns the number of
/// payload bytes consumed (`8 + 4 * out.len()`), so a caller embedding
/// the vector mid-payload can keep parsing after it.
///
/// # Errors
///
/// Returns [`TensorError::MalformedBytes`] on truncation, a hostile
/// length prefix, or when the announced float count differs from
/// `out.len()` (the caller sizes `out` via [`params_peek_len`] or its
/// protocol-known state length).
pub fn params_read_into(bytes: &[u8], out: &mut [f32]) -> Result<usize, TensorError> {
    let n = params_peek_len(bytes)?;
    if n != out.len() {
        return Err(TensorError::MalformedBytes(format!(
            "param payload carries {n} floats, caller expects {}",
            out.len()
        )));
    }
    f32s_from_le(&bytes[8..], out);
    Ok(8 + 4 * n)
}

/// [`params_read_into`] for a caller-owned `Vec` resized to fit: decodes
/// whatever float count the payload announces, reusing the vector's
/// capacity. Returns the payload bytes consumed.
///
/// # Errors
///
/// Returns [`TensorError::MalformedBytes`] on truncation or a hostile
/// length prefix.
pub fn params_read_into_vec(bytes: &[u8], out: &mut Vec<f32>) -> Result<usize, TensorError> {
    let n = params_peek_len(bytes)?;
    out.resize(n, 0.0);
    params_read_into(bytes, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_roundtrip() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., -2., 3.5, 0., 5., -6.25]);
        let b = to_bytes(&t);
        let back = from_bytes(b).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn rejects_truncated() {
        let t = Tensor::from_vec(vec![4], vec![1., 2., 3., 4.]);
        let b = to_bytes(&t);
        let cut = b.slice(0..b.len() - 3);
        assert!(matches!(
            from_bytes(cut),
            Err(TensorError::MalformedBytes(_))
        ));
    }

    #[test]
    fn rejects_empty() {
        assert!(from_bytes(Bytes::new()).is_err());
    }

    #[test]
    fn rejects_silly_rank() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(99);
        assert!(from_bytes(buf.freeze()).is_err());
    }

    #[test]
    fn bulk_writer_matches_per_element_wire_format() {
        // The bulk f32 batching must be a pure speedup: byte-for-byte the
        // same frames the old per-element `put_f32_le` loop produced.
        let values: Vec<f32> = (0..2500).map(|i| (i as f32 * 0.37).sin() * 1e3).collect();
        let t = Tensor::from_vec(vec![50, 50], values.clone());
        let mut legacy = BytesMut::new();
        legacy.put_u32_le(2);
        legacy.put_u64_le(50);
        legacy.put_u64_le(50);
        for &v in &values {
            legacy.put_f32_le(v);
        }
        assert_eq!(to_bytes(&t), legacy.freeze());

        let mut legacy_params = BytesMut::new();
        legacy_params.put_u64_le(values.len() as u64);
        for &v in &values {
            legacy_params.put_f32_le(v);
        }
        assert_eq!(params_to_bytes(&values), legacy_params.freeze());
    }

    #[test]
    fn bulk_reader_handles_non_batch_multiples() {
        // 1500 floats straddles the 1024-float staging batch.
        let p: Vec<f32> = (0..1500).map(|i| i as f32 - 750.0).collect();
        let b = params_to_bytes(&p);
        assert_eq!(params_from_bytes(b).unwrap(), p);
    }

    #[test]
    fn params_roundtrip() {
        let p = vec![0.5f32, -1.5, 2.25];
        let b = params_to_bytes(&p);
        assert_eq!(params_from_bytes(b).unwrap(), p);
    }

    #[test]
    fn params_rejects_truncation() {
        let p = vec![1.0f32; 10];
        let b = params_to_bytes(&p);
        let cut = b.slice(0..b.len() - 1);
        assert!(params_from_bytes(cut).is_err());
    }

    #[test]
    fn write_into_matches_allocating_encoder() {
        let p: Vec<f32> = (0..1500).map(|i| (i as f32 * 0.7).cos()).collect();
        let mut buf = vec![0xAAu8; 3]; // pre-existing bytes survive
        params_write_into(&mut buf, &p);
        assert_eq!(&buf[..3], &[0xAA; 3]);
        assert_eq!(&buf[3..], params_to_bytes(&p).as_ref());
        assert_eq!(buf.len() - 3, params_wire_len(p.len()));
    }

    #[test]
    fn read_into_matches_allocating_decoder() {
        let p: Vec<f32> = (0..1029).map(|i| i as f32 - 514.5).collect();
        let wire = params_to_bytes(&p);
        let mut out = vec![0.0f32; p.len()];
        let used = params_read_into(wire.as_ref(), &mut out).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(out, p);
        let mut grown = Vec::new();
        assert_eq!(
            params_read_into_vec(wire.as_ref(), &mut grown).unwrap(),
            wire.len()
        );
        assert_eq!(grown, p);
    }

    #[test]
    fn read_into_rejects_bad_sizes() {
        let wire = params_to_bytes(&[1.0f32; 8]);
        let mut short = vec![0.0f32; 7];
        assert!(params_read_into(wire.as_ref(), &mut short).is_err());
        assert!(params_read_into(&wire.as_ref()[..9], &mut [0.0f32; 8]).is_err());
        assert!(params_peek_len(&[0u8; 4]).is_err());
        // Hostile length prefix: u64::MAX floats announced, 0 present.
        let hostile = u64::MAX.to_le_bytes();
        assert!(params_peek_len(&hostile).is_err());
    }
}
