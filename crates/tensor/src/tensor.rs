//! The owned ND tensor type.

use serde::{Deserialize, Serialize};

use crate::TensorError;

/// An owned, row-major, `f32` tensor with a dynamic shape.
///
/// `Tensor` is the single datum type used across the Goldfish stack:
/// mini-batches (`[N, D]` or `[N, C, H, W]`), parameters, gradients and
/// probability distributions are all `Tensor`s. It intentionally has value
/// semantics — cloning copies the buffer — because federated simulation
/// constantly snapshots parameter vectors.
///
/// # Example
///
/// ```
/// use goldfish_tensor::Tensor;
///
/// let t = Tensor::zeros(vec![2, 3]);
/// assert_eq!(t.len(), 6);
/// assert_eq!(t.shape(), &[2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty.
    pub fn zeros(shape: Vec<usize>) -> Self {
        assert!(!shape.is_empty(), "tensor shape must not be empty");
        let n = shape.iter().product();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn filled(shape: Vec<usize>, value: f32) -> Self {
        let mut t = Tensor::zeros(shape);
        t.data.fill(value);
        t
    }

    /// Creates a tensor from a shape and a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length does not match the shape. Use
    /// [`Tensor::try_from_vec`] for a fallible variant.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        Tensor::try_from_vec(shape, data).expect("shape/data mismatch")
    }

    /// Fallible variant of [`Tensor::from_vec`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] when the buffer length is
    /// not the product of the shape dimensions.
    pub fn try_from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if expected != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Borrow the flat row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Interprets the tensor as a 2-D matrix, returning `(rows, cols)`.
    ///
    /// Rank-1 tensors are viewed as a single row. Higher-rank tensors are
    /// viewed as `[shape[0], rest]` — the standard "batch of flattened
    /// features" view.
    pub fn dims2(&self) -> (usize, usize) {
        match self.shape.len() {
            1 => (1, self.shape[0]),
            _ => (self.shape[0], self.shape[1..].iter().product()),
        }
    }

    /// Interprets the tensor as 4-D `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4.
    pub fn dims4(&self) -> (usize, usize, usize, usize) {
        assert_eq!(
            self.shape.len(),
            4,
            "expected rank-4 tensor, got shape {:?}",
            self.shape
        );
        (self.shape[0], self.shape[1], self.shape[2], self.shape[3])
    }

    /// Reshapes the tensor **in place** to `shape`, growing or shrinking
    /// the buffer as needed and reusing its capacity.
    ///
    /// This is the workhorse of the allocation-free training runtime:
    /// arena tensors are `resize`d to each step's geometry, which after
    /// warm-up (once the buffer has seen its largest size) performs no
    /// heap allocation. Newly exposed elements are zero; existing element
    /// values are preserved only as an implementation detail — callers
    /// are expected to overwrite the buffer.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty.
    pub fn resize(&mut self, shape: &[usize]) {
        assert!(!shape.is_empty(), "tensor shape must not be empty");
        let n = shape.iter().product();
        if self.shape != shape {
            self.shape.clear();
            self.shape.extend_from_slice(shape);
        }
        self.data.resize(n, 0.0);
    }

    /// Copies `src` into `self` (shape and data), reusing `self`'s buffer
    /// capacity — the allocation-free counterpart of `clone`.
    pub fn assign(&mut self, src: &Tensor) {
        self.resize(src.shape());
        self.data.copy_from_slice(src.as_slice());
    }

    /// Returns a tensor with the same data but a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: Vec<usize>) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(
            expected,
            self.data.len(),
            "cannot reshape {:?} ({} elems) into {:?} ({} elems)",
            self.shape,
            self.data.len(),
            shape,
            expected
        );
        self.shape = shape;
        self
    }

    /// Element at a flat index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    pub fn at(&self, idx: usize) -> f32 {
        self.data[idx]
    }

    /// Element of a 2-D tensor at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access or if the tensor is not viewable as 2-D.
    pub fn at2(&self, row: usize, col: usize) -> f32 {
        let (r, c) = self.dims2();
        assert!(row < r && col < c, "index ({row},{col}) out of ({r},{c})");
        self.data[row * c + col]
    }

    /// Borrow row `row` of the 2-D view of this tensor.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> &[f32] {
        let (r, c) = self.dims2();
        assert!(row < r, "row {row} out of {r}");
        &self.data[row * c..(row + 1) * c]
    }

    /// Mutably borrow row `row` of the 2-D view of this tensor.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        let (r, c) = self.dims2();
        assert!(row < r, "row {row} out of {r}");
        &mut self.data[row * c..(row + 1) * c]
    }

    /// Builds a new tensor holding the selected rows (2-D view) of `self`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, rows: &[usize]) -> Tensor {
        let (_, c) = self.dims2();
        let mut out = Vec::with_capacity(rows.len() * c);
        for &r in rows {
            out.extend_from_slice(self.row(r));
        }
        let mut shape = self.shape.clone();
        shape[0] = rows.len();
        // Rank-1 tensors become a batch of rows.
        if shape.len() == 1 {
            shape = vec![rows.len(), self.shape[0]];
        }
        Tensor::from_vec(shape, out)
    }

    /// Elementwise sum with `other`, returning a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// Returns `self * scalar`.
    pub fn scale(&self, scalar: f32) -> Tensor {
        self.map(|v| v * scalar)
    }

    /// In-place `self += alpha * other` (AXPY). This is the workhorse of
    /// SGD updates, FedAvg aggregation and shard checkpoint arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "axpy shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// In-place multiply by a scalar.
    pub fn scale_mut(&mut self, scalar: f32) {
        for v in &mut self.data {
            *v *= scalar;
        }
    }

    /// Sets every element to zero (gradient reset between steps).
    pub fn zero_mut(&mut self) {
        self.data.fill(0.0);
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_mut(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two equally-shaped tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements. Returns 0 for empty tensors.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Squared L2 norm of the flattened tensor.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Squared L2 distance to another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn distance_sq(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.shape, other.shape,
            "distance shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum()
    }

    /// `true` when every element is finite (no NaN/inf) — used by tests and
    /// debug assertions around training loops.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Default for Tensor {
    /// A scalar-shaped zero tensor.
    fn default() -> Self {
        Tensor::zeros(vec![1])
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.len() <= 8 {
            write!(f, " {:?}", self.data)?;
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, …, {:.4}]",
                self.data[0],
                self.data[1],
                self.data[self.len() - 1]
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_len() {
        let t = Tensor::zeros(vec![2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn try_from_vec_rejects_mismatch() {
        let err = Tensor::try_from_vec(vec![2, 2], vec![1.0; 3]).unwrap_err();
        assert_eq!(
            err,
            TensorError::ShapeDataMismatch {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn from_vec_panics_on_mismatch() {
        let _ = Tensor::from_vec(vec![2, 2], vec![1.0; 3]);
    }

    #[test]
    fn dims2_views() {
        assert_eq!(Tensor::zeros(vec![5]).dims2(), (1, 5));
        assert_eq!(Tensor::zeros(vec![4, 7]).dims2(), (4, 7));
        assert_eq!(Tensor::zeros(vec![2, 3, 4]).dims2(), (2, 12));
    }

    #[test]
    fn resize_reuses_capacity_and_zeroes_growth() {
        let mut t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        t.resize(&[2, 2]);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.as_slice(), &[1., 2., 3., 4.]);
        let cap_ptr = t.as_slice().as_ptr();
        t.resize(&[2, 3]);
        assert_eq!(t.as_slice().as_ptr(), cap_ptr, "shrink/grow reallocated");
        assert_eq!(t.as_slice()[4..], [0.0, 0.0]);
    }

    #[test]
    fn assign_copies_shape_and_data() {
        let src = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]);
        let mut dst = Tensor::zeros(vec![7]);
        dst.assign(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).reshape(vec![3, 2]);
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at2(2, 1), 6.0);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_panics_on_count_mismatch() {
        let _ = Tensor::zeros(vec![2, 3]).reshape(vec![4, 2]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec(vec![2, 2], vec![10., 20., 30., 40.]);
        assert_eq!(a.add(&b).as_slice(), &[11., 22., 33., 44.]);
        assert_eq!(b.sub(&a).as_slice(), &[9., 18., 27., 36.]);
        assert_eq!(a.mul(&b).as_slice(), &[10., 40., 90., 160.]);
        assert_eq!(a.scale(2.0).as_slice(), &[2., 4., 6., 8.]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_vec(vec![3], vec![1., 1., 1.]);
        let b = Tensor::from_vec(vec![3], vec![2., 4., 6.]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[2., 3., 4.]);
    }

    #[test]
    fn select_rows_copies_rows() {
        let t = Tensor::from_vec(vec![3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let s = t.select_rows(&[2, 0]);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.as_slice(), &[5., 6., 1., 2.]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![4], vec![1., 2., 3., 4.]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.norm_sq(), 30.0);
    }

    #[test]
    fn distance_between_tensors() {
        let a = Tensor::from_vec(vec![2], vec![0., 0.]);
        let b = Tensor::from_vec(vec![2], vec![3., 4.]);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn display_is_nonempty() {
        let t = Tensor::zeros(vec![2, 2]);
        assert!(!format!("{t}").is_empty());
        let big = Tensor::zeros(vec![100]);
        assert!(format!("{big}").contains("…"));
    }

    #[test]
    fn finite_detection() {
        let mut t = Tensor::zeros(vec![2]);
        assert!(t.all_finite());
        t.as_mut_slice()[0] = f32::NAN;
        assert!(!t.all_finite());
    }
}
