//! Property-based equivalence suites for the blocked/parallel compute
//! engine: every optimized kernel must agree with the seed's naive
//! implementations (kept verbatim in `ops::reference` as the oracle)
//! within floating-point accumulation tolerance, across randomized
//! shapes that cover the small, tiled and remainder (odd rows / tail
//! columns) paths.

use goldfish_tensor::conv::{self, Conv2dSpec, ConvWorkspace};
use goldfish_tensor::{engine, ops, Tensor};
use proptest::prelude::*;

/// Absolute tolerance for kernels whose accumulation association differs
/// from the oracle only by FMA fusion / parallel-invariant grouping.
const TOL: f32 = 1e-4;

fn assert_close(got: &Tensor, want: &Tensor, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape");
    for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert!(
            (g - w).abs() < TOL,
            "{what}[{i}]: {g} vs {w} (|Δ| = {})",
            (g - w).abs()
        );
    }
}

fn matrix(r: usize, c: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-2.0f32..2.0, r * c)
        .prop_map(move |data| Tensor::from_vec(vec![r, c], data))
}

/// Shapes spanning both dispatch paths: up to 48³ ≈ 110k MACs crosses the
/// tiled threshold, and the odd dimensions exercise every remainder path.
fn gemm_shapes() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..48, 1usize..48, 1usize..48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_matches_reference((m, k, n) in gemm_shapes(), seed in 0u64..1_000_000) {
        let a = matrix(m, k).generate_with(seed);
        let b = matrix(k, n).generate_with(seed.wrapping_add(1));
        assert_close(&ops::matmul(&a, &b), &ops::reference::matmul(&a, &b), "matmul");
    }

    #[test]
    fn matmul_at_b_matches_reference((k, m, n) in gemm_shapes(), seed in 0u64..1_000_000) {
        let a = matrix(k, m).generate_with(seed);
        let b = matrix(k, n).generate_with(seed.wrapping_add(1));
        assert_close(
            &ops::matmul_at_b(&a, &b),
            &ops::reference::matmul_at_b(&a, &b),
            "matmul_at_b",
        );
    }

    #[test]
    fn matmul_a_bt_matches_reference((m, k, n) in gemm_shapes(), seed in 0u64..1_000_000) {
        let a = matrix(m, k).generate_with(seed);
        let b = matrix(n, k).generate_with(seed.wrapping_add(1));
        assert_close(
            &ops::matmul_a_bt(&a, &b),
            &ops::reference::matmul_a_bt(&a, &b),
            "matmul_a_bt",
        );
    }

    #[test]
    fn matmul_sparse_matches_dense_on_sparse_inputs(
        (m, k, n) in (1usize..20, 1usize..20, 1usize..20),
        seed in 0u64..1_000_000,
    ) {
        // Half the entries zeroed: the sparse entry point must still agree.
        let mut a = matrix(m, k).generate_with(seed);
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            if i % 2 == 0 {
                *v = 0.0;
            }
        }
        let b = matrix(k, n).generate_with(seed.wrapping_add(1));
        assert_close(&ops::matmul_sparse(&a, &b), &ops::matmul(&a, &b), "matmul_sparse");
    }

    #[test]
    fn conv_forward_matches_direct_convolution(
        (nimg, c, hw, f, kern, pad) in (1usize..4, 1usize..4, 3usize..9, 1usize..4, 1usize..4, 0usize..2),
        seed in 0u64..1_000_000,
    ) {
        let spec = Conv2dSpec::new(kern, kern, 1, pad);
        if hw + 2 * pad < kern {
            return;
        }
        let input = matrix(nimg, c * hw * hw)
            .generate_with(seed)
            .reshape(vec![nimg, c, hw, hw]);
        let weight = matrix(f, c * kern * kern)
            .generate_with(seed.wrapping_add(1))
            .reshape(vec![f, c, kern, kern]);
        let bias = matrix(1, f).generate_with(seed.wrapping_add(2)).reshape(vec![f]);
        let got = conv::conv2d_forward(&input, &weight, &bias, &spec);
        let want = direct_conv(&input, &weight, &bias, &spec);
        assert_close(&got, &want, "conv2d_forward");
    }

    #[test]
    fn conv_batch_equals_concat_of_single_images(
        (nimg, c, hw, f) in (2usize..6, 1usize..3, 4usize..10, 1usize..4),
        seed in 0u64..1_000_000,
    ) {
        // Batched (block-wise) lowering must reproduce image-at-a-time
        // results exactly: the per-sample GEMM columns are disjoint.
        let spec = Conv2dSpec::new(3, 3, 1, 1);
        let input = matrix(nimg, c * hw * hw)
            .generate_with(seed)
            .reshape(vec![nimg, c, hw, hw]);
        let weight = matrix(f, c * 9).generate_with(seed.wrapping_add(1)).reshape(vec![f, c, 3, 3]);
        let bias = matrix(1, f).generate_with(seed.wrapping_add(2)).reshape(vec![f]);
        let mut ws = ConvWorkspace::new();
        let batched = conv::conv2d_forward_ws(&input, &weight, &bias, &spec, &mut ws);
        let per = c * hw * hw;
        let iv = input.as_slice();
        let mut concat = Vec::with_capacity(batched.len());
        for s in 0..nimg {
            let img = Tensor::from_vec(vec![1, c, hw, hw], iv[s * per..(s + 1) * per].to_vec());
            let single = conv::conv2d_forward_ws(&img, &weight, &bias, &spec, &mut ws);
            concat.extend_from_slice(single.as_slice());
        }
        let concat = Tensor::from_vec(batched.shape().to_vec(), concat);
        assert_close(&batched, &concat, "conv batch vs singles");
    }
}

/// Direct (definition-following) 2-D convolution, the strongest oracle:
/// no im2col, no GEMM, just the six nested loops.
fn direct_conv(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &Conv2dSpec) -> Tensor {
    let (n, c, h, w) = input.dims4();
    let (f, _, kh, kw) = weight.dims4();
    let (oh, ow) = spec.output_hw(h, w);
    let iv = input.as_slice();
    let wv = weight.as_slice();
    let bv = bias.as_slice();
    let mut out = vec![0.0f32; n * f * oh * ow];
    for s in 0..n {
        for fi in 0..f {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bv[fi];
                    for ch in 0..c {
                        for ky in 0..kh {
                            for kx in 0..kw {
                                let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                                let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                                if iy < 0 || iy >= h as isize || ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let ivx = iv[((s * c + ch) * h + iy as usize) * w + ix as usize];
                                let wvx = wv[((fi * c + ch) * kh + ky) * kw + kx];
                                acc += ivx * wvx;
                            }
                        }
                    }
                    out[((s * f + fi) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    Tensor::from_vec(vec![n, f, oh, ow], out)
}

/// Engine slice API exercised directly at sizes pinned above both
/// dispatch thresholds (including the parallel one).
#[test]
fn engine_slice_api_agrees_with_reference_at_large_sizes() {
    for &(m, k, n) in &[(130usize, 131usize, 129usize), (160, 160, 160)] {
        let a: Vec<f32> = (0..m * k).map(|i| ((i % 23) as f32 - 11.0) * 0.1).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i % 19) as f32 - 9.0) * 0.1).collect();
        let ta = Tensor::from_vec(vec![m, k], a.clone());
        let tb = Tensor::from_vec(vec![k, n], b.clone());
        let want = ops::reference::matmul(&ta, &tb);
        let mut out = vec![0.0f32; m * n];
        engine::gemm(m, k, n, &a, &b, &mut out);
        for (g, w) in out.iter().zip(want.as_slice()) {
            assert!((g - w).abs() < 5.0 * TOL, "{g} vs {w}");
        }
    }
}

/// Helper so proptest strategies can be sampled with an explicit seed
/// inside test bodies (keeps matrices reproducible per case).
trait GenerateWith {
    type Out;
    fn generate_with(&self, seed: u64) -> Self::Out;
}

impl<S: Strategy> GenerateWith for S {
    type Out = S::Value;

    fn generate_with(&self, seed: u64) -> S::Value {
        let mut rng = goldfish_test_rng(seed);
        self.generate(&mut rng)
    }
}

fn goldfish_test_rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}
