//! Property-based tests for the tensor substrate.

use goldfish_tensor::{conv, ops, serialize, Tensor};
use proptest::prelude::*;

/// Strategy: a 2-D tensor with dims in [1, 8] and values in [-10, 10].
fn small_matrix() -> impl Strategy<Value = Tensor> {
    (1usize..8, 1usize..8).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Tensor::from_vec(vec![r, c], data))
    })
}

fn matrix_pair() -> impl Strategy<Value = (Tensor, Tensor)> {
    (1usize..6, 1usize..6, 1usize..6).prop_flat_map(|(m, k, n)| {
        let a = proptest::collection::vec(-5.0f32..5.0, m * k)
            .prop_map(move |d| Tensor::from_vec(vec![m, k], d));
        let b = proptest::collection::vec(-5.0f32..5.0, k * n)
            .prop_map(move |d| Tensor::from_vec(vec![k, n], d));
        (a, b)
    })
}

proptest! {
    #[test]
    fn softmax_is_simplex_at_any_temperature(t in small_matrix(), temp in 0.25f32..10.0) {
        let p = ops::softmax_t(&t, temp);
        let (rows, _) = p.dims2();
        for r in 0..rows {
            let row = p.row(r);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0 + 1e-5).contains(&v)));
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4, "row sum {s}");
        }
    }

    #[test]
    fn log_softmax_exp_matches_softmax(t in small_matrix(), temp in 0.5f32..6.0) {
        let p = ops::softmax_t(&t, temp);
        let lp = ops::log_softmax_t(&t, temp);
        for (a, b) in p.as_slice().iter().zip(lp.as_slice()) {
            prop_assert!((a - b.exp()).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_transpose_identity((a, b) in matrix_pair()) {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let left = ops::transpose(&ops::matmul(&a, &b));
        let right = ops::matmul(&ops::transpose(&b), &ops::transpose(&a));
        prop_assert_eq!(left.shape(), right.shape());
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_distributes_over_addition((a, b) in matrix_pair(), c_seed in 0u64..1000) {
        // A·(B + C) = A·B + A·C with C shaped like B.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(c_seed);
        let c = Tensor::from_vec(
            b.shape().to_vec(),
            (0..b.len()).map(|_| rng.gen_range(-5.0f32..5.0)).collect(),
        );
        let left = ops::matmul(&a, &b.add(&c));
        let right = ops::matmul(&a, &b).add(&ops::matmul(&a, &c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-2);
        }
    }

    #[test]
    fn transposed_matmuls_agree((a, b) in matrix_pair()) {
        // matmul_at_b(Aᵀ-stored, B) == matmul(A, B) when we pre-transpose.
        let at = ops::transpose(&a);
        let direct = ops::matmul(&a, &b);
        let via = ops::matmul_at_b(&at, &b);
        for (x, y) in direct.as_slice().iter().zip(via.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn serialization_roundtrips(t in small_matrix()) {
        let back = serialize::from_bytes(serialize::to_bytes(&t)).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn axpy_matches_scale_add(t in small_matrix(), alpha in -3.0f32..3.0) {
        let mut acc = t.clone();
        acc.axpy(alpha, &t);
        let expect = t.scale(1.0 + alpha);
        for (x, y) in acc.as_slice().iter().zip(expect.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn row_variance_nonnegative_and_bounded(t in small_matrix()) {
        let p = ops::softmax(&t);
        for v in ops::row_variance(&p) {
            prop_assert!(v >= 0.0);
            prop_assert!(v <= 0.25 + 1e-6); // prob vectors: max var when mass splits 1/0
        }
    }

    #[test]
    fn maxpool_never_invents_values(
        data in proptest::collection::vec(-5.0f32..5.0, 16),
    ) {
        let input = Tensor::from_vec(vec![1, 1, 4, 4], data.clone());
        let spec = conv::Conv2dSpec::new(2, 2, 2, 0);
        let (out, _) = conv::maxpool2d_forward(&input, &spec);
        for &v in out.as_slice() {
            prop_assert!(data.contains(&v));
        }
    }

    #[test]
    fn global_avg_pool_preserves_total_mean(
        data in proptest::collection::vec(-5.0f32..5.0, 2 * 2 * 3 * 3),
    ) {
        let input = Tensor::from_vec(vec![2, 2, 3, 3], data);
        let pooled = conv::global_avg_pool(&input);
        prop_assert!((pooled.mean() - input.mean()).abs() < 1e-4);
    }
}
