//! Property-based tests for the tensor substrate.

use goldfish_tensor::{conv, ops, serialize, Tensor};
use proptest::prelude::*;

/// Strategy: a 2-D tensor with dims in [1, 8] and values in [-10, 10].
fn small_matrix() -> impl Strategy<Value = Tensor> {
    (1usize..8, 1usize..8).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Tensor::from_vec(vec![r, c], data))
    })
}

fn matrix_pair() -> impl Strategy<Value = (Tensor, Tensor)> {
    (1usize..6, 1usize..6, 1usize..6).prop_flat_map(|(m, k, n)| {
        let a = proptest::collection::vec(-5.0f32..5.0, m * k)
            .prop_map(move |d| Tensor::from_vec(vec![m, k], d));
        let b = proptest::collection::vec(-5.0f32..5.0, k * n)
            .prop_map(move |d| Tensor::from_vec(vec![k, n], d));
        (a, b)
    })
}

proptest! {
    #[test]
    fn softmax_is_simplex_at_any_temperature(t in small_matrix(), temp in 0.25f32..10.0) {
        let p = ops::softmax_t(&t, temp);
        let (rows, _) = p.dims2();
        for r in 0..rows {
            let row = p.row(r);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0 + 1e-5).contains(&v)));
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4, "row sum {s}");
        }
    }

    #[test]
    fn log_softmax_exp_matches_softmax(t in small_matrix(), temp in 0.5f32..6.0) {
        let p = ops::softmax_t(&t, temp);
        let lp = ops::log_softmax_t(&t, temp);
        for (a, b) in p.as_slice().iter().zip(lp.as_slice()) {
            prop_assert!((a - b.exp()).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_transpose_identity((a, b) in matrix_pair()) {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let left = ops::transpose(&ops::matmul(&a, &b));
        let right = ops::matmul(&ops::transpose(&b), &ops::transpose(&a));
        prop_assert_eq!(left.shape(), right.shape());
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_distributes_over_addition((a, b) in matrix_pair(), c_seed in 0u64..1000) {
        // A·(B + C) = A·B + A·C with C shaped like B.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(c_seed);
        let c = Tensor::from_vec(
            b.shape().to_vec(),
            (0..b.len()).map(|_| rng.gen_range(-5.0f32..5.0)).collect(),
        );
        let left = ops::matmul(&a, &b.add(&c));
        let right = ops::matmul(&a, &b).add(&ops::matmul(&a, &c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-2);
        }
    }

    #[test]
    fn transposed_matmuls_agree((a, b) in matrix_pair()) {
        // matmul_at_b(Aᵀ-stored, B) == matmul(A, B) when we pre-transpose.
        let at = ops::transpose(&a);
        let direct = ops::matmul(&a, &b);
        let via = ops::matmul_at_b(&at, &b);
        for (x, y) in direct.as_slice().iter().zip(via.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn serialization_roundtrips(t in small_matrix()) {
        let back = serialize::from_bytes(serialize::to_bytes(&t)).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn params_serialization_is_bit_exact(p in proptest::collection::vec(-1e6f32..1e6, 0..1600)) {
        // Straddles the 1024-float bulk staging batch.
        let back = serialize::params_from_bytes(serialize::params_to_bytes(&p)).unwrap();
        prop_assert_eq!(back.len(), p.len());
        for (a, b) in back.iter().zip(p.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn params_into_variants_match_allocating_forms_bitwise(
        p in proptest::collection::vec(-1e6f32..1e6, 0..1600),
        prefix in 0usize..5,
    ) {
        // Encode: the append-into form must produce byte-for-byte the
        // allocating encoder's payload, wherever it lands in the buffer.
        let allocating = serialize::params_to_bytes(&p);
        let mut buf = vec![0x5Au8; prefix];
        serialize::params_write_into(&mut buf, &p);
        prop_assert_eq!(&buf[prefix..], allocating.as_ref());

        // Decode: the into-slice form must reproduce the allocating
        // decoder bit for bit, and report the exact bytes consumed.
        let mut out = vec![0.0f32; p.len()];
        let used = serialize::params_read_into(allocating.as_ref(), &mut out).unwrap();
        prop_assert_eq!(used, allocating.as_ref().len());
        for (a, b) in out.iter().zip(p.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        // And the resizing-Vec form, through a dirty reused buffer.
        let mut reused = vec![7.0f32; 9];
        serialize::params_read_into_vec(allocating.as_ref(), &mut reused).unwrap();
        prop_assert_eq!(reused.len(), p.len());
        for (a, b) in reused.iter().zip(p.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn params_read_into_rejects_wrong_target_length(
        p in proptest::collection::vec(-10.0f32..10.0, 1..64),
        delta in 1usize..8,
    ) {
        let wire = serialize::params_to_bytes(&p);
        let mut wrong = vec![0.0f32; p.len() + delta];
        prop_assert!(serialize::params_read_into(wire.as_ref(), &mut wrong).is_err());
    }

    #[test]
    fn truncated_tensor_bytes_error_typed(t in small_matrix(), frac in 0.0f64..1.0) {
        let full = serialize::to_bytes(&t);
        let n = full.as_ref().len();
        let cut = ((n as f64) * frac) as usize;
        if cut < n {
            let r = serialize::from_bytes(full.slice(0..cut));
            prop_assert!(
                matches!(r, Err(goldfish_tensor::TensorError::MalformedBytes(_))),
                "cut at {} gave {:?}", cut, r
            );
        }
    }

    #[test]
    fn truncated_param_bytes_error_typed(
        p in proptest::collection::vec(-10.0f32..10.0, 1..64),
        frac in 0.0f64..1.0,
    ) {
        let full = serialize::params_to_bytes(&p);
        let n = full.as_ref().len();
        let cut = ((n as f64) * frac) as usize;
        if cut < n {
            let r = serialize::params_from_bytes(full.slice(0..cut));
            prop_assert!(
                matches!(r, Err(goldfish_tensor::TensorError::MalformedBytes(_))),
                "cut at {} gave {:?}", cut, r
            );
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocating(
        p in proptest::collection::vec(-10.0f32..10.0, 0..32),
        claim in 1_000_000u64..u64::MAX,
    ) {
        // Overwrite the u64 count header with a hostile claim; the
        // decoder must reject it from the remaining-length check instead
        // of allocating `claim` floats.
        let mut raw: Vec<u8> = serialize::params_to_bytes(&p).as_ref().to_vec();
        raw[0..8].copy_from_slice(&claim.to_le_bytes());
        let r = serialize::params_from_bytes(bytes::Bytes::from(raw));
        prop_assert!(matches!(
            r,
            Err(goldfish_tensor::TensorError::MalformedBytes(_))
        ));
    }

    #[test]
    fn garbage_bytes_never_panic_the_decoders(
        raw in proptest::collection::vec(0u8..255, 0..128),
    ) {
        let _ = serialize::from_bytes(bytes::Bytes::from(raw.clone()));
        let _ = serialize::params_from_bytes(bytes::Bytes::from(raw));
    }

    #[test]
    fn axpy_matches_scale_add(t in small_matrix(), alpha in -3.0f32..3.0) {
        let mut acc = t.clone();
        acc.axpy(alpha, &t);
        let expect = t.scale(1.0 + alpha);
        for (x, y) in acc.as_slice().iter().zip(expect.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn row_variance_nonnegative_and_bounded(t in small_matrix()) {
        let p = ops::softmax(&t);
        for v in ops::row_variance(&p) {
            prop_assert!(v >= 0.0);
            prop_assert!(v <= 0.25 + 1e-6); // prob vectors: max var when mass splits 1/0
        }
    }

    #[test]
    fn maxpool_never_invents_values(
        data in proptest::collection::vec(-5.0f32..5.0, 16),
    ) {
        let input = Tensor::from_vec(vec![1, 1, 4, 4], data.clone());
        let spec = conv::Conv2dSpec::new(2, 2, 2, 0);
        let (out, _) = conv::maxpool2d_forward(&input, &spec);
        for &v in out.as_slice() {
            prop_assert!(data.contains(&v));
        }
    }

    #[test]
    fn global_avg_pool_preserves_total_mean(
        data in proptest::collection::vec(-5.0f32..5.0, 2 * 2 * 3 * 3),
    ) {
        let input = Tensor::from_vec(vec![2, 2, 3, 3], data);
        let pooled = conv::global_avg_pool(&input);
        prop_assert!((pooled.mean() - input.mean()).abs() < 1e-4);
    }
}
