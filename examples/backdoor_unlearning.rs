//! Compares all unlearning methods on the same deletion request: the
//! original model, Goldfish (ours), B1 (retrain from scratch), B2 (rapid
//! retraining) and B3 (incompetent teacher) — reporting accuracy, backdoor
//! success and wall-clock.
//!
//! ```bash
//! cargo run --release --example backdoor_unlearning
//! ```

use std::sync::Arc;
use std::time::Instant;

use goldfish::core::baselines::{
    IncompetentTeacher, OriginalModel, RapidRetrain, RetrainFromScratch,
};
use goldfish::core::basic_model::GoldfishLocalConfig;
use goldfish::core::method::{ClientSplit, UnlearnSetup, UnlearningMethod};
use goldfish::core::unlearner::GoldfishUnlearning;
use goldfish::data::backdoor::BackdoorSpec;
use goldfish::data::partition;
use goldfish::data::synthetic::{self, SyntheticSpec};
use goldfish::fed::aggregate::FedAvg;
use goldfish::fed::federation::Federation;
use goldfish::fed::trainer::TrainConfig;
use goldfish::fed::ModelFactory;
use goldfish::nn::zoo;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let spec = SyntheticSpec::mnist().with_size(16, 16).with_shift(2);
    let (train, test) = synthetic::generate(&spec, 1500, 400, 11);
    let mut rng = StdRng::seed_from_u64(3);
    let parts = partition::iid(train.len(), 5, &mut rng);
    let mut clients: Vec<_> = parts.iter().map(|p| train.subset(p)).collect();

    let backdoor = BackdoorSpec::new(0).with_patch(6);
    let poisoned: Vec<usize> = (0..30).collect();
    backdoor.poison(&mut clients[0], &poisoned);

    let factory: ModelFactory = Arc::new(|seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        zoo::mlp(256, &[64], 10, &mut rng)
    });
    let train_cfg = TrainConfig {
        local_epochs: 2,
        batch_size: 25,
        lr: 0.05,
        momentum: 0.9,
    };
    let mut federation = Federation::builder(Arc::clone(&factory), test.clone())
        .train_config(train_cfg)
        .clients(clients.iter().cloned())
        .build();
    federation.train_rounds(12, &FedAvg, 7);
    let original_global = federation.global_state().to_vec();

    let mut splits: Vec<ClientSplit> = Vec::new();
    for (i, data) in clients.into_iter().enumerate() {
        if i == 0 {
            splits.push(ClientSplit::with_removed(&data, &poisoned));
        } else {
            splits.push(ClientSplit::intact(data));
        }
    }
    let setup = UnlearnSetup {
        factory: Arc::clone(&factory),
        clients: splits,
        test: test.clone(),
        original_global,
        rounds: 4,
        train: train_cfg,
    };

    let goldfish_method = GoldfishUnlearning::default().with_local(GoldfishLocalConfig {
        epochs: 2,
        batch_size: 25,
        lr: 0.05,
        momentum: 0.9,
        ..GoldfishLocalConfig::default()
    });
    let b2 = RapidRetrain::default();
    let b3 = IncompetentTeacher::default();
    let methods: Vec<(&str, &dyn UnlearningMethod)> = vec![
        ("origin", &OriginalModel),
        ("goldfish (ours)", &goldfish_method),
        ("b1 retrain", &RetrainFromScratch),
        ("b2 rapid", &b2),
        ("b3 incompetent", &b3),
    ];

    println!(
        "{:<16} {:>9} {:>10} {:>8}",
        "method", "accuracy", "backdoor", "secs"
    );
    for (label, method) in methods {
        let t0 = Instant::now();
        let out = method.unlearn(&setup, 5);
        let secs = t0.elapsed().as_secs_f64();
        let mut net =
            goldfish::core::basic_model::network_from_state(&setup.factory, &out.global_state, 0);
        let acc = goldfish::fed::eval::accuracy(&mut net, &test);
        let asr = goldfish::fed::eval::attack_success_rate(&mut net, &test, &backdoor);
        println!("{label:<16} {acc:>9.3} {asr:>10.3} {secs:>8.1}");
    }
}
