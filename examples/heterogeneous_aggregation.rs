//! The extension module's adaptive-weight aggregation vs FedAvg when
//! client datasets are wildly uneven (the Fig 8 scenario).
//!
//! ```bash
//! cargo run --release --example heterogeneous_aggregation
//! ```

use std::sync::Arc;

use goldfish::core::extension::AdaptiveWeightAggregation;
use goldfish::data::partition;
use goldfish::data::synthetic::{self, SyntheticSpec};
use goldfish::fed::aggregate::{AggregationStrategy, FedAvg};
use goldfish::fed::federation::Federation;
use goldfish::fed::trainer::TrainConfig;
use goldfish::fed::ModelFactory;
use goldfish::nn::zoo;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let spec = SyntheticSpec::mnist().with_size(14, 14).with_shift(1);
    let (train, test) = synthetic::generate(&spec, 1500, 400, 5);
    let mut rng = StdRng::seed_from_u64(9);
    // Heavily uneven split: some clients get a few samples, some hundreds.
    let parts = partition::uneven(train.len(), 8, 0.02, &mut rng);
    println!(
        "client sizes: {:?} (variance {:.1})",
        parts.iter().map(|p| p.len()).collect::<Vec<_>>(),
        partition::size_variance(&parts)
    );

    let factory: ModelFactory = Arc::new(|seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        zoo::mlp(196, &[48], 10, &mut rng)
    });
    let run = |strategy: &dyn AggregationStrategy| -> Vec<f64> {
        let mut fed = Federation::builder(factory.clone(), test.clone())
            .train_config(TrainConfig {
                local_epochs: 2,
                batch_size: 25,
                lr: 0.05,
                momentum: 0.9,
            })
            .clients(parts.iter().map(|p| train.subset(p)))
            .init_seed(1)
            .build();
        fed.train_rounds(6, strategy, 2)
            .rounds
            .iter()
            .map(|r| r.global_accuracy)
            .collect()
    };

    let fedavg = run(&FedAvg);
    let adaptive = run(&AdaptiveWeightAggregation);
    println!("{:<7} {:>10} {:>10}", "round", "fedavg", "adaptive");
    for (i, (f, a)) in fedavg.iter().zip(adaptive.iter()).enumerate() {
        println!("{:<7} {f:>10.3} {a:>10.3}", i + 1);
    }
}
