//! The networked federation layer in one file: a coordinator over real
//! localhost TCP (two in-process worker threads), one federated round,
//! one Goldfish unlearning request — and a bitwise check against the
//! in-process loopback transport.
//!
//! ```bash
//! cargo run --release --example networked_round
//! ```

use goldfish::core::basic_model::GoldfishLocalConfig;
use goldfish::core::GoldfishUnlearning;
use goldfish::serve::coordinator::{Coordinator, CoordinatorConfig};
use goldfish::serve::demo::DemoSpec;
use goldfish::serve::queue::UnlearnRequest;
use goldfish::serve::tcp::{bind, TcpConfig, TcpTransport};
use goldfish::serve::transport::{LoopbackTransport, ServeTransport};
use goldfish::serve::wire::FrameLimits;
use goldfish::serve::worker::{run_worker, WorkerRuntime};

fn config(spec: &DemoSpec) -> CoordinatorConfig {
    CoordinatorConfig {
        train: spec.train_config(),
        method: GoldfishUnlearning::default().with_local(GoldfishLocalConfig {
            epochs: 1,
            batch_size: 20,
            lr: 0.05,
            momentum: 0.9,
            ..GoldfishLocalConfig::default()
        }),
        unlearn_rounds: 1,
        init_seed: 1,
        threads: None,
        ..CoordinatorConfig::default()
    }
}

fn run<T: ServeTransport>(mut c: Coordinator<T>, seed: u64) -> Vec<f32> {
    c.submit_unlearn(UnlearnRequest::new(0, (0..10).collect()))
        .expect("valid request");
    let summary = c.run(2, seed).expect("schedule");
    for r in &summary.rounds {
        println!("  round {}: accuracy {:.4}", r.round, r.global_accuracy);
    }
    for u in &summary.unlearns {
        println!(
            "  unlearned {} request(s): post-unlearn accuracy {:.4}",
            u.requests.len(),
            u.round_accuracies.last().copied().unwrap_or(0.0)
        );
    }
    let stats = c.transport().wire_stats();
    println!(
        "  wire: {} B sent, {} B received",
        stats.bytes_sent, stats.bytes_received
    );
    c.global_state().to_vec()
}

fn main() {
    let spec = DemoSpec {
        clients: 2,
        samples_per_client: 100,
        test_samples: 50,
        seed: 7,
    };

    println!("loopback (in-process):");
    let loopback = Coordinator::new(
        spec.factory(),
        spec.test_set(),
        LoopbackTransport::new(spec.factory(), spec.client_shards(), None),
        config(&spec),
    );
    let loopback_global = run(loopback, spec.seed);

    println!("tcp (localhost sockets, one thread per worker):");
    let (listener, addr) = bind("127.0.0.1:0").expect("bind");
    let workers: Vec<_> = (0..spec.clients)
        .map(|id| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut rt = WorkerRuntime::new(id, spec.factory(), spec.client_shard(id));
                let _ = run_worker(&addr, &mut rt, &FrameLimits::default());
            })
        })
        .collect();
    let state_len = (spec.factory())(0).state_len();
    let transport = TcpTransport::accept(&listener, spec.clients, state_len, TcpConfig::default())
        .expect("handshake");
    let tcp = Coordinator::new(spec.factory(), spec.test_set(), transport, config(&spec));
    let tcp_global = run(tcp, spec.seed);
    for w in workers {
        w.join().expect("worker");
    }

    assert_eq!(loopback_global, tcp_global, "transports must agree bitwise");
    println!("TCP global state == loopback global state, bitwise ✓");
}
