//! Quickstart: federated training, a deletion request, and Goldfish
//! unlearning — end to end in under a minute on a laptop.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use goldfish::core::basic_model::GoldfishLocalConfig;
use goldfish::core::method::{ClientSplit, UnlearnSetup, UnlearningMethod};
use goldfish::core::unlearner::GoldfishUnlearning;
use goldfish::data::backdoor::BackdoorSpec;
use goldfish::data::partition;
use goldfish::data::synthetic::{self, SyntheticSpec};
use goldfish::fed::aggregate::FedAvg;
use goldfish::fed::federation::Federation;
use goldfish::fed::trainer::TrainConfig;
use goldfish::fed::ModelFactory;
use goldfish::nn::zoo;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // 1. A small MNIST-like dataset split across 4 clients.
    let spec = SyntheticSpec::mnist().with_size(14, 14).with_shift(1);
    let (train, test) = synthetic::generate(&spec, 1200, 300, 42);
    let mut rng = StdRng::seed_from_u64(0);
    let parts = partition::iid(train.len(), 4, &mut rng);
    let mut clients: Vec<_> = parts.iter().map(|p| train.subset(p)).collect();

    // 2. Client 0 holds backdoored data (the data it later wants deleted).
    let backdoor = BackdoorSpec::new(0).with_patch(5);
    let poisoned: Vec<usize> = (0..30).collect();
    backdoor.poison(&mut clients[0], &poisoned);

    // 3. Federated pretraining with FedAvg — the "original" global model.
    let factory: ModelFactory = Arc::new(|seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        zoo::mlp(14 * 14, &[64], 10, &mut rng)
    });
    let train_cfg = TrainConfig {
        local_epochs: 2,
        batch_size: 25,
        lr: 0.05,
        momentum: 0.9,
    };
    let mut federation = Federation::builder(Arc::clone(&factory), test.clone())
        .train_config(train_cfg)
        .clients(clients.iter().cloned())
        .build();
    federation.train_rounds(10, &FedAvg, 7);

    let mut original = federation.global_network();
    let acc = goldfish::fed::eval::accuracy(&mut original, &test);
    let asr = goldfish::fed::eval::attack_success_rate(&mut original, &test, &backdoor);
    println!("original model:  accuracy {acc:.3}, backdoor success {asr:.3}");

    // 4. The deletion request: client 0 removes its poisoned samples.
    let mut splits: Vec<ClientSplit> = Vec::new();
    for (i, data) in clients.into_iter().enumerate() {
        if i == 0 {
            splits.push(ClientSplit::with_removed(&data, &poisoned));
        } else {
            splits.push(ClientSplit::intact(data));
        }
    }
    let setup = UnlearnSetup {
        factory,
        clients: splits,
        test: test.clone(),
        original_global: original.state_vector(),
        rounds: 3,
        train: train_cfg,
    };

    // 5. Goldfish unlearning (distillation retraining, adaptive weights).
    let method = GoldfishUnlearning::default().with_local(GoldfishLocalConfig {
        epochs: 2,
        batch_size: 25,
        lr: 0.05,
        momentum: 0.9,
        ..GoldfishLocalConfig::default()
    });
    let outcome = method.unlearn(&setup, 1);

    let mut unlearned =
        goldfish::core::basic_model::network_from_state(&setup.factory, &outcome.global_state, 0);
    let acc = goldfish::fed::eval::accuracy(&mut unlearned, &test);
    let asr = goldfish::fed::eval::attack_success_rate(&mut unlearned, &test, &backdoor);
    println!("unlearned model: accuracy {acc:.3}, backdoor success {asr:.3}");
    println!("round accuracies: {:?}", outcome.round_accuracies);
}
