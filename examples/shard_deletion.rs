//! Data sharding (the optimization module, Fig 2/3): train a sharded local
//! model, delete samples from one shard, and watch only that shard retrain
//! while the rest keep their knowledge — then verify the Eq 8–10
//! checkpoint arithmetic on the live model states.
//!
//! ```bash
//! cargo run --release --example shard_deletion
//! ```

use std::sync::Arc;

use goldfish::core::optimization::ShardedClient;
use goldfish::data::synthetic::{self, SyntheticSpec};
use goldfish::fed::trainer::TrainConfig;
use goldfish::fed::ModelFactory;
use goldfish::nn::zoo;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let spec = SyntheticSpec::mnist().with_size(14, 14).with_shift(1);
    let (train, test) = synthetic::generate(&spec, 900, 300, 21);
    let factory: ModelFactory = Arc::new(|seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        zoo::mlp(196, &[48], 10, &mut rng)
    });
    let cfg = TrainConfig {
        local_epochs: 2,
        batch_size: 25,
        lr: 0.05,
        momentum: 0.9,
    };

    let tau = 6;
    let mut client = ShardedClient::new(&train, tau, factory.clone(), cfg, 0);
    let acc_of = |client: &ShardedClient| {
        let mut net = (factory)(0);
        net.set_state_vector(&client.local_state());
        let mut net = net;
        goldfish::fed::eval::accuracy(&mut net, &test)
    };

    for round in 0..4 {
        client.train_round(round);
        println!("round {}: accuracy {:.3}", round + 1, acc_of(&client));
    }

    // Eq 8/9/10 sanity on the live state: recovering shard i from the
    // aggregate reproduces the stored shard weights.
    let model = client.model().clone();
    let aggregate = model.aggregate();
    let recovered = model.recover_shard_weights(2, &aggregate);
    let max_err = recovered
        .iter()
        .zip(model.shard_state(2))
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("Eq 10 recovery max error on live weights: {max_err:.2e}");

    // Delete 40 samples that all live in shard 1 (indices ≡ 1 mod τ).
    let doomed: Vec<usize> = (0..40).map(|k| 1 + tau * k).collect();
    let impact = client.delete_samples(&doomed, 99);
    println!(
        "deletion touched shards: partial {:?}, emptied {:?}",
        impact.partial, impact.emptied
    );
    println!(
        "after deletion + shard retrain: accuracy {:.3}",
        acc_of(&client)
    );

    client.train_round(10);
    println!(
        "one more round:                accuracy {:.3}",
        acc_of(&client)
    );
}
