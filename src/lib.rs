//! **Goldfish** — an efficient federated unlearning framework.
//!
//! This is the facade crate of the reproduction of Wang, Zhu, Chen &
//! Esteves-Veríssimo, *"Goldfish: An Efficient Federated Unlearning
//! Framework"* (DSN 2024). It re-exports the full stack:
//!
//! * [`tensor`] — the f32 ND tensor substrate (matmul, conv2d,
//!   temperature softmax),
//! * [`nn`] — layers, backprop, optimizers, losses and the paper's model
//!   zoo (LeNet-5, modified LeNet-5, ResNet-mini),
//! * [`data`] — synthetic dataset analogues, backdoor poisoning,
//!   federated partitioning and sharding,
//! * [`metrics`] — accuracy, backdoor ASR, JSD/L2 divergence, Welch
//!   t-test,
//! * [`fed`] — the federated-learning simulator (clients, server,
//!   FedAvg),
//! * [`core`] — the Goldfish framework itself: the four modules (basic
//!   model, loss, optimization, extension), Algorithm 1, and the paper's
//!   baselines B1/B2/B3,
//! * [`serve`] — the networked federation layer: wire protocol,
//!   TCP/loopback transports, the coordinator with its unlearning
//!   request queue, and the `goldfish-coordinator`/`goldfish-worker`
//!   daemons (DESIGN.md §10),
//! * [`telemetry`] — the zero-allocation observability layer: metrics
//!   registry, structured event tracing, deterministic clocks and the
//!   daemons' leveled logger (DESIGN.md §15).
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for a complete federated unlearning run:
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! The experiment harness regenerating every table and figure of the paper
//! lives in `crates/bench` (one binary per table/figure). `DESIGN.md`
//! documents the crate layout, the blocked/parallel compute engine and
//! the `BENCH_kernels.json` perf baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use goldfish_core as core;
pub use goldfish_data as data;
pub use goldfish_fed as fed;
pub use goldfish_metrics as metrics;
pub use goldfish_nn as nn;
pub use goldfish_serve as serve;
pub use goldfish_telemetry as telemetry;
pub use goldfish_tensor as tensor;

/// Version of the reproduction.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        let t = crate::tensor::Tensor::zeros(vec![2, 2]);
        assert_eq!(t.len(), 4);
        assert!(!crate::VERSION.is_empty());
    }
}
