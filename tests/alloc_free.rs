//! Pins the "zero per-step heap allocations after warm-up" guarantee of
//! the training runtime on the dense path, using a counting global
//! allocator. Kept in its own integration-test binary so no concurrent
//! test can allocate while the counter is armed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use std::sync::Mutex;

use goldfish::core::basic_model::{clip_grad_norm, TeacherCache};
use goldfish::core::loss::{GoldfishBatch, GoldfishLoss, GoldfishLossBufs, LossWeights};
use goldfish::data::synthetic::{self, SyntheticSpec};
use goldfish::data::BatchGather;
use goldfish::nn::loss::{CrossEntropy, HardLoss};
use goldfish::nn::optim::FusedSgd;
use goldfish::nn::zoo;
use goldfish::tensor::Tensor;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

/// The two tests below share one global allocation counter; this lock
/// keeps them from allocating into each other's armed window.
static SERIAL: Mutex<()> = Mutex::new(());

/// Counts allocations (and growth reallocations) while armed.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn distillation_step_is_allocation_free_after_warm_up() {
    // The Goldfish unlearning step on the dense path: teacher logits
    // from the cache (bulk row gather for full batches, fallback
    // forward through the teacher's inference workspace for the short
    // tail), student forward through its arenas, the fused composite
    // loss (remaining + forget parts) into reused buffers, the
    // allocation-free gradient clip and the fused optimizer.
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let spec = SyntheticSpec::mnist().with_size(8, 8).with_shift(1);
    let (train, _) = synthetic::generate(&spec, 76, 10, 9);
    let remaining = train.subset(&(12..76).collect::<Vec<usize>>()); // 64 rows
    let forget = train.subset(&(0..12).collect::<Vec<usize>>());
    let mut rng = StdRng::seed_from_u64(1);
    let mut student = zoo::mlp(64, &[32], 10, &mut rng);
    let teacher = zoo::mlp(64, &[32], 10, &mut rng);

    let loss = GoldfishLoss::new(Arc::new(CrossEntropy), LossWeights::default());
    let mut cache = TeacherCache::build(teacher, &remaining, 20);
    let mut opt = FusedSgd::new(0.05, 0.9);
    let mut gather_r = BatchGather::new();
    let mut gather_f = BatchGather::new();
    let mut grad = Tensor::zeros(vec![1]);
    let mut bufs = GoldfishLossBufs::new();
    // 64 remaining rows at B = 20 → 20, 20, 20 and a short tail of 4
    // (exercising the cache's fallback forward); 12 forget rows spread
    // as slices of 3.
    let rem_batches: Vec<Vec<usize>> = (0..3).map(|b| (b * 20..(b + 1) * 20).collect()).collect();
    let tail: Vec<usize> = (60..64).collect();
    let fg_batches: Vec<Vec<usize>> = (0..4).map(|b| (b * 3..(b + 1) * 3).collect()).collect();

    let mut step = |gather_r: &mut BatchGather,
                    gather_f: &mut BatchGather,
                    grad: &mut Tensor,
                    bufs: &mut GoldfishLossBufs,
                    cache: &mut TeacherCache,
                    chunk: &[usize],
                    fchunk: &[usize]| {
        student.zero_grad();
        gather_r.gather(&remaining, chunk);
        {
            let teacher_logits = cache.logits_for(gather_r.features(), chunk);
            let student_logits = student.forward_ws(gather_r.features(), true);
            loss.loss_and_grad_into(
                GoldfishBatch::Remaining {
                    student_logits,
                    teacher_logits: Some(teacher_logits),
                    labels: gather_r.labels(),
                },
                grad,
                bufs,
            );
        }
        student.backward_train(grad);
        gather_f.gather(&forget, fchunk);
        {
            let student_logits = student.forward_ws(gather_f.features(), true);
            loss.loss_and_grad_into(
                GoldfishBatch::Forget {
                    student_logits,
                    labels: gather_f.labels(),
                    hard_scale: 0.1875,
                },
                grad,
                bufs,
            );
        }
        student.backward_train(grad);
        clip_grad_norm(&mut student, 5.0);
        opt.step(&mut student);
    };

    // Warm-up: size every arena, loss buffer, cache gather buffer and
    // the teacher's fallback workspace, full and short geometry.
    for (chunk, fchunk) in rem_batches.iter().zip(fg_batches.iter()) {
        step(
            &mut gather_r,
            &mut gather_f,
            &mut grad,
            &mut bufs,
            &mut cache,
            chunk,
            fchunk,
        );
    }
    step(
        &mut gather_r,
        &mut gather_f,
        &mut grad,
        &mut bufs,
        &mut cache,
        &tail,
        &fg_batches[3][..2],
    );

    // Armed: full batches, the short tail and short forget slices must
    // not touch the allocator.
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for _ in 0..3 {
        for (chunk, fchunk) in rem_batches.iter().zip(fg_batches.iter()) {
            step(
                &mut gather_r,
                &mut gather_f,
                &mut grad,
                &mut bufs,
                &mut cache,
                chunk,
                fchunk,
            );
        }
        step(
            &mut gather_r,
            &mut gather_f,
            &mut grad,
            &mut bufs,
            &mut cache,
            &tail,
            &fg_batches[2][..2],
        );
    }
    ARMED.store(false, Ordering::SeqCst);
    let n = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(n, 0, "distillation steps performed {n} heap allocations");
}

#[test]
fn dense_training_step_is_allocation_free_after_warm_up() {
    // The paper-shaped MLP round workload at its reduced scale: 64
    // synthetic-MNIST features, one hidden layer, B = 20.
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let spec = SyntheticSpec::mnist().with_size(8, 8).with_shift(1);
    let (train, _) = synthetic::generate(&spec, 60, 10, 9);
    let mut rng = StdRng::seed_from_u64(1);
    let mut net = zoo::mlp(64, &[32], 10, &mut rng);
    let mut opt = FusedSgd::new(0.05, 0.9);
    let mut gather = BatchGather::new();
    let mut grad = Tensor::zeros(vec![1]);
    let batches: Vec<Vec<usize>> = (0..3).map(|b| (b * 20..(b + 1) * 20).collect()).collect();

    let mut step = |gather: &mut BatchGather, grad: &mut Tensor, chunk: &[usize]| {
        gather.gather(&train, chunk);
        {
            let logits = net.forward_ws(gather.features(), true);
            CrossEntropy.loss_and_grad_into(logits, gather.labels(), grad);
        }
        net.zero_grad();
        net.backward_train(grad);
        opt.step(&mut net);
    };

    // Warm-up: size every arena, scratch buffer and thread-local pack
    // buffer, including the short-batch geometry.
    for chunk in &batches {
        step(&mut gather, &mut grad, chunk);
    }
    step(&mut gather, &mut grad, &batches[0][..7]);

    // Armed: full and short batches must not touch the allocator.
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for _ in 0..3 {
        for chunk in &batches {
            step(&mut gather, &mut grad, chunk);
        }
        step(&mut gather, &mut grad, &batches[1][..7]);
    }
    ARMED.store(false, Ordering::SeqCst);
    let n = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(n, 0, "training steps performed {n} heap allocations");
}
