//! Pins the "zero per-step heap allocations after warm-up" guarantee of
//! the training runtime on the dense path, using a counting global
//! allocator. Kept in its own integration-test binary so no concurrent
//! test can allocate while the counter is armed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use goldfish::data::synthetic::{self, SyntheticSpec};
use goldfish::data::BatchGather;
use goldfish::nn::loss::{CrossEntropy, HardLoss};
use goldfish::nn::optim::FusedSgd;
use goldfish::nn::zoo;
use goldfish::tensor::Tensor;
use rand::{rngs::StdRng, SeedableRng};

/// Counts allocations (and growth reallocations) while armed.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn dense_training_step_is_allocation_free_after_warm_up() {
    // The paper-shaped MLP round workload at its reduced scale: 64
    // synthetic-MNIST features, one hidden layer, B = 20.
    let spec = SyntheticSpec::mnist().with_size(8, 8).with_shift(1);
    let (train, _) = synthetic::generate(&spec, 60, 10, 9);
    let mut rng = StdRng::seed_from_u64(1);
    let mut net = zoo::mlp(64, &[32], 10, &mut rng);
    let mut opt = FusedSgd::new(0.05, 0.9);
    let mut gather = BatchGather::new();
    let mut grad = Tensor::zeros(vec![1]);
    let batches: Vec<Vec<usize>> = (0..3).map(|b| (b * 20..(b + 1) * 20).collect()).collect();

    let mut step = |gather: &mut BatchGather, grad: &mut Tensor, chunk: &[usize]| {
        gather.gather(&train, chunk);
        {
            let logits = net.forward_ws(gather.features(), true);
            CrossEntropy.loss_and_grad_into(logits, gather.labels(), grad);
        }
        net.zero_grad();
        net.backward_train(grad);
        opt.step(&mut net);
    };

    // Warm-up: size every arena, scratch buffer and thread-local pack
    // buffer, including the short-batch geometry.
    for chunk in &batches {
        step(&mut gather, &mut grad, chunk);
    }
    step(&mut gather, &mut grad, &batches[0][..7]);

    // Armed: full and short batches must not touch the allocator.
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for _ in 0..3 {
        for chunk in &batches {
            step(&mut gather, &mut grad, chunk);
        }
        step(&mut gather, &mut grad, &batches[1][..7]);
    }
    ARMED.store(false, Ordering::SeqCst);
    let n = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(n, 0, "training steps performed {n} heap allocations");
}
