//! Pins ISSUE 5's "zero heap allocations per steady-state loopback
//! round" guarantee on the serve hot path, with a counting global
//! allocator: encode-once assignment (borrowed straight from the
//! coordinator's global), persistent per-client loopback workers
//! (network arenas + gather buffers + optimizer velocity reused),
//! streaming fixed-slot aggregation, and the global-buffer swap. Kept in
//! its own integration-test binary so no concurrent test can allocate
//! while the counter is armed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use std::sync::Arc;

use goldfish::core::GoldfishUnlearning;
use goldfish::fed::pool;
use goldfish::fed::transport::round_seed;
use goldfish::serve::coordinator::{Coordinator, CoordinatorConfig};
use goldfish::serve::demo::DemoSpec;
use goldfish::serve::telemetry::ServeTelemetry;
use goldfish::serve::transport::LoopbackTransport;
use goldfish::telemetry::clock::Clock;
use goldfish::telemetry::events::Trace;

/// Counts allocations (and growth reallocations) while armed.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_loopback_round_is_allocation_free() {
    // The serving hot path at single-thread pool size (the parallel
    // scope of the vendored rayon allocates its task queue; with one
    // thread every stage runs inline, same bits — thread count is pinned
    // as a non-semantic knob by the fed determinism suite).
    let spec = DemoSpec {
        clients: 4,
        samples_per_client: 60,
        test_samples: 20,
        seed: 23,
    };
    let cfg = CoordinatorConfig {
        train: spec.train_config(),
        method: GoldfishUnlearning::default(),
        unlearn_rounds: 1,
        init_seed: 1,
        threads: Some(1),
        ..CoordinatorConfig::default()
    };
    let transport = LoopbackTransport::new(spec.factory(), spec.client_shards(), Some(1));
    let mut c = Coordinator::new(spec.factory(), spec.test_set(), transport, cfg);

    // Reference: the summary-producing round on a twin coordinator, to
    // prove the hot path computes the same global.
    let transport2 = LoopbackTransport::new(spec.factory(), spec.client_shards(), Some(1));
    let mut reference = Coordinator::new(
        spec.factory(),
        spec.test_set(),
        transport2,
        CoordinatorConfig {
            train: spec.train_config(),
            method: GoldfishUnlearning::default(),
            unlearn_rounds: 1,
            init_seed: 1,
            threads: Some(1),
            ..CoordinatorConfig::default()
        },
    );

    // Warm-up: size every worker arena, state buffer, accumulator lane
    // and result vector.
    for r in 0..2 {
        c.train_round_hot(r, round_seed(7, r)).unwrap();
        reference.train_round(r, round_seed(7, r)).unwrap();
        assert_eq!(
            c.global_state(),
            reference.global_state(),
            "hot path diverged from the summary path at round {r}"
        );
    }

    // Armed: whole rounds must not touch the allocator.
    pool::install(Some(1), || {
        ALLOCS.store(0, Ordering::SeqCst);
        ARMED.store(true, Ordering::SeqCst);
        for r in 2..6 {
            c.train_round_hot(r, round_seed(7, r)).unwrap();
        }
        ARMED.store(false, Ordering::SeqCst);
    });
    let n = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        n, 0,
        "steady-state loopback rounds performed {n} allocations"
    );

    // And the armed rounds still computed the right thing.
    for r in 2..6 {
        reference.train_round(r, round_seed(7, r)).unwrap();
    }
    assert_eq!(c.global_state(), reference.global_state());
    assert_eq!(c.peak_resident_updates(), 1, "loopback feeds in id order");

    // ISSUE 9: the guarantee must survive full telemetry — registry
    // counters, span histograms, a manual clock and a bounded trace
    // ring all record on the hot path, and none of them may allocate
    // after registration (or perturb the numerics).
    let clock = Clock::manual();
    let telemetry = Arc::new(ServeTelemetry::new(
        clock.clone(),
        Trace::bounded(64, clock.clone()),
    ));
    let transport3 = LoopbackTransport::new(spec.factory(), spec.client_shards(), Some(1));
    let mut instrumented = Coordinator::new(
        spec.factory(),
        spec.test_set(),
        transport3,
        CoordinatorConfig {
            train: spec.train_config(),
            method: GoldfishUnlearning::default(),
            unlearn_rounds: 1,
            init_seed: 1,
            threads: Some(1),
            telemetry: Some(Arc::clone(&telemetry)),
            ..CoordinatorConfig::default()
        },
    );
    for r in 0..2 {
        instrumented.train_round_hot(r, round_seed(7, r)).unwrap();
    }
    pool::install(Some(1), || {
        ALLOCS.store(0, Ordering::SeqCst);
        ARMED.store(true, Ordering::SeqCst);
        for r in 2..6 {
            clock.advance(1_000_000); // 1ms per round: nonzero spans
            instrumented.train_round_hot(r, round_seed(7, r)).unwrap();
        }
        ARMED.store(false, Ordering::SeqCst);
    });
    let n = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        n, 0,
        "telemetry-instrumented rounds performed {n} allocations"
    );

    // Telemetry on/off is bitwise invisible, and the registry agrees
    // with what actually ran.
    assert_eq!(instrumented.global_state(), c.global_state());
    assert_eq!(telemetry.round.rounds_total.get(), 6);
    assert_eq!(telemetry.round.updates_admitted_total.get(), 24);
    assert_eq!(telemetry.round.resident_peak.get(), 1);
    assert!(telemetry.round_seconds.count() >= 4);
    assert!(telemetry.trace.is_enabled());
    assert_eq!(telemetry.trace.dropped(), 0);
}
