//! End-to-end integration tests spanning all crates: federated training,
//! backdoor injection, and the full unlearning pipeline.

use std::sync::Arc;

use goldfish::core::baselines::{
    IncompetentTeacher, OriginalModel, RapidRetrain, RetrainFromScratch,
};
use goldfish::core::basic_model::{network_from_state, GoldfishLocalConfig};
use goldfish::core::method::{ClientSplit, UnlearnSetup, UnlearningMethod};
use goldfish::core::unlearner::GoldfishUnlearning;
use goldfish::data::backdoor::BackdoorSpec;
use goldfish::data::partition;
use goldfish::data::synthetic::{self, SyntheticSpec};
use goldfish::data::Dataset;
use goldfish::fed::aggregate::FedAvg;
use goldfish::fed::federation::Federation;
use goldfish::fed::trainer::TrainConfig;
use goldfish::fed::ModelFactory;
use goldfish::nn::zoo;
use rand::{rngs::StdRng, SeedableRng};

struct Fixture {
    setup: UnlearnSetup,
    backdoor: BackdoorSpec,
    test: Dataset,
    original_acc: f64,
    original_asr: f64,
}

fn fixture(seed: u64) -> Fixture {
    let spec = SyntheticSpec::mnist().with_size(14, 14).with_shift(1);
    let (train, test) = synthetic::generate(&spec, 1200, 300, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let parts = partition::iid(train.len(), 4, &mut rng);
    let mut clients: Vec<Dataset> = parts.iter().map(|p| train.subset(p)).collect();

    let backdoor = BackdoorSpec::new(0).with_patch(5);
    let poisoned: Vec<usize> = (0..30).collect();
    backdoor.poison(&mut clients[0], &poisoned);

    let factory: ModelFactory = Arc::new(|s| {
        let mut rng = StdRng::seed_from_u64(s);
        zoo::mlp(196, &[48], 10, &mut rng)
    });
    let train_cfg = TrainConfig {
        local_epochs: 2,
        batch_size: 25,
        lr: 0.05,
        momentum: 0.9,
    };
    let mut federation = Federation::builder(Arc::clone(&factory), test.clone())
        .train_config(train_cfg)
        .clients(clients.iter().cloned())
        .build();
    federation.train_rounds(10, &FedAvg, seed ^ 0xF00D);

    let mut original = federation.global_network();
    let original_acc = goldfish::fed::eval::accuracy(&mut original, &test);
    let original_asr = goldfish::fed::eval::attack_success_rate(&mut original, &test, &backdoor);

    let mut splits = Vec::new();
    for (i, data) in clients.into_iter().enumerate() {
        if i == 0 {
            splits.push(ClientSplit::with_removed(&data, &poisoned));
        } else {
            splits.push(ClientSplit::intact(data));
        }
    }
    Fixture {
        setup: UnlearnSetup {
            factory,
            clients: splits,
            test: test.clone(),
            original_global: original.state_vector(),
            rounds: 3,
            train: train_cfg,
        },
        backdoor,
        test,
        original_acc,
        original_asr,
    }
}

fn eval_method(f: &Fixture, method: &dyn UnlearningMethod) -> (f64, f64) {
    let out = method.unlearn(&f.setup, 5);
    let mut net = network_from_state(&f.setup.factory, &out.global_state, 0);
    let acc = goldfish::fed::eval::accuracy(&mut net, &f.test);
    let asr = goldfish::fed::eval::attack_success_rate(&mut net, &f.test, &f.backdoor);
    (acc, asr)
}

fn goldfish_method() -> GoldfishUnlearning {
    GoldfishUnlearning::default().with_local(GoldfishLocalConfig {
        epochs: 2,
        batch_size: 25,
        lr: 0.05,
        momentum: 0.9,
        ..GoldfishLocalConfig::default()
    })
}

#[test]
fn pretraining_plants_the_backdoor() {
    let f = fixture(42);
    assert!(f.original_acc > 0.75, "origin accuracy {}", f.original_acc);
    assert!(f.original_asr > 0.5, "origin ASR {}", f.original_asr);
}

#[test]
fn goldfish_forgets_while_keeping_accuracy() {
    let f = fixture(42);
    let (acc, asr) = eval_method(&f, &goldfish_method());
    assert!(acc > 0.7, "goldfish accuracy {acc}");
    assert!(
        asr < 0.2,
        "goldfish ASR {asr} (origin was {})",
        f.original_asr
    );
}

#[test]
fn all_baselines_forget() {
    let f = fixture(43);
    let (b1_acc, b1_asr) = eval_method(&f, &RetrainFromScratch);
    let (b2_acc, b2_asr) = eval_method(&f, &RapidRetrain::default());
    let (b3_acc, b3_asr) = eval_method(&f, &IncompetentTeacher::default());
    assert!(b1_asr < 0.25, "b1 ASR {b1_asr}");
    assert!(b2_asr < 0.25, "b2 ASR {b2_asr}");
    assert!(b3_asr < 0.35, "b3 ASR {b3_asr}");
    assert!(b1_acc > 0.6, "b1 accuracy {b1_acc}");
    assert!(b2_acc > 0.4, "b2 accuracy {b2_acc}");
    assert!(b3_acc > 0.5, "b3 accuracy {b3_acc}");
}

#[test]
fn origin_method_preserves_backdoor() {
    let f = fixture(42);
    let (_, asr) = eval_method(&f, &OriginalModel);
    assert!(
        (asr - f.original_asr).abs() < 1e-9,
        "origin method must not change the model"
    );
}

#[test]
fn unlearned_model_differs_from_original() {
    let f = fixture(44);
    let out = goldfish_method().unlearn(&f.setup, 5);
    let d: f32 = out
        .global_state
        .iter()
        .zip(f.setup.original_global.iter())
        .map(|(a, b)| (a - b).abs())
        .sum();
    assert!(d > 1.0, "unlearned state suspiciously close to original");
}

#[test]
fn goldfish_is_deterministic_per_seed_and_varies_across_seeds() {
    let f = fixture(45);
    let a = goldfish_method().unlearn(&f.setup, 9);
    let b = goldfish_method().unlearn(&f.setup, 9);
    let c = goldfish_method().unlearn(&f.setup, 10);
    assert_eq!(a.global_state, b.global_state);
    assert_ne!(a.global_state, c.global_state);
}

#[test]
fn divergence_metrics_favor_unlearned_models() {
    // The unlearned model should be distributionally closer to the
    // retrain-from-scratch reference than the (backdoored) original is.
    use goldfish::core::baselines::state_probs;
    use goldfish::metrics::divergence::jsd_mean;
    let f = fixture(46);
    let ours = goldfish_method().unlearn(&f.setup, 5);
    let b1 = RetrainFromScratch.unlearn(&f.setup, 5);

    let probe = f.backdoor.stamp_dataset(&f.test);
    let p_ours = state_probs(&f.setup.factory, &ours.global_state, &probe);
    let p_b1 = state_probs(&f.setup.factory, &b1.global_state, &probe);
    let p_origin = state_probs(&f.setup.factory, &f.setup.original_global, &probe);

    let jsd_ours = jsd_mean(&p_ours, &p_b1);
    let jsd_origin = jsd_mean(&p_origin, &p_b1);
    assert!(
        jsd_ours < jsd_origin,
        "ours-vs-b1 JSD {jsd_ours} should be below origin-vs-b1 {jsd_origin}"
    );
}
