//! Cross-crate property-based tests on the load-bearing invariants.

use std::sync::Arc;

use goldfish::core::extension::{AdaptiveTemperature, AdaptiveWeightAggregation};
use goldfish::core::loss::{confusion_loss, distillation_loss};
use goldfish::core::optimization::ShardedLocalModel;
use goldfish::data::partition;
use goldfish::fed::aggregate::{AggregationStrategy, ClientUpdate, FedAvg};
use goldfish::nn::zoo;
use goldfish::tensor::Tensor;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn state_vector_roundtrip_for_any_mlp(
        hidden in 1usize..24,
        classes in 2usize..8,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = zoo::mlp(10, &[hidden], classes, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(seed + 1);
        let mut other = zoo::mlp(10, &[hidden], classes, &mut rng2);
        let state = net.state_vector();
        other.set_state_vector(&state);
        prop_assert_eq!(other.state_vector(), state);
    }

    #[test]
    fn shard_recovery_is_exact_for_any_weights(
        states in proptest::collection::vec(
            proptest::collection::vec(-5.0f32..5.0, 6), 2..6),
        sizes_raw in proptest::collection::vec(1usize..50, 2..6),
    ) {
        let k = states.len().min(sizes_raw.len());
        let states: Vec<Vec<f32>> = states[..k].to_vec();
        let sizes: Vec<usize> = sizes_raw[..k].to_vec();
        let model = ShardedLocalModel::new(states.clone(), sizes);
        let agg = model.aggregate();
        for (i, expected) in states.iter().enumerate().take(k) {
            let rec = model.recover_shard_weights(i, &agg);
            for (r, s) in rec.iter().zip(expected.iter()) {
                prop_assert!((r - s).abs() < 1e-3, "shard {}: {} vs {}", i, r, s);
            }
        }
    }

    #[test]
    fn fedavg_is_within_client_hull(
        a in proptest::collection::vec(-3.0f32..3.0, 4),
        b in proptest::collection::vec(-3.0f32..3.0, 4),
        na in 1usize..100,
        nb in 1usize..100,
    ) {
        let updates = vec![
            ClientUpdate { client_id: 0, state: a.clone(), num_samples: na, server_mse: None },
            ClientUpdate { client_id: 1, state: b.clone(), num_samples: nb, server_mse: None },
        ];
        let agg = FedAvg.aggregate(&updates);
        for ((x, y), z) in a.iter().zip(b.iter()).zip(agg.iter()) {
            let lo = x.min(*y) - 1e-4;
            let hi = x.max(*y) + 1e-4;
            prop_assert!((lo..=hi).contains(z));
        }
    }

    #[test]
    fn adaptive_weights_are_positive_and_order_inverted(
        mses in proptest::collection::vec(0.001f64..2.0, 2..10),
    ) {
        let w = AdaptiveWeightAggregation::weights(&mses);
        prop_assert!(w.iter().all(|&x| x > 0.0));
        for i in 0..mses.len() {
            for j in 0..mses.len() {
                if mses[i] < mses[j] {
                    prop_assert!(w[i] >= w[j], "lower MSE must not get less weight");
                }
            }
        }
    }

    #[test]
    fn adaptive_temperature_monotone_in_forget_fraction(
        n_rem in 1usize..10_000,
        n_f1 in 0usize..5_000,
        extra in 1usize..5_000,
    ) {
        let at = AdaptiveTemperature::default();
        let t_small = at.temperature(n_rem, n_f1);
        let t_big = at.temperature(n_rem, n_f1 + extra);
        prop_assert!(t_big >= t_small - 1e-6);
    }

    #[test]
    fn partitions_conserve_samples(
        n in 1usize..500,
        clients in 1usize..12,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        for parts in [
            partition::iid(n, clients, &mut rng),
            partition::uneven(n, clients, 0.05, &mut rng),
        ] {
            let mut all: Vec<usize> = parts.into_iter().flatten().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn confusion_loss_bounded_and_gradient_finite(
        data in proptest::collection::vec(-8.0f32..8.0, 12),
    ) {
        let logits = Tensor::from_vec(vec![3, 4], data);
        let (val, grad) = confusion_loss(&logits);
        // sqrt(Var(p)) over a 4-class simplex is at most sqrt(3/16).
        prop_assert!(val >= 0.0);
        prop_assert!(val <= (3.0f32 / 16.0).sqrt() + 1e-5);
        prop_assert!(grad.all_finite());
    }

    #[test]
    fn distillation_loss_nonnegative_gap(
        s in proptest::collection::vec(-5.0f32..5.0, 8),
        t in proptest::collection::vec(-5.0f32..5.0, 8),
        temp in 0.5f32..8.0,
    ) {
        // Ld(student, teacher) ≥ Ld(teacher, teacher) (cross-entropy ≥ entropy).
        let sl = Tensor::from_vec(vec![2, 4], s);
        let tl = Tensor::from_vec(vec![2, 4], t);
        let (ld, _) = distillation_loss(&sl, &tl, temp);
        let (h, _) = distillation_loss(&tl, &tl, temp);
        prop_assert!(ld >= h - 1e-4, "{} < {}", ld, h);
    }
}

#[test]
fn goldfish_loss_is_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<goldfish::core::loss::GoldfishLoss>();
    assert_send_sync::<goldfish::core::unlearner::GoldfishUnlearning>();
    let _ = Arc::new(goldfish::core::extension::AdaptiveWeightAggregation);
}
