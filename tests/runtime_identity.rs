//! End-to-end pins for the allocation-free training runtime.
//!
//! `train_local` must produce **bitwise identical** parameters to the
//! pre-refactor training pipeline. The oracle here is deliberately not
//! the library's own layers: `SeedMlpTrainer` re-implements the seed's
//! per-step arithmetic (subset copies, per-layer tensors, the
//! log-softmax/exp cross-entropy, three-pass momentum SGD) from the
//! public `ops` primitives, so any semantic drift in the runtime — not
//! just a disagreement between its two code paths — fails these tests.

use goldfish::data::synthetic::{self, SyntheticSpec};
use goldfish::data::Dataset;
use goldfish::fed::trainer::{train_local, train_local_ce, TrainConfig};
use goldfish::nn::loss::HardLoss;
use goldfish::nn::{zoo, Network};
use goldfish::tensor::{ops, Tensor};
use rand::{rngs::StdRng, SeedableRng};

/// A seed-style two-layer MLP trainer: `x → dense → relu → dense`, all
/// buffers freshly allocated per step exactly like the pre-refactor
/// layer stack, with the optimizer's three-pass momentum update.
struct SeedMlpTrainer {
    w1: Tensor,
    b1: Tensor,
    w2: Tensor,
    b2: Tensor,
    vel: [Tensor; 4],
    lr: f32,
    momentum: f32,
}

impl SeedMlpTrainer {
    /// Clones the parameters out of a `zoo::mlp(d, &[h], c)` network.
    fn from_network(net: &Network, d: usize, h: usize, c: usize) -> Self {
        let state = net.state_vector();
        let (w1, rest) = state.split_at(h * d);
        let (b1, rest) = rest.split_at(h);
        let (w2, b2) = rest.split_at(c * h);
        SeedMlpTrainer {
            w1: Tensor::from_vec(vec![h, d], w1.to_vec()),
            b1: Tensor::from_vec(vec![h], b1.to_vec()),
            w2: Tensor::from_vec(vec![c, h], w2.to_vec()),
            b2: Tensor::from_vec(vec![c], b2.to_vec()),
            vel: [
                Tensor::zeros(vec![h, d]),
                Tensor::zeros(vec![h]),
                Tensor::zeros(vec![c, h]),
                Tensor::zeros(vec![c]),
            ],
            lr: 0.0,
            momentum: 0.0,
        }
    }

    fn state_vector(&self) -> Vec<f32> {
        let mut out = Vec::new();
        for t in [&self.w1, &self.b1, &self.w2, &self.b2] {
            out.extend_from_slice(t.as_slice());
        }
        out
    }

    /// The seed cross-entropy: log-softmax tensor, exp pass, one-hot
    /// subtraction, scale.
    fn seed_ce(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        let (n, c) = logits.dims2();
        let logp = ops::log_softmax_t(logits, 1.0);
        let p = logp.map(|v| v.exp());
        let mut grad = p;
        let mut loss = 0.0f32;
        for (r, &label) in labels.iter().enumerate() {
            loss -= logp.at2(r, label);
            grad.row_mut(r)[label] -= 1.0;
        }
        let scale = 1.0 / n as f32;
        grad.scale_mut(scale);
        (loss * scale, grad.reshape(vec![n, c]))
    }

    /// One seed-style training step on a freshly copied batch; returns
    /// the batch-mean loss.
    fn step(&mut self, batch: &Dataset) -> f32 {
        let (n, d) = batch.features().dims2();
        let x = batch.features().clone().reshape(vec![n, d]);
        // dense 1 + relu
        let mut h_pre = ops::matmul_a_bt(&x, &self.w1);
        for r in 0..n {
            for (o, &b) in h_pre.row_mut(r).iter_mut().zip(self.b1.as_slice()) {
                *o += b;
            }
        }
        let mask: Vec<bool> = h_pre.as_slice().iter().map(|&v| v > 0.0).collect();
        let h = h_pre.map(|v| v.max(0.0));
        // dense 2
        let mut logits = ops::matmul_a_bt(&h, &self.w2);
        for r in 0..n {
            for (o, &b) in logits.row_mut(r).iter_mut().zip(self.b2.as_slice()) {
                *o += b;
            }
        }
        let (loss, grad) = Self::seed_ce(&logits, batch.labels());
        // backward: dense 2
        let gw2 = ops::matmul_at_b(&grad, &h);
        let gb2 = ops::sum_rows(&grad);
        let gh = ops::matmul(&grad, &self.w2);
        // relu
        let gh_relu = Tensor::from_vec(
            gh.shape().to_vec(),
            gh.as_slice()
                .iter()
                .zip(mask.iter())
                .map(|(&g, &m)| if m { g } else { 0.0 })
                .collect(),
        );
        // dense 1 (the seed also computed ∂L/∂x here and discarded it —
        // arithmetically irrelevant to the parameters).
        let gw1 = ops::matmul_at_b(&gh_relu, &x);
        let gb1 = ops::sum_rows(&gh_relu);
        // three-pass momentum SGD in parameter order
        for (param, (vel, grad)) in [&mut self.w1, &mut self.b1, &mut self.w2, &mut self.b2]
            .into_iter()
            .zip(self.vel.iter_mut().zip([gw1, gb1, gw2, gb2]))
        {
            vel.scale_mut(self.momentum);
            vel.axpy(1.0, &grad);
            param.axpy(-self.lr, vel);
        }
        loss
    }

    /// The seed `train_local` loop: shuffled indices per epoch, subset
    /// copies per chunk.
    fn train(&mut self, data: &Dataset, cfg: &TrainConfig, seed: u64) {
        self.lr = cfg.lr;
        self.momentum = cfg.momentum;
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..cfg.local_epochs {
            let order = data.shuffled_indices(&mut rng);
            for chunk in order.chunks(cfg.batch_size) {
                let batch = data.subset(chunk);
                self.step(&batch);
            }
        }
    }
}

#[test]
fn train_local_is_bitwise_identical_to_seed_pipeline() {
    let spec = SyntheticSpec::mnist().with_size(8, 8).with_shift(1);
    let (train, _) = synthetic::generate(&spec, 90, 10, 5);
    let (d, h, c) = (64, 24, 10);
    let mut rng = StdRng::seed_from_u64(12);
    let mut net = zoo::mlp(d, &[h], c, &mut rng);
    let mut oracle = SeedMlpTrainer::from_network(&net, d, h, c);
    let cfg = TrainConfig {
        local_epochs: 3,
        batch_size: 20, // 90 % 20 != 0: exercises the short final batch
        lr: 0.05,
        momentum: 0.9,
    };
    train_local_ce(&mut net, &train, &cfg, 77);
    oracle.train(&train, &cfg, 77);
    let (got, want) = (net.state_vector(), oracle.state_vector());
    assert_eq!(got.len(), want.len());
    for (i, (a, b)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "param {i}: {a} != {b}");
    }
}

/// A loss whose batch mean depends only on the batch size: mean loss of
/// a batch of n samples is n, with zero gradient. Makes the epoch-loss
/// weighting directly observable.
struct BatchSizeLoss;

impl HardLoss for BatchSizeLoss {
    fn loss_and_grad(&self, logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        let (n, c) = logits.dims2();
        assert_eq!(labels.len(), n);
        (n as f32, Tensor::zeros(vec![n, c]))
    }

    fn name(&self) -> &'static str {
        "batch-size"
    }
}

#[test]
fn epoch_loss_weights_partial_batches_per_sample() {
    // 10 samples, batch 4 → batches of 4, 4, 2 with losses 4, 4, 2.
    // Per-sample weighting: (4·4 + 4·4 + 2·2) / 10 = 3.6. The old
    // per-batch average (buggy) would report (4 + 4 + 2) / 3 = 3.333….
    let ds = Dataset::new(Tensor::zeros(vec![10, 4]), vec![0; 10], 2);
    let mut rng = StdRng::seed_from_u64(0);
    let mut net = zoo::mlp(4, &[], 2, &mut rng);
    let cfg = TrainConfig {
        local_epochs: 2,
        batch_size: 4,
        lr: 0.1,
        momentum: 0.0,
    };
    let stats = train_local(&mut net, &ds, &cfg, &BatchSizeLoss, 3);
    assert_eq!(stats.epoch_losses.len(), 2);
    for l in &stats.epoch_losses {
        assert!((l - 3.6).abs() < 1e-6, "epoch loss {l}, want 3.6");
    }
}
