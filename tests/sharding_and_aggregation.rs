//! Integration tests for the optimization module (sharding) and the
//! extension module (adaptive aggregation) on live trained models.

use std::sync::Arc;

use goldfish::core::extension::AdaptiveWeightAggregation;
use goldfish::core::optimization::ShardedClient;
use goldfish::data::partition;
use goldfish::data::synthetic::{self, SyntheticSpec};
use goldfish::fed::aggregate::{AggregationStrategy, FedAvg};
use goldfish::fed::federation::Federation;
use goldfish::fed::trainer::TrainConfig;
use goldfish::fed::ModelFactory;
use goldfish::nn::zoo;
use rand::{rngs::StdRng, SeedableRng};

fn factory() -> ModelFactory {
    Arc::new(|seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        zoo::mlp(196, &[32], 10, &mut rng)
    })
}

fn cfg() -> TrainConfig {
    TrainConfig {
        local_epochs: 2,
        batch_size: 25,
        lr: 0.05,
        momentum: 0.9,
    }
}

#[test]
fn eq10_recovery_holds_on_trained_states() {
    let spec = SyntheticSpec::mnist().with_size(14, 14).with_shift(1);
    let (train, _) = synthetic::generate(&spec, 600, 50, 3);
    let mut client = ShardedClient::new(&train, 5, factory(), cfg(), 0);
    client.train_round(0);
    client.train_round(1);
    let model = client.model();
    let agg = model.aggregate();
    for i in 0..model.num_shards() {
        let recovered = model.recover_shard_weights(i, &agg);
        let max_err = recovered
            .iter()
            .zip(model.shard_state(i))
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 1e-2, "shard {i} recovery max err {max_err}");
    }
}

#[test]
fn shard_deletion_recovers_accuracy_quickly() {
    let spec = SyntheticSpec::mnist().with_size(14, 14).with_shift(1);
    let (train, test) = synthetic::generate(&spec, 900, 250, 4);
    let f = factory();
    let acc_of = |c: &ShardedClient| {
        let mut net = (f)(0);
        net.set_state_vector(&c.local_state());
        goldfish::fed::eval::accuracy(&mut net, &test)
    };

    let mut sharded = ShardedClient::new(&train, 6, f.clone(), cfg(), 0);
    let mut whole = ShardedClient::new(&train, 1, f.clone(), cfg(), 0);
    for round in 0..6 {
        sharded.train_round(round);
        whole.train_round(round);
    }
    let before = acc_of(&sharded);
    assert!(before > 0.5, "sharded pre-deletion accuracy {before}");

    // Delete ~5% concentrated in shard 0 (indices ≡ 0 mod 6).
    let doomed: Vec<usize> = (0..45).map(|k| 6 * k).collect();
    let impact = sharded.delete_samples(&doomed, 9);
    assert_eq!(impact.partial, vec![0]);
    let whole_doomed: Vec<usize> = (0..45).collect();
    whole.delete_samples(&whole_doomed, 9);

    // One recovery round each: the sharded client (which kept 5/6 of its
    // shard models and restarted from the Eq 9 checkpoint) must not be
    // far below its pre-deletion accuracy.
    sharded.train_round(10);
    whole.train_round(10);
    let after = acc_of(&sharded);
    assert!(
        after > before - 0.15,
        "sharded accuracy collapsed after deletion: {before} -> {after}"
    );
}

#[test]
fn adaptive_aggregation_matches_fedavg_on_iid() {
    let spec = SyntheticSpec::mnist().with_size(14, 14).with_shift(1);
    let (train, test) = synthetic::generate(&spec, 1000, 250, 5);
    let mut rng = StdRng::seed_from_u64(1);
    let parts = partition::iid(train.len(), 5, &mut rng);
    let run = |strategy: &dyn AggregationStrategy| {
        let mut fed = Federation::builder(factory(), test.clone())
            .train_config(cfg())
            .clients(parts.iter().map(|p| train.subset(p)))
            .init_seed(2)
            .build();
        fed.train_rounds(4, strategy, 3).final_accuracy()
    };
    let fa = run(&FedAvg);
    let ad = run(&AdaptiveWeightAggregation);
    assert!(
        (fa - ad).abs() < 0.1,
        "IID: fedavg {fa} vs adaptive {ad} should be comparable"
    );
}

#[test]
fn adaptive_aggregation_not_worse_under_heterogeneity() {
    let spec = SyntheticSpec::mnist().with_size(14, 14).with_shift(1);
    let (train, test) = synthetic::generate(&spec, 1200, 250, 6);
    // Any single uneven partition draw can favour either strategy, so
    // compare the round-1 accuracy averaged over a few partition seeds.
    let mut fa_sum = 0.0;
    let mut ad_sum = 0.0;
    const SEEDS: [u64; 3] = [0, 1, 2];
    for seed in SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let parts = partition::uneven(train.len(), 8, 0.02, &mut rng);
        let run = |strategy: &dyn AggregationStrategy| {
            let mut fed = Federation::builder(factory(), test.clone())
                .train_config(cfg())
                .clients(parts.iter().map(|p| train.subset(p)))
                .init_seed(2)
                .build();
            let report = fed.train_rounds(1, strategy, 3);
            report.rounds[0].global_accuracy
        };
        fa_sum += run(&FedAvg);
        ad_sum += run(&AdaptiveWeightAggregation);
    }
    let fa = fa_sum / SEEDS.len() as f64;
    let ad = ad_sum / SEEDS.len() as f64;
    // In the first round (before FedAvg catches up), quality weighting
    // should give broadly comparable accuracy on average. Pure Eq 12
    // weighting ignores sample counts, so under an extreme uneven split it
    // may trail sample-count weighting by a few points — guard against
    // collapse, not against small gaps.
    assert!(
        ad > fa - 0.10,
        "heterogeneous round-1: adaptive {ad} vs fedavg {fa}"
    );
}
