//! End-to-end pins for the ported Goldfish unlearning stack (DESIGN.md
//! §9).
//!
//! Every unlearning pipeline that moved onto the allocation-free
//! runtime — `GoldfishUnlearning::unlearn` (fused composite loss,
//! teacher-logit cache, persistent client workers) and the B2/B3
//! baselines — must produce **bitwise identical** results to the
//! pre-port implementations. `ShardedClient::delete_samples` is pinned
//! against a from-scratch oracle of its **documented snapshot
//! semantics** (every Eq 9 checkpoint computed from the deletion-time
//! shard states): that semantics intentionally replaces the pre-port
//! serial loop's ordering artifact — each retrained shard leaking into
//! the *next* shard's checkpoint — so for deletions touching two or
//! more shards the ported path is deliberately not bit-equal to the
//! old loop (see the method docs and DESIGN.md §9); for single-shard
//! deletions the two coincide and the oracle pins both.
//! As in `tests/runtime_identity.rs`, the oracle here
//! is deliberately not the library's own training stack: `OracleMlp`
//! re-implements the seed per-step arithmetic (subset copies, per-layer
//! tensors, composed two-method composite loss, `params()`-order
//! gradient clip, three-pass momentum SGD) from the public `ops`
//! primitives. Shared plumbing that this PR did not touch — model
//! factories, FedAvg / adaptive-weight aggregation, server-side
//! evaluation — is reused from the library so a failure isolates the
//! ported local-training surface.

use std::sync::Arc;

use goldfish::core::baselines::{IncompetentTeacher, RapidRetrain, RetrainFromScratch};
use goldfish::core::basic_model::{network_from_state, reinit_seed, GoldfishLocalConfig};
use goldfish::core::extension::{AdaptiveTemperature, AdaptiveWeightAggregation};
use goldfish::core::loss::LossWeights;
use goldfish::core::method::{ClientSplit, UnlearnSetup, UnlearningMethod};
use goldfish::core::optimization::ShardedClient;
use goldfish::core::unlearner::GoldfishUnlearning;
use goldfish::data::synthetic::{self, SyntheticSpec};
use goldfish::data::{partition, Dataset};
use goldfish::fed::aggregate::{AggregationStrategy, ClientUpdate, FedAvg};
use goldfish::fed::trainer::TrainConfig;
use goldfish::fed::{eval, pool, ModelFactory};
use goldfish::nn::zoo;
use goldfish::tensor::{ops, Tensor};
use rand::{rngs::StdRng, SeedableRng};

const DIMS: (usize, usize, usize) = (64, 24, 10);

fn factory() -> ModelFactory {
    Arc::new(|seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        zoo::mlp(DIMS.0, &[DIMS.1], DIMS.2, &mut rng)
    })
}

/// A seed-style `d → h → c` ReLU MLP whose every pass allocates exactly
/// like the pre-port layer stack; parameters live in `w1,b1,w2,b2`
/// state-vector order.
struct OracleMlp {
    w1: Tensor,
    b1: Tensor,
    w2: Tensor,
    b2: Tensor,
    vel: [Tensor; 4],
}

/// One forward pass's cached intermediates for the backward sweep.
struct OracleTape {
    x: Tensor,
    mask: Vec<bool>,
    h: Tensor,
    logits: Tensor,
}

type OracleGrads = [Tensor; 4];

impl OracleMlp {
    fn from_state(state: &[f32]) -> Self {
        let (d, h, c) = DIMS;
        let (w1, rest) = state.split_at(h * d);
        let (b1, rest) = rest.split_at(h);
        let (w2, b2) = rest.split_at(c * h);
        OracleMlp {
            w1: Tensor::from_vec(vec![h, d], w1.to_vec()),
            b1: Tensor::from_vec(vec![h], b1.to_vec()),
            w2: Tensor::from_vec(vec![c, h], w2.to_vec()),
            b2: Tensor::from_vec(vec![c], b2.to_vec()),
            vel: [
                Tensor::zeros(vec![h, d]),
                Tensor::zeros(vec![h]),
                Tensor::zeros(vec![c, h]),
                Tensor::zeros(vec![c]),
            ],
        }
    }

    fn set_state(&mut self, state: &[f32]) {
        let mut offset = 0;
        for t in [&mut self.w1, &mut self.b1, &mut self.w2, &mut self.b2] {
            let n = t.len();
            t.as_mut_slice().copy_from_slice(&state[offset..offset + n]);
            offset += n;
        }
        assert_eq!(offset, state.len());
    }

    fn state_vector(&self) -> Vec<f32> {
        let mut out = Vec::new();
        for t in [&self.w1, &self.b1, &self.w2, &self.b2] {
            out.extend_from_slice(t.as_slice());
        }
        out
    }

    /// Seed-style forward: fresh tensors per layer, bias added row-wise.
    fn forward(&self, features: &Tensor) -> OracleTape {
        let (n, d) = features.dims2();
        let x = features.clone().reshape(vec![n, d]);
        let mut h_pre = ops::matmul_a_bt(&x, &self.w1);
        for r in 0..n {
            for (o, &b) in h_pre.row_mut(r).iter_mut().zip(self.b1.as_slice()) {
                *o += b;
            }
        }
        let mask: Vec<bool> = h_pre.as_slice().iter().map(|&v| v > 0.0).collect();
        let h = h_pre.map(|v| v.max(0.0));
        let mut logits = ops::matmul_a_bt(&h, &self.w2);
        for r in 0..n {
            for (o, &b) in logits.row_mut(r).iter_mut().zip(self.b2.as_slice()) {
                *o += b;
            }
        }
        OracleTape { x, mask, h, logits }
    }

    /// Seed-style backward from ∂L/∂logits: returns parameter gradients
    /// in state-vector order.
    fn backward(&self, tape: &OracleTape, grad_logits: &Tensor) -> OracleGrads {
        let gw2 = ops::matmul_at_b(grad_logits, &tape.h);
        let gb2 = ops::sum_rows(grad_logits);
        let gh = ops::matmul(grad_logits, &self.w2);
        let gh_relu = Tensor::from_vec(
            gh.shape().to_vec(),
            gh.as_slice()
                .iter()
                .zip(tape.mask.iter())
                .map(|(&g, &m)| if m { g } else { 0.0 })
                .collect(),
        );
        let gw1 = ops::matmul_at_b(&gh_relu, &tape.x);
        let gb1 = ops::sum_rows(&gh_relu);
        [gw1, gb1, gw2, gb2]
    }

    /// Three-pass momentum SGD in parameter order.
    fn sgd_step(&mut self, grads: &OracleGrads, lr: f32, momentum: f32) {
        for (param, (vel, grad)) in [&mut self.w1, &mut self.b1, &mut self.w2, &mut self.b2]
            .into_iter()
            .zip(self.vel.iter_mut().zip(grads.iter()))
        {
            vel.scale_mut(momentum);
            vel.axpy(1.0, grad);
            param.axpy(-lr, vel);
        }
    }
}

/// Accumulates `b` into `a` the way `Network::backward` accumulates into
/// `Param::grad`.
fn accumulate(a: &mut OracleGrads, b: &OracleGrads) {
    for (x, y) in a.iter_mut().zip(b.iter()) {
        x.axpy(1.0, y);
    }
}

/// The pre-port `params()`-order gradient clip.
fn oracle_clip(grads: &mut OracleGrads, max_norm: f32) {
    let norm_sq: f32 = grads.iter().map(|g| g.norm_sq()).sum();
    let norm = norm_sq.sqrt();
    if norm > max_norm && norm.is_finite() {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            g.scale_mut(scale);
        }
    } else if !norm.is_finite() {
        for g in grads.iter_mut() {
            g.zero_mut();
        }
    }
}

/// The seed softmax cross-entropy (identical to the
/// `tests/runtime_identity.rs` oracle).
fn seed_ce(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (n, c) = logits.dims2();
    let logp = ops::log_softmax_t(logits, 1.0);
    let p = logp.map(|v| v.exp());
    let mut grad = p;
    let mut loss = 0.0f32;
    for (r, &label) in labels.iter().enumerate() {
        loss -= logp.at2(r, label);
        grad.row_mut(r)[label] -= 1.0;
    }
    let scale = 1.0 / n as f32;
    grad.scale_mut(scale);
    (loss * scale, grad.reshape(vec![n, c]))
}

/// The pre-port composed distillation loss (Eqs 3–5).
fn oracle_distill(student: &Tensor, teacher: &Tensor, t: f32) -> (f32, Tensor) {
    let (n, _c) = student.dims2();
    let p_t = ops::softmax_t(teacher, t);
    let log_p_s = ops::log_softmax_t(student, t);
    let loss = -p_t
        .as_slice()
        .iter()
        .zip(log_p_s.as_slice().iter())
        .map(|(&a, &b)| a * b)
        .sum::<f32>()
        / n as f32;
    let p_s = log_p_s.map(|v| v.exp());
    let mut grad = p_s.sub(&p_t);
    grad.scale_mut(1.0 / (n as f32 * t));
    (loss, grad)
}

/// The pre-port composed confusion loss (Eq 2).
fn oracle_confusion(logits: &Tensor) -> (f32, Tensor) {
    let (n, c) = logits.dims2();
    let p = ops::softmax(logits);
    let mut grad = Tensor::zeros(vec![n, c]);
    let uniform = 1.0 / c as f32;
    let mut total = 0.0f32;
    for r in 0..n {
        let prow = p.row(r).to_vec();
        let var: f32 = prow.iter().map(|&pk| (pk - uniform).powi(2)).sum::<f32>() / c as f32;
        let sd = var.sqrt();
        total += sd;
        if sd < 1e-8 {
            continue;
        }
        let dl_dp: Vec<f32> = prow
            .iter()
            .map(|&pk| (pk - uniform) / (c as f32 * sd))
            .collect();
        let dot: f32 = dl_dp.iter().zip(prow.iter()).map(|(&a, &b)| a * b).sum();
        let grow = grad.row_mut(r);
        for i in 0..c {
            grow[i] = prow[i] * (dl_dp[i] - dot) / n as f32;
        }
    }
    (total / n as f32, grad)
}

/// Eq 11, re-derived from scratch.
fn oracle_adaptive_temperature(
    at: &AdaptiveTemperature,
    n_remaining: usize,
    n_forget: usize,
) -> f32 {
    let total = n_remaining + n_forget;
    if total == 0 {
        return at.t0;
    }
    let ratio = n_remaining as f32 / total as f32;
    (at.alpha * at.t0 * (-ratio).exp()).max(0.25)
}

/// The pre-port `goldfish_local` loop, one seed-style allocation at a
/// time: subset copies, per-batch teacher forward, composed
/// remaining/forget losses, accumulated gradients, clip, three-pass SGD.
#[allow(clippy::too_many_arguments)]
fn oracle_train_distill(
    student: &mut OracleMlp,
    teacher: &OracleMlp,
    remaining: &Dataset,
    forget: &Dataset,
    cfg: &GoldfishLocalConfig,
    seed: u64,
) -> Vec<f32> {
    let temperature = match &cfg.adaptive_temperature {
        Some(at) => oracle_adaptive_temperature(at, remaining.len(), forget.len()),
        None => cfg.weights.temperature,
    };
    let w = cfg.weights;
    let mut epoch_losses = Vec::new();
    if remaining.is_empty() && forget.is_empty() {
        return epoch_losses;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let forget_scale = if remaining.is_empty() {
        1.0
    } else {
        (forget.len() as f32 / remaining.len() as f32).min(1.0)
    };
    for _ in 0..cfg.epochs {
        let order = remaining.shuffled_indices(&mut rng);
        let forget_order = forget.shuffled_indices(&mut rng);
        let remaining_batches: Vec<&[usize]> = order.chunks(cfg.batch_size.max(1)).collect();
        let n_steps = remaining_batches.len().max(1);
        let forget_chunk = forget_order.len().div_ceil(n_steps).max(1);
        let mut forget_batches = forget_order.chunks(forget_chunk);

        let mut epoch_loss = 0.0f32;
        let mut steps = 0usize;
        for chunk in &remaining_batches {
            let mut total = 0.0f32;
            let mut grads: Option<OracleGrads> = None;
            if !chunk.is_empty() {
                let batch = remaining.subset(chunk);
                let teacher_logits = if w.mu_d > 0.0 {
                    Some(teacher.forward(batch.features()).logits)
                } else {
                    None
                };
                let tape = student.forward(batch.features());
                let (hard, mut grad) = seed_ce(&tape.logits, batch.labels());
                total += hard;
                if let (Some(tl), true) = (teacher_logits.as_ref(), w.mu_d > 0.0) {
                    let (ld, ld_grad) = oracle_distill(&tape.logits, tl, temperature);
                    total += w.mu_d * ld;
                    grad.axpy(w.mu_d, &ld_grad);
                }
                let g = student.backward(&tape, &grad);
                grads = Some(g);
            }
            if let Some(fchunk) = forget_batches.next() {
                if !fchunk.is_empty() {
                    let fbatch = forget.subset(fchunk);
                    let tape = student.forward(fbatch.features());
                    let (n, c) = tape.logits.dims2();
                    let (hard, hard_grad) = seed_ce(&tape.logits, fbatch.labels());
                    let mut grad = hard_grad.scale(-forget_scale);
                    let p = ops::softmax(&tape.logits);
                    let chance = 1.0 / c as f32;
                    for (r, &label) in fbatch.labels().iter().enumerate().take(n) {
                        if p.at2(r, label) <= chance {
                            for g in grad.row_mut(r) {
                                *g = 0.0;
                            }
                        }
                    }
                    total -= forget_scale * hard;
                    if w.mu_c > 0.0 {
                        let (lc, lc_grad) = oracle_confusion(&tape.logits);
                        total += w.mu_c * lc;
                        grad.axpy(w.mu_c, &lc_grad);
                    }
                    let g = student.backward(&tape, &grad);
                    match grads.as_mut() {
                        Some(acc) => accumulate(acc, &g),
                        None => grads = Some(g),
                    }
                }
            }
            if let Some(mut g) = grads {
                if let Some(max_norm) = cfg.grad_clip {
                    oracle_clip(&mut g, max_norm);
                }
                student.sgd_step(&g, cfg.lr, cfg.momentum);
            }
            epoch_loss += total;
            steps += 1;
        }
        epoch_losses.push(epoch_loss / steps.max(1) as f32);
    }
    epoch_losses
}

/// The pre-port seed-style CE local training (the
/// `tests/runtime_identity.rs` oracle, reused for B1 and the sharded
/// client).
fn oracle_train_ce(net: &mut OracleMlp, data: &Dataset, cfg: &TrainConfig, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..cfg.local_epochs {
        let order = data.shuffled_indices(&mut rng);
        for chunk in order.chunks(cfg.batch_size) {
            let batch = data.subset(chunk);
            let tape = net.forward(batch.features());
            let (_, grad) = seed_ce(&tape.logits, batch.labels());
            let grads = net.backward(&tape, &grad);
            net.sgd_step(&grads, cfg.lr, cfg.momentum);
        }
    }
}

fn fixture(n_per_client: usize, removed: usize) -> UnlearnSetup {
    let spec = SyntheticSpec::mnist().with_size(8, 8).with_shift(1);
    let (train, test) = synthetic::generate(&spec, 2 * n_per_client, 60, 33);
    let factory = factory();
    let train_cfg = TrainConfig {
        local_epochs: 2,
        batch_size: 25, // 90 % 25 != 0: exercises the short final batch
        lr: 0.05,
        momentum: 0.9,
    };
    let mut original = (factory)(1);
    goldfish::fed::trainer::train_local_ce(
        &mut original,
        &train,
        &TrainConfig {
            local_epochs: 6,
            ..train_cfg
        },
        5,
    );
    let (c0, c1) = train.split_at(n_per_client);
    let removed_idx: Vec<usize> = (0..removed).collect();
    UnlearnSetup {
        factory,
        clients: vec![
            ClientSplit::with_removed(&c0, &removed_idx),
            ClientSplit::intact(c1),
        ],
        test,
        original_global: original.state_vector(),
        rounds: 2,
        train: train_cfg,
    }
}

fn assert_bitwise(got: &[f32], want: &[f32], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: length");
    for (i, (a, b)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: param {i}: {a} != {b}");
    }
}

/// The pre-port Goldfish round loop over [`oracle_train_distill`].
/// Aggregation and server-side evaluation reuse the (untouched) library
/// paths, so a mismatch isolates the ported local training.
fn oracle_goldfish_unlearn(
    method: &GoldfishUnlearning,
    setup: &UnlearnSetup,
    seed: u64,
) -> (Vec<f32>, Vec<f64>) {
    let mut global = (setup.factory)(reinit_seed(seed)).state_vector();
    let mut round_accuracies = Vec::new();
    for round in 0..setup.rounds {
        let mut updates = Vec::new();
        for (id, split) in setup.clients.iter().enumerate() {
            let client_seed = seed
                .wrapping_add((id as u64) << 32)
                .wrapping_add(round as u64);
            let mut student = OracleMlp::from_state(&global);
            let teacher = OracleMlp::from_state(&setup.original_global);
            oracle_train_distill(
                &mut student,
                &teacher,
                &split.remaining,
                &split.forget,
                &method.local,
                client_seed,
            );
            let state = student.state_vector();
            let server_mse = if method.adaptive_aggregation {
                let mut net = network_from_state(&setup.factory, &state, 0);
                Some(eval::mse(&mut net, &setup.test))
            } else {
                None
            };
            updates.push(ClientUpdate {
                client_id: id,
                state,
                num_samples: split.remaining.len(),
                server_mse,
            });
        }
        global = if method.adaptive_aggregation {
            AdaptiveWeightAggregation.aggregate(&updates)
        } else {
            FedAvg.aggregate(&updates)
        };
        let mut net = network_from_state(&setup.factory, &global, 0);
        round_accuracies.push(eval::accuracy(&mut net, &setup.test));
    }
    (global, round_accuracies)
}

fn goldfish_cfg() -> GoldfishLocalConfig {
    GoldfishLocalConfig {
        epochs: 2,
        batch_size: 25,
        lr: 0.05,
        momentum: 0.9,
        ..GoldfishLocalConfig::default()
    }
}

#[test]
fn goldfish_unlearn_is_bitwise_identical_to_seed_pipeline() {
    // 90 remaining / 13 removed on client 0: both loops end in partial
    // final batches (90 % 25 = 15 remaining, 13 across 4 steps → 4,4,4,1
    // forget slices).
    let setup = fixture(103, 13);
    let method = GoldfishUnlearning::default().with_local(goldfish_cfg());
    let got = method.unlearn(&setup, 9);
    let (want_state, want_acc) = oracle_goldfish_unlearn(&method, &setup, 9);
    assert_bitwise(&got.global_state, &want_state, "goldfish");
    assert_eq!(got.round_accuracies, want_acc, "goldfish accuracies");
}

#[test]
fn goldfish_extension_paths_are_bitwise_identical() {
    // Adaptive temperature (Eq 11) + adaptive-weight aggregation
    // (Eqs 12–13) + a hard-only ablation without distillation.
    let setup = fixture(103, 13);
    for method in [
        GoldfishUnlearning::default().with_local(GoldfishLocalConfig {
            adaptive_temperature: Some(AdaptiveTemperature::default()),
            ..goldfish_cfg()
        }),
        GoldfishUnlearning::with_weights(LossWeights::hard_only()).with_local(
            GoldfishLocalConfig {
                weights: LossWeights::hard_only(),
                ..goldfish_cfg()
            },
        ),
        GoldfishUnlearning::default()
            .with_local(goldfish_cfg())
            .with_adaptive_aggregation(false),
    ] {
        let got = method.unlearn(&setup, 4);
        let (want_state, _) = oracle_goldfish_unlearn(&method, &setup, 4);
        assert_bitwise(&got.global_state, &want_state, "goldfish extension");
    }
}

#[test]
fn b1_retrain_is_bitwise_identical_to_seed_pipeline() {
    let setup = fixture(103, 13);
    let got = RetrainFromScratch.unlearn(&setup, 3);
    // Oracle round loop with seed-style CE training.
    let mut global = (setup.factory)(reinit_seed(3 ^ 0xB1)).state_vector();
    for round in 0..setup.rounds {
        let mut updates = Vec::new();
        for (id, split) in setup.clients.iter().enumerate() {
            let client_seed = 3u64
                .wrapping_add((id as u64) << 32)
                .wrapping_add(round as u64);
            let mut net = OracleMlp::from_state(&global);
            oracle_train_ce(&mut net, &split.remaining, &setup.train, client_seed);
            updates.push(ClientUpdate {
                client_id: id,
                state: net.state_vector(),
                num_samples: split.remaining.len(),
                server_mse: None,
            });
        }
        global = FedAvg.aggregate(&updates);
    }
    assert_bitwise(&got.global_state, &global, "b1");
}

#[test]
fn b2_rapid_is_bitwise_identical_to_seed_pipeline() {
    let setup = fixture(103, 13);
    let b2 = RapidRetrain::default();
    let got = b2.unlearn(&setup, 3);
    let lr = b2.lr_override.unwrap_or(setup.train.lr * 0.2);
    let mut global = (setup.factory)(reinit_seed(3 ^ 0xB2)).state_vector();
    for round in 0..setup.rounds {
        let mut updates = Vec::new();
        for (id, split) in setup.clients.iter().enumerate() {
            let client_seed = (3u64
                .wrapping_add((id as u64) << 32)
                .wrapping_add(round as u64))
                ^ 0xB2;
            let mut net = OracleMlp::from_state(&global);
            if !split.remaining.is_empty() {
                let mut rng = StdRng::seed_from_u64(client_seed);
                let mut state = net.state_vector();
                let mut fim = vec![0.0f32; state.len()];
                for _ in 0..setup.train.local_epochs {
                    let order = split.remaining.shuffled_indices(&mut rng);
                    for chunk in order.chunks(setup.train.batch_size) {
                        let batch = split.remaining.subset(chunk);
                        let tape = net.forward(batch.features());
                        let (_, grad) = seed_ce(&tape.logits, batch.labels());
                        let grads = net.backward(&tape, &grad);
                        let mut g = Vec::with_capacity(state.len());
                        for t in grads.iter() {
                            g.extend_from_slice(t.as_slice());
                        }
                        for ((w, f), gi) in state.iter_mut().zip(fim.iter_mut()).zip(g.iter()) {
                            *f = b2.fim_decay * *f + (1.0 - b2.fim_decay) * gi * gi;
                            *w -= lr * gi / (f.sqrt() + b2.damping);
                        }
                        net.set_state(&state);
                    }
                }
            }
            updates.push(ClientUpdate {
                client_id: id,
                state: net.state_vector(),
                num_samples: split.remaining.len(),
                server_mse: None,
            });
        }
        global = FedAvg.aggregate(&updates);
    }
    assert_bitwise(&got.global_state, &global, "b2");
}

#[test]
fn b3_incompetent_is_bitwise_identical_to_seed_pipeline() {
    let setup = fixture(103, 13);
    let b3 = IncompetentTeacher::default();
    let got = b3.unlearn(&setup, 3);
    let mut global = setup.original_global.clone();
    for round in 0..setup.rounds {
        let mut updates = Vec::new();
        for (id, split) in setup.clients.iter().enumerate() {
            let client_seed = (3u64
                .wrapping_add((id as u64) << 32)
                .wrapping_add(round as u64))
                ^ 0xB3;
            let mut student = OracleMlp::from_state(&global);
            let competent = OracleMlp::from_state(&setup.original_global);
            let incompetent =
                OracleMlp::from_state(&(setup.factory)(client_seed ^ 0x1C0DE).state_vector());
            let mut rng = StdRng::seed_from_u64(client_seed);
            for _ in 0..setup.train.local_epochs {
                for (data, teacher) in [
                    (&split.remaining, &competent),
                    (&split.forget, &incompetent),
                ] {
                    if data.is_empty() {
                        continue;
                    }
                    let order = data.shuffled_indices(&mut rng);
                    for chunk in order.chunks(setup.train.batch_size) {
                        let batch = data.subset(chunk);
                        let teacher_logits = teacher.forward(batch.features()).logits;
                        let tape = student.forward(batch.features());
                        let (_, grad) =
                            oracle_distill(&tape.logits, &teacher_logits, b3.temperature);
                        let grads = student.backward(&tape, &grad);
                        student.sgd_step(&grads, setup.train.lr, setup.train.momentum);
                    }
                }
            }
            updates.push(ClientUpdate {
                client_id: id,
                state: student.state_vector(),
                num_samples: split.remaining.len(),
                server_mse: None,
            });
        }
        global = FedAvg.aggregate(&updates);
    }
    assert_bitwise(&got.global_state, &global, "b3");
}

#[test]
fn sharded_deletion_is_bitwise_identical_to_seed_pipeline() {
    // A deletion touching TWO shards partially: pins the snapshot
    // semantics (every Eq 9 checkpoint computed from the deletion-time
    // states) of the shard-parallel retraining.
    let spec = SyntheticSpec::mnist().with_size(8, 8).with_shift(1);
    let (train, _) = synthetic::generate(&spec, 120, 30, 11);
    let tau = 4;
    let cfg = TrainConfig {
        local_epochs: 2,
        batch_size: 25,
        lr: 0.05,
        momentum: 0.9,
    };
    let mut client = ShardedClient::new(&train, tau, factory(), cfg, 0);
    client.train_round(0);

    // Oracle state before deletion.
    let before: Vec<Vec<f32>> = (0..tau)
        .map(|i| client.model().shard_state(i).to_vec())
        .collect();
    let sizes: Vec<usize> = client.model().sizes().to_vec();
    let total: usize = sizes.iter().sum();

    // Delete rows from shards 1 and 2 (indices ≡ 1, 2 mod 4).
    let deleted = vec![1usize, 5, 9, 2, 6];
    let impact = client.delete_samples(&deleted, 7);
    assert_eq!(impact.partial, vec![1, 2]);

    // Oracle: reconstruct each affected shard's retraining from the
    // pre-deletion snapshot.
    let indices: Vec<usize> = (0..train.len()).collect();
    let parts = partition::shards(&indices, tau);
    for &shard in &[1usize, 2] {
        let rows: Vec<usize> = deleted
            .iter()
            .filter(|&&g| g % tau == shard)
            .map(|&g| g / tau)
            .collect();
        let shard_data = train.subset(&parts[shard]);
        let keep: Vec<usize> = (0..shard_data.len())
            .filter(|r| !rows.contains(r))
            .collect();
        let survived = shard_data.subset(&keep);
        // Eq 9 checkpoint from the snapshot states.
        let mut checkpoint = vec![0.0f32; before[0].len()];
        for (j, state) in before.iter().enumerate() {
            if j == shard {
                continue;
            }
            let w = sizes[j] as f32 / total as f32;
            for (o, &v) in checkpoint.iter_mut().zip(state.iter()) {
                *o += w * v;
            }
        }
        let shard_seed = 7u64.wrapping_add((shard as u64) << 16).wrapping_add(1);
        let mut net = if checkpoint.iter().any(|&v| v != 0.0) {
            OracleMlp::from_state(&checkpoint)
        } else {
            OracleMlp::from_state(&(factory())(shard_seed).state_vector())
        };
        oracle_train_ce(&mut net, &survived, &cfg, shard_seed);
        assert_bitwise(
            client.model().shard_state(shard),
            &net.state_vector(),
            &format!("shard {shard}"),
        );
    }
}

#[test]
fn unlearning_is_thread_count_invariant() {
    // Identical UnlearnOutcome (state bits + accuracies) at 1, 2 and 8
    // threads on the shared pool, for the client-parallel Goldfish round
    // loop and the shard-parallel deletion path.
    let setup = fixture(103, 13);
    let method = GoldfishUnlearning::default().with_local(goldfish_cfg());
    let run_goldfish = |threads: usize| pool::install(Some(threads), || method.unlearn(&setup, 5));
    let one = run_goldfish(1);
    for threads in [2, 8] {
        let other = run_goldfish(threads);
        assert_bitwise(
            &other.global_state,
            &one.global_state,
            &format!("goldfish @ {threads} threads"),
        );
        assert_eq!(other.round_accuracies, one.round_accuracies);
    }

    let spec = SyntheticSpec::mnist().with_size(8, 8).with_shift(1);
    let (train, _) = synthetic::generate(&spec, 120, 30, 11);
    let cfg = TrainConfig {
        local_epochs: 2,
        batch_size: 25,
        lr: 0.05,
        momentum: 0.9,
    };
    let run_delete = |threads: usize| {
        pool::install(Some(threads), || {
            let mut client = ShardedClient::new(&train, 4, factory(), cfg, 0);
            client.train_round(0);
            client.delete_samples(&[1, 5, 9, 2, 6, 3], 7);
            client.local_state()
        })
    };
    let one = run_delete(1);
    for threads in [2, 8] {
        assert_bitwise(
            &run_delete(threads),
            &one,
            &format!("delete @ {threads} threads"),
        );
    }
}
