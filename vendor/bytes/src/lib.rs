//! Offline stand-in for `bytes`.
//!
//! Implements the subset of the `bytes` API that
//! `goldfish_tensor::serialize` uses: an owned read cursor ([`Bytes`]), a
//! growable write buffer ([`BytesMut`]), and little-endian get/put
//! accessors on the [`Buf`]/[`BufMut`] traits. Backed by plain `Vec<u8>`
//! (no shared-slice optimisation — fine for the simulation's wire format).

#![forbid(unsafe_code)]

/// An owned, cheaply sliceable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Remaining (unread) length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the sub-range `range` of the unread bytes into a new buffer.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.data[self.pos + range.start..self.pos + range.end].to_vec(),
            pos: 0,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    /// The unread bytes as a slice (the real `bytes` exposes the same
    /// view via `AsRef`/`Deref`).
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

/// Sequential big-buffer reader.
pub trait Buf {
    /// Number of unread bytes.
    fn remaining(&self) -> usize;
    /// Reads `n` bytes into `dst`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    fn copy_bytes(&mut self, dst: &mut [u8]);

    /// Reads `dst.len()` bytes into `dst` (the real-`bytes` name for
    /// [`Buf::copy_bytes`], so call sites survive a crate swap).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        self.copy_bytes(dst);
    }

    /// Skips the next `cnt` unread bytes (real-`bytes` `Buf::advance`).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_bytes(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_bytes(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_bytes(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_bytes(&mut b);
        f32::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_bytes(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underrun");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "buffer underrun");
        self.pos += cnt;
    }
}

/// A growable byte buffer being written.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current written length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

/// Sequential buffer writer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    /// The real `bytes` implements `BufMut` for `Vec<u8>` too; wire
    /// writers that assemble frames into plain vectors rely on it.
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_accessors() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u32_le(7);
        w.put_u64_le(u64::MAX - 3);
        w.put_f32_le(-1.25);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 16);
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_f32_le(), -1.25);
        assert!(r.is_empty());
    }

    #[test]
    fn slice_copies_subrange() {
        let b: Bytes = vec![1u8, 2, 3, 4, 5].into();
        let s = b.slice(1..4);
        assert_eq!(s.len(), 3);
        let mut s = s;
        let mut d = [0u8; 3];
        s.copy_bytes(&mut d);
        assert_eq!(d, [2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "buffer underrun")]
    fn underrun_panics() {
        let mut b = Bytes::new();
        let _ = b.get_u32_le();
    }
}
