//! Offline stand-in for `criterion`.
//!
//! The registry is unreachable in this build environment, so this crate
//! implements the criterion API surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion`, benchmark groups,
//! `BenchmarkId`, `Bencher::iter`/`iter_batched`) with a plain wall-clock
//! runner: warm-up + calibration, then `sample_size` timed samples, with
//! min / median / mean printed per benchmark. No statistical analysis or
//! HTML reports — just honest, deterministic-enough timings for tracking
//! kernel speedups in CI logs.
//!
//! Passing `--test` (as `cargo test` does for bench targets) runs each
//! benchmark once, so test runs stay fast.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export so user code can `criterion::black_box` as with the real crate.
pub use std::hint::black_box;

/// Target minimum measured wall-time per sample; fast closures are batched
/// until one sample reaches this.
const MIN_SAMPLE_TIME: Duration = Duration::from_millis(2);

fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// How per-iteration inputs are treated by [`Bencher::iter_batched`].
/// The stand-in runner handles all sizes identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: one per batch.
    LargeInput,
    /// Fresh input per iteration.
    PerIteration,
}

/// A benchmark identifier: function name and/or parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Parameter-only id (for groups benchmarking one function over sizes).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark driver, holding global configuration.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with `input`, labelled `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let name = format!("{}/{id}", self.name);
        run_one(&name, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks `f`, labelled `group/id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let name = format!("{}/{id}", self.name);
        run_one(&name, self.sample_size, f);
        self
    }

    /// Ends the group (printing happens per benchmark).
    pub fn finish(self) {}
}

fn run_one<F: FnOnce(&mut Bencher)>(name: &str, sample_size: usize, f: F) {
    let mut b = Bencher {
        sample_size: if test_mode() { 1 } else { sample_size },
        samples: Vec::new(),
    };
    f(&mut b);
    b.report(name);
}

/// Times closures and records per-iteration durations.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    /// Seconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Benchmarks `f`, batching fast closures so each sample is long
    /// enough to time reliably.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration run.
        let t = Instant::now();
        black_box(f());
        let est = t.elapsed().max(Duration::from_nanos(20));
        let iters: u32 = if self.sample_size == 1 {
            1
        } else {
            (MIN_SAMPLE_TIME.as_secs_f64() / est.as_secs_f64()).clamp(1.0, 65536.0) as u32
        };
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t.elapsed().as_secs_f64() / iters as f64);
        }
    }

    /// Benchmarks `routine` on fresh inputs from `setup`; only `routine`
    /// is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed().as_secs_f64());
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<48} no samples recorded");
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let min = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        println!(
            "{name:<48} time: [min {} median {} mean {}]  ({} samples)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            self.samples.len(),
        );
    }
}

/// Formats seconds with an adaptive unit, criterion-style.
pub fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            sample_size: 5,
            samples: Vec::new(),
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert_eq!(b.samples.len(), 5);
        assert!(b.samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("64x64").to_string(), "64x64");
    }

    #[test]
    fn time_units() {
        assert!(fmt_time(0.5e-9).ends_with("ns"));
        assert!(fmt_time(2.0e-6).ends_with("µs"));
        assert!(fmt_time(3.0e-3).ends_with("ms"));
        assert!(fmt_time(1.5).ends_with('s'));
    }
}
