//! Offline stand-in for the `polling` crate: a minimal **oneshot**
//! readiness poller over Linux `epoll(7)`, shaped after the smol
//! project's `polling` API surface this workspace needs.
//!
//! Semantics:
//!
//! * [`Poller::add`] registers a file descriptor with an interest set
//!   and a caller-chosen `key`; every registration is **oneshot** — once
//!   an event for the descriptor is delivered, the descriptor is
//!   disarmed until re-armed via [`Poller::modify`].
//! * [`Poller::wait`] blocks up to `timeout` and fills an [`Events`]
//!   buffer. Error/hangup conditions are reported as both readable and
//!   writable, so the owner performs the I/O and observes the real
//!   `io::Error` (the same convention mio and polling use).
//! * All syscalls go through `extern "C"` declarations resolved by the
//!   platform libc that `std` already links — no external crate, per
//!   the workspace's vendored-offline policy (DESIGN.md §1).
//!
//! The crate also exposes [`raise_nofile_limit`], which lifts
//! `RLIMIT_NOFILE`'s soft limit to its hard limit so high-fanout
//! benchmarks (thousands of sockets) run under default shell limits.

#![cfg(target_os = "linux")]

use std::ffi::c_int;
use std::io;
use std::time::Duration;

/// Raw file-descriptor type re-exported for callers that avoid
/// `unsafe` themselves (`std::os::fd::AsRawFd::as_raw_fd` is safe).
pub type RawFd = std::os::fd::RawFd;

const EPOLL_CLOEXEC: c_int = 0x8_0000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLONESHOT: u32 = 1 << 30;

#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[repr(C)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

const RLIMIT_NOFILE: c_int = 7;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
}

/// A readiness interest (on registration) or a delivered readiness
/// report (out of [`Poller::wait`]), tagged with the registration key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The caller-chosen registration key (connection slot, listener
    /// sentinel, …) — how `wait` results map back to owners.
    pub key: usize,
    /// Interest in / report of read readiness.
    pub readable: bool,
    /// Interest in / report of write readiness.
    pub writable: bool,
}

impl Event {
    /// Read-only interest.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Write-only interest.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Both directions.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    fn mask(self) -> u32 {
        let mut m = EPOLLONESHOT | EPOLLRDHUP;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// Reusable buffer [`Poller::wait`] fills — sized once, reused every
/// loop iteration so the reactor's steady state never allocates.
pub struct Events {
    raw: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer holding up to 1024 events per wait.
    pub fn new() -> Events {
        Events::with_capacity(1024)
    }

    /// A buffer holding up to `cap` events per wait.
    pub fn with_capacity(cap: usize) -> Events {
        Events {
            raw: vec![EpollEvent { events: 0, data: 0 }; cap.max(1)],
            len: 0,
        }
    }

    /// Number of events the last wait delivered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the last wait delivered nothing (timeout).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The delivered events. Error/hangup conditions are folded into
    /// `readable`/`writable` so owners discover them through the I/O
    /// call itself.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.raw[..self.len].iter().map(|e| {
            let bits = e.events;
            let fail = bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
            Event {
                key: e.data as usize,
                readable: bits & EPOLLIN != 0 || fail,
                writable: bits & EPOLLOUT != 0 || fail,
            }
        })
    }
}

impl Default for Events {
    fn default() -> Events {
        Events::new()
    }
}

/// The oneshot readiness poller: an owned `epoll` instance.
#[derive(Debug)]
pub struct Poller {
    epfd: c_int,
}

// The epoll fd is just an fd; the kernel serializes operations on it.
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

impl Poller {
    /// Creates a poller.
    ///
    /// # Errors
    ///
    /// The `epoll_create1` failure, if any.
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, ev: Option<Event>) -> io::Result<()> {
        let mut raw = EpollEvent {
            events: ev.map(Event::mask).unwrap_or(0),
            data: ev.map(|e| e.key as u64).unwrap_or(0),
        };
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut raw) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` with `interest` (oneshot: disarmed after the
    /// first delivery until [`Poller::modify`] re-arms it). The caller
    /// must keep `fd` open while registered and is responsible for
    /// putting it in non-blocking mode.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl` failure.
    pub fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, Some(interest))
    }

    /// Re-arms `fd` with a (possibly different) interest set.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl` failure.
    pub fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, Some(interest))
    }

    /// Deregisters `fd`.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl` failure (already-closed descriptors
    /// report `EBADF`, which callers typically ignore on teardown).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Waits up to `timeout` (`None` = forever) and fills `events`.
    /// Returns the number of delivered events; `0` means the timeout
    /// elapsed — or the wait was interrupted by a signal, which is
    /// reported as an empty delivery so callers re-check their own
    /// deadline instead of dying on `EINTR`.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_wait` failure (other than `EINTR`).
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let ms: c_int = match timeout {
            None => -1,
            Some(t) => {
                // Round up so a sub-millisecond deadline still sleeps
                // instead of busy-spinning at timeout 0.
                let ms = t
                    .as_millis()
                    .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0));
                ms.min(c_int::MAX as u128) as c_int
            }
        };
        let n = unsafe {
            epoll_wait(
                self.epfd,
                events.raw.as_mut_ptr(),
                events.raw.len() as c_int,
                ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                events.len = 0;
                return Ok(0);
            }
            return Err(err);
        }
        events.len = n as usize;
        Ok(events.len)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.epfd);
        }
    }
}

/// Raises the `RLIMIT_NOFILE` soft limit to the hard limit and returns
/// the resulting soft limit. High-fanout reactors (thousands of
/// sockets) call this once at startup; under a default 1024-fd shell
/// limit that is the difference between a 4096-connection sweep and
/// `EMFILE`.
///
/// # Errors
///
/// The `getrlimit`/`setrlimit` failure, if any.
pub fn raise_nofile_limit() -> io::Result<u64> {
    let mut lim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.rlim_cur < lim.rlim_max {
        lim.rlim_cur = lim.rlim_max;
        if unsafe { setrlimit(RLIMIT_NOFILE, &lim) } < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(lim.rlim_cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn readable_after_peer_writes() {
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(b.as_raw_fd(), Event::readable(7)).unwrap();
        let mut events = Events::new();

        // Nothing to read yet: the wait times out empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        a.write_all(b"ping").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.key, 7);
        assert!(ev.readable);

        // Oneshot: the delivery disarmed the registration.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        // Re-armed, it fires again (the bytes are still unread).
        poller.modify(b.as_raw_fd(), Event::readable(7)).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);

        let mut buf = [0u8; 8];
        let mut b2 = &b;
        assert_eq!(b2.read(&mut buf).unwrap(), 4);
        poller.delete(b.as_raw_fd()).unwrap();
    }

    #[test]
    fn writable_and_hangup_reports() {
        let (a, b) = pair();
        a.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(a.as_raw_fd(), Event::writable(3)).unwrap();
        let mut events = Events::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.key, 3);
        assert!(ev.writable);

        // Peer hangs up: a read-armed registration reports readiness so
        // the owner's read observes the EOF.
        poller.modify(a.as_raw_fd(), Event::readable(3)).unwrap();
        drop(b);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events.iter().next().unwrap().readable);
    }

    #[test]
    fn nofile_limit_is_raised() {
        let lim = raise_nofile_limit().unwrap();
        assert!(lim >= 1024, "soft NOFILE limit {lim} below any sane floor");
        // Idempotent.
        assert_eq!(raise_nofile_limit().unwrap(), lim);
    }
}
