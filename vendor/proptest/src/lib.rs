//! Offline stand-in for `proptest`.
//!
//! The registry is unreachable in this build environment, so this crate
//! implements the proptest API surface the workspace's property tests use:
//! the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`, range and tuple strategies,
//! `prop_map`/`prop_flat_map`, and `proptest::collection::vec`.
//!
//! Unlike real proptest there is **no shrinking** — a failing case panics
//! with the usual assert message, and the run is reproducible because each
//! test's RNG is seeded from a hash of the test name. That keeps the
//! property suites meaningful (randomized coverage, fixed on failure)
//! without the full strategy/value-tree machinery.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Post-processes generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Strategy generating a constant value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, G);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed `usize` or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(!r.is_empty(), "empty vec length range");
            SizeRange(r)
        }
    }

    /// Strategy for `Vec`s of values from `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.0.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Runner configuration.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        /// 64 cases — smaller than real proptest's 256 to keep single-core
        /// CI runs fast while still exercising varied shapes.
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

pub mod prelude {
    //! Everything the `proptest!` macro and its bodies need in scope.

    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Builds the deterministic per-test RNG (seeded from the test name).
#[doc(hidden)]
pub fn __rng_for(test_name: &str) -> StdRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Defines property tests: each `fn` runs its body over `cases` random
/// draws of its `pat in strategy` arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);
     $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                let mut __rng = $crate::__rng_for(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a name the proptest bodies expect.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a name the proptest bodies expect.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, f in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn flat_map_links_dimensions((r, v) in (1usize..5).prop_flat_map(|r| {
            (Just(r), collection::vec(0.0f64..1.0, r * 2))
        })) {
            prop_assert_eq!(v.len(), r * 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_attr_is_accepted(x in 0u64..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        let mut a = crate::__rng_for("test_a");
        let mut b = crate::__rng_for("test_a");
        let s = 0.0f64..1.0;
        for _ in 0..16 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
