//! Offline stand-in for `rand` 0.8.
//!
//! The registry is unreachable in this build environment, so this crate
//! implements the subset of the rand 0.8 API the workspace uses:
//!
//! * [`rngs::StdRng`] — a xoshiro256** generator seeded via SplitMix64,
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen_range`] over half-open and inclusive ranges of the common
//!   float/integer types, [`Rng::gen`], [`Rng::gen_bool`],
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Streams differ from the real crates.io `rand` (different core
//! generator), but everything in this workspace asserts *relative*
//! statistical properties under a fixed seed, never golden values, so only
//! determinism matters — and that is preserved.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next value of the stream.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(&mut || self.next_u64())
    }

    /// Samples a uniform value of type `T` over its standard distribution
    /// (full integer range; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(&mut || self.next_u64())
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(&mut || self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard distribution: full range for integers, `[0, 1)` for floats.
pub trait Standard: Sized {
    /// Draws one value using the provided `u64` source.
    fn sample(src: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(src: &mut dyn FnMut() -> u64) -> Self {
                src() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample(src: &mut dyn FnMut() -> u64) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (src() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(src: &mut dyn FnMut() -> u64) -> Self {
        (src() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample(src: &mut dyn FnMut() -> u64) -> Self {
        src() & 1 == 1
    }
}

/// A range that knows how to sample itself uniformly. Implemented
/// generically over [`SampleUniform`] element types so the element type
/// unifies with the caller's expected type during inference (as in real
/// rand — float literals in `gen_range(0.1..0.3)` then resolve from usage).
pub trait SampleRange<T> {
    /// Draws one value using the provided `u64` source.
    fn sample_from(self, src: &mut dyn FnMut() -> u64) -> T;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform(lo: Self, hi: Self, inclusive: bool, src: &mut dyn FnMut() -> u64) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, src: &mut dyn FnMut() -> u64) -> T {
        assert!(self.start < self.end, "empty gen_range");
        T::sample_uniform(self.start, self.end, false, src)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, src: &mut dyn FnMut() -> u64) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty gen_range");
        T::sample_uniform(lo, hi, true, src)
    }
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(
                lo: Self,
                hi: Self,
                inclusive: bool,
                src: &mut dyn FnMut() -> u64,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let r = (((src() as u128) << 64) | src() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(
                lo: Self,
                hi: Self,
                inclusive: bool,
                src: &mut dyn FnMut() -> u64,
            ) -> Self {
                let v = lo + (hi - lo) * <$t as Standard>::sample(src);
                // Guard against rounding up to an excluded endpoint.
                if !inclusive && v >= hi { lo } else { v }
            }
        }
    )*};
}
sample_uniform_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64. Fast, statistically solid, and fully deterministic
    /// given a seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (the only `seq` API this workspace uses).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
            let u = rng.gen_range(3usize..10);
            assert!((3..10).contains(&u));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
