//! Offline stand-in for `rayon`.
//!
//! The registry is unreachable in this build environment, so this crate
//! implements the subset of the rayon API the workspace's compute engine
//! uses, on top of `std::thread::scope`:
//!
//! * [`scope`] with [`Scope::spawn`] — structured fork/join over borrowed
//!   data,
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — a *logical* pool:
//!   it pins the thread count that [`scope`] and [`current_num_threads`]
//!   observe for the duration of a closure (threads are spawned per scope,
//!   not kept warm — adequate for the coarse-grained tasks used here),
//! * [`current_num_threads`].
//!
//! Scheduling differences from real rayon (no work stealing, no persistent
//! workers) do not affect results: every caller in this workspace is
//! written so task outputs land in pre-partitioned disjoint buffers and
//! reduction orders are fixed, making results independent of the thread
//! count.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Thread count installed by the innermost [`ThreadPool::install`];
    /// 0 means "not inside a pool" (use the hardware default).
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };

    /// Whether this thread is a scope worker. Nested [`scope`]s run their
    /// tasks inline instead of spawning another generation of OS threads —
    /// without this, N parallel tasks each reaching a parallel kernel
    /// would multiply to N² live threads (real rayon work-steals within
    /// one pool instead).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The number of threads scopes started from this thread will use.
///
/// Inside [`ThreadPool::install`] this is the pool's configured size;
/// otherwise it is the hardware parallelism (at least 1).
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(|t| t.get());
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Error returned by [`ThreadPoolBuilder::build`]. The stand-in builder
/// cannot actually fail; the type exists for API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a logical [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default (hardware) thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the thread count; 0 means the hardware default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in the stand-in; the `Result` mirrors rayon's API.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A logical thread pool: a thread-count context for [`scope`].
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count installed, so every [`scope`]
    /// reached from `f` (transitively) uses it.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        INSTALLED_THREADS.with(|t| {
            let prev = t.get();
            t.set(self.num_threads);
            let out = f();
            t.set(prev);
            out
        })
    }

    /// The pool's configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

type Task<'s> = Box<dyn FnOnce(&Scope<'s>) + Send + 's>;

/// A fork/join scope; tasks spawned here may borrow data outliving the
/// scope call.
pub struct Scope<'s> {
    queue: Mutex<Vec<Task<'s>>>,
}

impl<'s> Scope<'s> {
    /// Enqueues a task. Tasks run after the scope closure returns (or, for
    /// tasks spawned from inside other tasks, in the next execution round)
    /// and all complete before [`scope`] returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'s>) + Send + 's,
    {
        self.queue
            .lock()
            .expect("scope queue poisoned")
            .push(Box::new(f));
    }
}

/// Creates a fork/join scope: `f` spawns tasks on the given [`Scope`]; all
/// of them (including transitively spawned ones) complete before `scope`
/// returns. Tasks run on up to [`current_num_threads`] OS threads.
///
/// # Panics
///
/// Panics if any task panics (after all threads have been joined).
pub fn scope<'s, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'s>) -> R,
{
    let s = Scope {
        queue: Mutex::new(Vec::new()),
    };
    let out = f(&s);
    let threads = if IN_WORKER.with(|w| w.get()) {
        1
    } else {
        current_num_threads()
    };
    loop {
        let round = std::mem::take(&mut *s.queue.lock().expect("scope queue poisoned"));
        if round.is_empty() {
            break;
        }
        run_round(&s, round, threads);
    }
    out
}

/// Executes one batch of tasks, serially or on a bounded set of worker
/// threads pulling from a shared cursor.
fn run_round<'s>(scope: &Scope<'s>, tasks: Vec<Task<'s>>, threads: usize) {
    if threads <= 1 || tasks.len() <= 1 {
        for t in tasks {
            t(scope);
        }
        return;
    }
    let slots: Vec<Mutex<Option<Task<'s>>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    let workers = threads.min(slots.len());
    std::thread::scope(|st| {
        for _ in 0..workers {
            st.spawn(|| {
                // Workers inherit the pool size (for current_num_threads
                // queries) but are flagged so nested scopes run inline.
                INSTALLED_THREADS.with(|t| t.set(threads));
                IN_WORKER.with(|w| w.set(true));
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= slots.len() {
                        break;
                    }
                    let task = slots[i].lock().expect("task slot poisoned").take();
                    if let Some(task) = task {
                        task(scope);
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_runs_all_tasks() {
        let mut out = vec![0usize; 64];
        scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i + 1);
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i + 1));
    }

    #[test]
    fn nested_spawns_complete() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|inner| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    inner.spawn(|_| {
                        counter.fetch_add(10, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 44);
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| {
            assert_eq!(current_num_threads(), 3);
            scope(|s| {
                s.spawn(|_| {});
                s.spawn(|_| assert!(current_num_threads() >= 1));
            });
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn nested_scopes_run_inline_on_workers() {
        // A task observing its own thread id: nested scope tasks must run
        // on the same worker thread (no second generation of threads).
        let ok = std::sync::atomic::AtomicBool::new(true);
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| {
            scope(|s| {
                for _ in 0..4 {
                    s.spawn(|_| {
                        let outer = std::thread::current().id();
                        scope(|inner| {
                            for _ in 0..4 {
                                let ok = &ok;
                                inner.spawn(move |_| {
                                    if std::thread::current().id() != outer {
                                        ok.store(false, Ordering::Relaxed);
                                    }
                                });
                            }
                        });
                    });
                }
            });
        });
        assert!(ok.load(Ordering::Relaxed), "nested scope left its worker");
    }

    #[test]
    fn scope_returns_closure_value() {
        let v = scope(|_| 42);
        assert_eq!(v, 42);
    }
}
