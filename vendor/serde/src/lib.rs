//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in this build environment, so this crate
//! provides the two trait names the workspace derives plus the derive
//! macros. Nothing in the workspace performs actual serde serialization
//! (the wire format lives in `goldfish_tensor::serialize`), so the traits
//! are deliberately empty markers: deriving them keeps the type annotations
//! meaningful and lets a future PR swap in the real serde without touching
//! call sites.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types declared serializable (see crate docs).
pub trait Serialize {}

/// Marker for types declared deserializable (see crate docs).
pub trait Deserialize<'de>: Sized {}
