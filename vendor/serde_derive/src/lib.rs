//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io registry is unreachable in this build environment, so
//! this proc-macro crate derives marker impls of the vendored `serde` traits
//! (see `vendor/serde`). It supports plain (non-generic) structs and enums,
//! which is all this workspace derives serde on.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the type a derive is attached to.
///
/// Walks the token stream skipping outer attributes and visibility
/// modifiers until it finds `struct`/`enum`/`union`, then returns the
/// following identifier. Panics (compile error) on generic types, which the
/// marker impls emitted here cannot cover.
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            // `#[attr]` / doc comments: skip the `#` and the bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" || kw == "union" {
                    let name = match iter.next() {
                        Some(TokenTree::Ident(name)) => name.to_string(),
                        other => panic!("serde_derive stub: expected type name, got {other:?}"),
                    };
                    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                        panic!(
                            "serde_derive stub: generic type `{name}` is not supported; \
                             write the impl by hand"
                        );
                    }
                    return name;
                }
                // `pub`, `pub(crate)`, etc. — keep scanning.
            }
            _ => {}
        }
    }
    panic!("serde_derive stub: could not find a struct/enum name in derive input");
}

/// Derives the vendored `serde::Serialize` marker trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}

/// Derives the vendored `serde::Deserialize` marker trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}
